//! # liger-repro — reproduction of *Blended, Precise Semantic Program
//! Embeddings* (Wang & Su, PLDI 2020)
//!
//! This is the workspace façade crate: it re-exports every subsystem and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! | Crate | Role |
//! |---|---|
//! | [`minilang`] | the Java-like language substrate (lexer, parser, AST, types, trees) |
//! | [`interp`] | tracing interpreter (Definition 2.1 execution traces) |
//! | [`trace`] | symbolic/state/blended traces, path grouping, state encoding |
//! | [`symexec`] | symbolic executor + bounded path-condition solver |
//! | [`randgen`] | feedback-directed random input generation (Randoop role) |
//! | [`tensor`] | reverse-mode autodiff engine |
//! | [`nn`] | RNN / LSTM / TreeLSTM / attention / embeddings / Adam |
//! | [`liger`] | the blended model: encoder, decoder, classifier, training |
//! | [`baselines`] | code2vec, code2seq, DYPRO reimplementations |
//! | [`datagen`] | synthetic method-name and COSET-like corpora |
//! | [`eval`] | metrics, experiment drivers for every table & figure |
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use baselines;
pub use datagen;
pub use eval;
pub use interp;
pub use liger;
pub use minilang;
pub use nn;
pub use randgen;
pub use symexec;
pub use tensor;
pub use trace;
