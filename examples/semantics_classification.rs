//! Semantics classification (the paper's §6.2 COSET task) at example
//! scale: tell apart algorithmic strategies — bubble vs. insertion vs.
//! selection sort, Euclid-by-mod vs. Euclid-by-subtraction, … — that all
//! produce the same outputs.
//!
//! ```text
//! cargo run --release --example semantics_classification
//! ```

use eval::{build_coset_dataset, table3, table3_markdown, Scale};

fn main() {
    let scale = Scale::tiny();
    println!("generating the COSET-like corpus at scale '{}'…", scale.name);
    let (dataset, stats) = build_coset_dataset(&scale);
    println!(
        "corpus: {} generated → {} kept; {} classes; {} train / {} test\n",
        stats.original,
        stats.kept,
        dataset.num_classes,
        dataset.train.len(),
        dataset.test.len()
    );

    // Show why this is hard: two strategies for the same problem are
    // I/O-identical.
    let knobs = datagen::Knobs::plain();
    let gcd_mod = datagen::Strategy::GcdMod.render(&knobs);
    let gcd_sub = datagen::Strategy::GcdSub.render(&knobs);
    let pm = minilang::parse(&gcd_mod).unwrap();
    let ps = minilang::parse(&gcd_sub).unwrap();
    let inputs = vec![interp::Value::Int(12), interp::Value::Int(18)];
    let out_mod = interp::run(&pm, &inputs).unwrap().return_value;
    let out_sub = interp::run(&ps, &inputs).unwrap().return_value;
    println!(
        "example confusable pair: gcd-by-mod({inputs:?}) = {out_mod}, gcd-by-subtraction = {out_sub} — \
         identical outputs, different algorithms to classify.\n"
    );

    println!("training DYPRO and LIGER classifiers…\n");
    let rows = table3(&dataset, &scale);
    println!("{}", table3_markdown(&rows));
    println!(
        "(Paper shape: LIGER beats DYPRO — 85.4%/0.85 vs 81.6%/0.81 at full scale.)"
    );
}
