//! Semantics classification (the paper's §6.2 COSET task) at example
//! scale: tell apart algorithmic strategies — bubble vs. insertion vs.
//! selection sort, Euclid-by-mod vs. Euclid-by-subtraction, … — that all
//! produce the same outputs.
//!
//! ```text
//! cargo run --release --example semantics_classification
//! cargo run --release --example semantics_classification -- --save liger-cls.ckpt
//! cargo run --release --example semantics_classification -- --load liger-cls.ckpt
//! cargo run --release --example semantics_classification -- --profile
//! ```
//!
//! `--save` trains only LIGER's classifier and writes a binary
//! checkpoint; `--load` evaluates a saved checkpoint without retraining.
//! `--profile` (or `LIGER_PROFILE=1`) records span timings and writes
//! `semantics_classification.trace.json` (chrome://tracing format).

use eval::{
    build_coset_dataset, eval_coset_classifier, load_coset_classifier, table3, table3_markdown,
    train_coset_classifier, PathLevel, Scale,
};
use liger::Ablation;

const TRACE_PATH: &str = "semantics_classification.trace.json";

fn main() {
    let profiling = std::env::args().any(|a| a == "--profile");
    if profiling {
        obs::trace::set_enabled(Some(true));
    }
    {
        let _root = obs::span!("semantics_classification");
        run();
    }
    if profiling || obs::trace::enabled() {
        match obs::write_chrome_trace(TRACE_PATH) {
            Ok(profile) => {
                obs::export::report_profile("semantics_classification", &profile);
                eprintln!(
                    "semantics_classification: wrote {} span event(s) to {TRACE_PATH}",
                    profile.data.events.len()
                );
            }
            Err(e) => eprintln!("cannot write {TRACE_PATH}: {e}"),
        }
    }
}

fn run() {
    let args: Vec<String> =
        std::env::args().skip(1).filter(|a| a != "--profile").collect();
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a path argument");
                std::process::exit(2);
            })
        })
    };
    let save = flag_value("--save");
    let load = flag_value("--load");

    let scale = Scale::tiny();
    println!("generating the COSET-like corpus at scale '{}'…", scale.name);
    let (dataset, stats) = build_coset_dataset(&scale);
    println!(
        "corpus: {} generated → {} kept; {} classes; {} train / {} test\n",
        stats.original,
        stats.kept,
        dataset.num_classes,
        dataset.train.len(),
        dataset.test.len()
    );

    // Show why this is hard: two strategies for the same problem are
    // I/O-identical.
    let knobs = datagen::Knobs::plain();
    let gcd_mod = datagen::Strategy::GcdMod.render(&knobs);
    let gcd_sub = datagen::Strategy::GcdSub.render(&knobs);
    let pm = minilang::parse(&gcd_mod).unwrap();
    let ps = minilang::parse(&gcd_sub).unwrap();
    let inputs = vec![interp::Value::Int(12), interp::Value::Int(18)];
    let out_mod = interp::run(&pm, &inputs).unwrap().return_value;
    let out_sub = interp::run(&ps, &inputs).unwrap().return_value;
    println!(
        "example confusable pair: gcd-by-mod({inputs:?}) = {out_mod}, gcd-by-subtraction = {out_sub} — \
         identical outputs, different algorithms to classify.\n"
    );

    let (paths, concrete) = (PathLevel::Full, scale.concrete_per_path);
    if let Some(path) = load {
        println!("loading LIGER classifier checkpoint from {path}…");
        let (cls, store) = load_coset_classifier(&dataset, &scale, Ablation::Full, &path)
            .unwrap_or_else(|e| {
                eprintln!("cannot load checkpoint: {e}");
                std::process::exit(2);
            });
        let scores = eval_coset_classifier(&cls, &store, &dataset, &scale, paths, concrete);
        println!(
            "LIGER (from checkpoint): accuracy {:.1}%, macro-F1 {:.2}",
            scores.accuracy, scores.f1
        );
        return;
    }
    if let Some(path) = save {
        println!("training LIGER only (skipping DYPRO for --save)…");
        let (cls, store) =
            train_coset_classifier(&dataset, &scale, Ablation::Full, paths, concrete);
        let scores = eval_coset_classifier(&cls, &store, &dataset, &scale, paths, concrete);
        println!("LIGER: accuracy {:.1}%, macro-F1 {:.2}", scores.accuracy, scores.f1);
        if let Err(e) = store.save_to_path(&path) {
            eprintln!("cannot save checkpoint to {path}: {e}");
            std::process::exit(2);
        }
        println!("saved binary checkpoint to {path} (reload with --load {path})");
        return;
    }

    println!("training DYPRO and LIGER classifiers…\n");
    let rows = table3(&dataset, &scale);
    println!("{}", table3_markdown(&rows));
    println!(
        "(Paper shape: LIGER beats DYPRO — 85.4%/0.85 vs 81.6%/0.81 at full scale.)"
    );
}
