//! Quickstart: the whole pipeline on one method.
//!
//! Parse a MiniLang method, collect concrete executions with the
//! feedback-directed generator, group them into blended traces, train
//! LIGER for a few epochs, and predict the method's name. The trained
//! model is checkpointed to `quickstart.lgrb`; later runs load it and
//! skip training (pass `--retrain` to force a fresh run).
//!
//! ```text
//! cargo run --release --example quickstart              # first run: trains + saves
//! cargo run --release --example quickstart              # later runs: loads
//! cargo run --release --example quickstart -- --retrain # force retraining
//! cargo run --release --example quickstart -- --profile # + quickstart.trace.json
//! cargo run --release --example quickstart -- --quantize # int8 checkpoint + gate
//! ```
//!
//! `--quantize` rewrites the checkpoint in the int8 `qparams` variant
//! (per-row absmax codes, ~4× smaller) and gates it: the dequantize-free
//! int8 engine must reproduce the f32 prediction and keep the embedding
//! cosine ≥ 0.99. `scripts/ci.sh` runs this as the quantized-accuracy
//! gate.
//!
//! `--profile` (or `LIGER_PROFILE=1`) turns on span tracing: a summary
//! tree and metrics table go to stderr, and the full timeline is written
//! to `quickstart.trace.json` in chrome://tracing "Trace Event" format.

use liger::{
    encode_program, program_into_vocab, EncodeOptions, LigerConfig, LigerNamer, ModelBundle,
    NameSample, OutVocab, TrainConfig, Vocab,
};
use rand::SeedableRng;

const CKPT_PATH: &str = "quickstart.lgrb";

const TRACE_PATH: &str = "quickstart.trace.json";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let retrain = std::env::args().any(|a| a == "--retrain");
    let profile = std::env::args().any(|a| a == "--profile");
    let quantize = std::env::args().any(|a| a == "--quantize");
    let args: Vec<String> = std::env::args().collect();
    let store_path = args
        .iter()
        .position(|a| a == "--store-path")
        .and_then(|i| args.get(i + 1).cloned());
    if profile {
        obs::trace::set_enabled(Some(true));
    }
    let result = {
        // Root span around the whole pipeline, so the emitted trace has a
        // single top-level event covering ~all wall time.
        let _root = obs::span!("quickstart");
        run(retrain, quantize, store_path.as_deref())
    };
    if profile || obs::trace::enabled() {
        // Collect once: the write drains the recorded events, then the
        // same profile feeds the stderr report.
        let profile = obs::write_chrome_trace(TRACE_PATH)?;
        obs::export::report_profile("quickstart", &profile);
        eprintln!(
            "quickstart: wrote {} span event(s) to {TRACE_PATH}",
            profile.data.events.len()
        );
    }
    result
}

fn run(
    retrain: bool,
    quantize: bool,
    store_path: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let source = "fn maxArray(a: array<int>) -> int {
        if (len(a) == 0) { return 0; }
        let best: int = a[0];
        for (let i: int = 1; i < len(a); i += 1) {
            if (a[i] > best) { best = a[i]; }
        }
        return best;
    }";
    println!("== Source ==\n{source}\n");

    // Optional artifact store: traces and the final embedding are keyed by
    // the source's content hash, so a warm rerun skips the dynamic side
    // entirely and the `store:` line at the end reports zero misses.
    let astore = match store_path {
        Some(dir) => Some(store::Store::open(std::path::Path::new(dir))?),
        None => None,
    };
    let stats_before = store::StoreStats::snapshot();
    let key = store::hash::fnv1a_str(source);

    // 1. Front end: parse and type-check.
    let program = minilang::parse(source)?;
    minilang::typecheck(&program)?;

    // 2. Dynamic side: feedback-directed random executions, grouped by
    //    program path (the Randoop role, §6.1 of the paper).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let gen_config = randgen::GenConfig {
        target_paths: 6,
        concrete_per_path: 3,
        ..randgen::GenConfig::default()
    };
    let trace_fp = format!(
        "quickstart@1/p{}/c{}/a{}/f{}",
        gen_config.target_paths, gen_config.concrete_per_path, gen_config.max_attempts,
        gen_config.fuel
    );
    let groups = if let Some(st) = &astore {
        if let Some(payload) = st.get(store::ArtifactKind::TraceGroups, key, &trace_fp)? {
            let groups = trace::persist::groups_from_bytes(&payload)?;
            println!("store: replayed {} cached path group(s) — no executions", groups.len());
            groups
        } else {
            // A per-program RNG keeps the traces a pure function of the
            // source, so the cached artifact replays bitwise.
            let mut trace_rng =
                rand::rngs::StdRng::seed_from_u64(store::hash::splitmix64(key ^ 42));
            let (groups, stats) = randgen::generate_grouped(&program, &gen_config, &mut trace_rng);
            println!(
                "collected {} executions over {} paths ({} attempts, {} failures)",
                stats.kept, stats.paths, stats.attempts, stats.failures
            );
            st.put(
                store::ArtifactKind::TraceGroups,
                key,
                &trace_fp,
                &trace::persist::groups_to_bytes(&groups),
            )?;
            groups
        }
    } else {
        let (groups, stats) = randgen::generate_grouped(&program, &gen_config, &mut rng);
        println!(
            "collected {} executions over {} paths ({} attempts, {} failures)",
            stats.kept, stats.paths, stats.attempts, stats.failures
        );
        groups
    };

    // 3. Blend: pair each path's symbolic trace with its concrete states
    //    (Definition 5.1).
    let blended: Vec<trace::BlendedTrace> =
        groups.iter().filter_map(|g| g.blend(3).ok()).collect();
    println!("built {} blended traces\n", blended.len());

    // 4. The model-ready encoding. The checkpoint carries the trained
    //    vocabulary, so only the training path builds one from scratch.
    let opts = EncodeOptions::default();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };

    // 5. Load the checkpoint if one exists; otherwise train and save it.
    let bundle = match (retrain, ModelBundle::load_from_path(CKPT_PATH)) {
        (false, Ok(bundle)) => {
            println!("loaded checkpoint {CKPT_PATH} — skipping training");
            bundle
        }
        (retrain, load_result) => {
            if let (false, Err(e)) = (retrain, &load_result) {
                println!("no usable checkpoint ({e}); training from scratch");
            } else {
                println!("--retrain: training from scratch");
            }
            let mut vocab = Vocab::new();
            program_into_vocab(&program, &blended, &mut vocab, &opts);
            let mut out_vocab = OutVocab::new();
            for t in minilang::subtokens("maxArray") {
                out_vocab.add(&t);
            }
            let encoded = encode_program(&program, &blended, &vocab, &opts);
            println!(
                "input vocabulary: {} tokens; encoded steps: {}",
                vocab.len(),
                encoded.total_steps()
            );

            let mut store = tensor::ParamStore::new();
            let namer =
                LigerNamer::new(&mut store, vocab.len(), out_vocab.len(), cfg, &mut rng);
            let samples = vec![NameSample {
                program: encoded.clone(),
                target: out_vocab.encode_name("maxArray"),
            }];
            let tc = TrainConfig { epochs: 30, lr: 0.05, batch_size: 1 };
            let losses = liger::train_namer(&namer, &mut store, &samples, &tc, &mut rng);
            println!(
                "training loss: {:.3} → {:.3} over {} epochs",
                losses[0],
                losses.last().unwrap(),
                losses.len()
            );

            let bundle = ModelBundle::for_namer(cfg, vocab, out_vocab, store);
            bundle.save_to_path(CKPT_PATH)?;
            println!("saved checkpoint to {CKPT_PATH} — the next run will load it\n(serve it with: cargo run --bin liger-serve -- --ckpt {CKPT_PATH})");
            bundle
        }
    };

    // 6. Predict from the (possibly reloaded) checkpoint.
    let mut inferencer = liger::Inferencer::from_bundle(&bundle)?;
    let encoded = encode_program(&program, &blended, &inferencer.vocab, &opts);
    let predicted = inferencer.name(&encoded).expect("quickstart bundle is a namer");
    println!("\npredicted name sub-tokens: {predicted:?}");
    println!("joined: {}", minilang::join_subtokens(&predicted));

    // 6b. With a store: resolve the program embedding through it. The
    // fingerprint carries the model digest and the encode knobs, so a
    // retrained checkpoint or changed flag reads as a miss, never a
    // wrong hit.
    if let Some(st) = &astore {
        let emb_fp =
            format!("{}/ms{}/mt{}", bundle.fingerprint(), opts.max_steps, opts.max_traces);
        let embedding = match st.get(store::ArtifactKind::Embedding, key, &emb_fp)? {
            Some(payload) => store::embedding_from_bytes(&payload)?,
            None => {
                let emb = inferencer.embed(&encoded);
                st.put(store::ArtifactKind::Embedding, key, &emb_fp, &store::embedding_to_bytes(&emb))?;
                emb
            }
        };
        println!("embedding: {} dims under fingerprint {emb_fp}", embedding.len());
        println!("store: {}", store::StoreStats::snapshot().since(&stats_before));
    }

    // 7. --quantize: rewrite the checkpoint in the int8 `qparams` variant
    //    and gate it before trusting it — the dequantize-free engine must
    //    reproduce the f32 prediction (within 1 point of accuracy means
    //    identical on this task) and keep the embedding aligned.
    if quantize {
        let (task, store) = bundle.instantiate()?;
        let mut ws = liger::Workspace::new();
        let f32_name = task.name_in(&mut ws, &store, &encoded).expect("namer task");
        let f32_emb = task.embed_in(&mut ws, &store, &encoded);

        bundle.save_quantized_to_path(CKPT_PATH)?;
        let qbundle = ModelBundle::load_from_path(CKPT_PATH)?;
        let mut qinf = liger::Inferencer::from_bundle(&qbundle)?;
        assert!(qinf.engine.is_some(), "quantized checkpoint did not produce an int8 engine");
        let q_name = qinf.name(&encoded).expect("quantized bundle is a namer");
        let q_emb = qinf.embed(&encoded);
        let cos = liger::cosine(&f32_emb, &q_emb);

        println!("\n== Quantized checkpoint ==");
        println!(
            "rewrote {CKPT_PATH} as int8 qparams ({} bytes on disk)",
            std::fs::metadata(CKPT_PATH)?.len()
        );
        println!(
            "int8 predicted name: {} (f32: {})",
            minilang::join_subtokens(&q_name),
            minilang::join_subtokens(&f32_name)
        );
        println!("embedding cosine vs f32: {cos:.6}");
        assert_eq!(q_name, f32_name, "quantized prediction diverged from f32");
        assert!(cos >= 0.99, "quantized embedding cosine {cos} below the 0.99 bound");
    }
    Ok(())
}
