//! The paper's motivating example (Figures 1–3): three sorting routines —
//! two bubble sorts that look different, one insertion sort that looks
//! like a bubble sort — and what each representation reveals.
//!
//! Prints the Figure 2-style state tables, shows that the two bubble
//! sorts produce identical array-manipulation state sequences while the
//! syntactically-similar insertion sort does not, and enumerates symbolic
//! paths with the bounded symbolic executor.
//!
//! ```text
//! cargo run --release --example sorting_semantics
//! ```

use interp::{Value, VarLayout};

const BUBBLE_I: &str = "fn sortI(a: array<int>) -> array<int> {
    for (let i: int = len(a) - 1; i > 0; i -= 1) {
        for (let j: int = 0; j < i; j += 1) {
            if (a[j] > a[j + 1]) {
                let tmp: int = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
    return a;
}";

const INSERTION: &str = "fn sortII(a: array<int>) -> array<int> {
    for (let i: int = 1; i < len(a); i += 1) {
        for (let j: int = i - 1; j >= 0; j -= 1) {
            if (a[j] > a[j + 1]) {
                let tmp: int = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
    return a;
}";

const BUBBLE_III: &str = "fn sortIII(a: array<int>) -> array<int> {
    let swapbit: int = 1;
    while (swapbit != 0) {
        swapbit = 0;
        for (let i: int = 0; i < len(a) - 1; i += 1) {
            if (a[i] > a[i + 1]) {
                let tmp: int = a[i];
                a[i] = a[i + 1];
                a[i + 1] = tmp;
                swapbit = 1;
            }
        }
    }
    return a;
}";

/// The sequence of distinct array contents an execution passes through —
/// the semantic fingerprint Figure 2 visualises.
fn array_evolution(src: &str, input: &[i64]) -> Vec<Vec<i64>> {
    let program = minilang::parse(src).expect("example sources parse");
    let layout = VarLayout::of(&program);
    let slot = layout.slot("a").expect("array parameter is named a");
    let run = interp::run(&program, &[Value::Array(input.to_vec())]).expect("sorts run");
    let mut evolution = Vec::new();
    for event in &run.events {
        if let Some(Value::Array(contents)) = &event.state.values[slot] {
            if evolution.last() != Some(contents) {
                evolution.push(contents.clone());
            }
        }
    }
    evolution
}

fn print_states(title: &str, src: &str, input: &[i64]) {
    println!("== {title} — array states on A = {input:?} ==");
    let program = minilang::parse(src).unwrap();
    let layout = VarLayout::of(&program);
    let run = interp::run(&program, &[Value::Array(input.to_vec())]).unwrap();
    // Print the first few full program states, Figure 2 style.
    for event in run.events.iter().take(8) {
        println!("  {}", event.state.render(&layout.names));
    }
    println!("  … ({} events total)\n", run.events.len());
}

fn main() {
    let input = [8i64, 5, 1, 4, 3];

    print_states("Program 1a (bubble sort)", BUBBLE_I, &input);
    print_states("Program 1b (insertion sort)", INSERTION, &input);
    print_states("Program 1c (bubble sort, flag-controlled)", BUBBLE_III, &input);

    // The paper's point: 1a and 1c share their semantic fingerprint; the
    // syntactically-closer 1b does not.
    let ev_a = array_evolution(BUBBLE_I, &input);
    let ev_b = array_evolution(INSERTION, &input);
    let ev_c = array_evolution(BUBBLE_III, &input);
    println!("array-evolution fingerprints:");
    println!("  1a (bubble)    : {} distinct states", ev_a.len());
    println!("  1b (insertion) : {} distinct states", ev_b.len());
    println!("  1c (bubble)    : {} distinct states", ev_c.len());
    println!("  1a == 1c (same sorting strategy)?  {}", ev_a == ev_c);
    println!("  1a == 1b (different strategies)?   {}\n", ev_a == ev_b);

    // Symbolic side: enumerate paths of a small comparator with witnesses.
    let classify = minilang::parse(
        "fn compareTo(x: int, y: int) -> int {
            if (x > y) { return 1; }
            if (x < y) { return 0 - 1; }
            return 0;
        }",
    )
    .unwrap();
    let (paths, stats) = symexec::symbolic_execute(&classify, &symexec::SymExecConfig::default());
    println!("symbolic execution of compareTo: {} satisfiable paths", stats.sat_paths);
    for (i, path) in paths.iter().enumerate() {
        println!(
            "  path {}: {} steps, witness inputs {:?}",
            i + 1,
            path.steps.len(),
            path.witness
        );
    }
}
