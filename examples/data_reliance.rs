//! Data reliance (§6.1.2): how much do LIGER and DYPRO depend on the
//! number of executions? Reduces concrete traces (path coverage constant)
//! and symbolic traces (line coverage preserved via the greedy minimum
//! cover), retraining both models at each level.
//!
//! ```text
//! cargo run --release --example data_reliance
//! ```

use eval::{
    build_method_dataset, concrete_markdown, fig6_concrete, fig6_symbolic, symbolic_markdown,
    Scale,
};
use liger::Ablation;

fn main() {
    let scale = Scale::tiny();
    println!("building the dataset at scale '{}'…\n", scale.name);
    let (dataset, _) = build_method_dataset(&scale);

    let avg_paths: f64 = dataset.train.iter().map(|s| s.blended.len() as f64).sum::<f64>()
        / dataset.train.len().max(1) as f64;
    let avg_cover: f64 = dataset.train.iter().map(|s| s.min_cover as f64).sum::<f64>()
        / dataset.train.len().max(1) as f64;
    println!(
        "average paths per method: {avg_paths:.1}; average minimum line-cover: {avg_cover:.1}\n"
    );

    println!("— reducing concrete traces per blended trace (Fig. 6a/6b) —");
    let concrete = fig6_concrete(&dataset, &scale, Ablation::Full);
    println!("{}", concrete_markdown("concrete-reduction", &concrete));

    println!("— reducing symbolic traces, line coverage preserved (Fig. 6c/6d) —");
    let symbolic = fig6_symbolic(&dataset, &scale, Ablation::Full);
    println!("{}", symbolic_markdown("symbolic-reduction", &symbolic));

    println!(
        "(Paper shape: LIGER's F1 stays nearly flat under both reductions until the\n\
         single-trace extreme; DYPRO degrades with fewer executions. The attention\n\
         column reproduces the §6.1.2 statistic — the symbolic dimension holds a\n\
         stable majority share of the fusion weight.)"
    );
}
