//! Method-name prediction (the paper's §6.1 task) at example scale:
//! generates a small corpus, trains all four models, and prints a
//! Table 2-style comparison.
//!
//! ```text
//! cargo run --release --example method_name_prediction
//! ```

use eval::{build_method_dataset, table2, table2_markdown, Scale};

fn main() {
    let scale = Scale::tiny();
    println!("generating the method-name corpus at scale '{}'…", scale.name);
    let (dataset, stats) = build_method_dataset(&scale);
    println!(
        "corpus: {} generated → {} kept ({} no-compile, {} no-exec, {} timeout, {} too-small)",
        stats.original, stats.kept, stats.no_compile, stats.no_exec, stats.timeout, stats.too_small
    );
    println!(
        "split: {} train / {} test; input vocabulary {} tokens\n",
        dataset.train.len(),
        dataset.test.len(),
        dataset.vocabs.input.len()
    );

    println!("training code2vec, code2seq, DYPRO, and LIGER (this takes a minute)…\n");
    let rows = table2(&dataset, &scale);
    println!("{}", table2_markdown(&scale.name, &rows));

    let best = rows
        .iter()
        .max_by(|a, b| a.1.f1.partial_cmp(&b.1.f1).expect("finite"))
        .expect("rows non-empty");
    println!("best model by F1: {}", best.0);
    println!(
        "\n(Paper shape on full-scale data: LIGER > DYPRO > code2seq > code2vec.\n\
         Run `LIGER_SCALE=med cargo bench -p bench --bench table2_method_name`\n\
         for the bench-scale regeneration.)"
    );
}
