//! Method-name prediction (the paper's §6.1 task) at example scale:
//! generates a small corpus, trains all four models, and prints a
//! Table 2-style comparison.
//!
//! ```text
//! cargo run --release --example method_name_prediction
//! cargo run --release --example method_name_prediction -- --save liger.ckpt
//! cargo run --release --example method_name_prediction -- --load liger.ckpt
//! cargo run --release --example method_name_prediction -- --profile
//! ```
//!
//! `--save` trains only LIGER and writes a binary checkpoint;
//! `--load` evaluates a saved checkpoint without retraining.
//! `--profile` (or `LIGER_PROFILE=1`) records span timings and writes
//! `method_name_prediction.trace.json` (chrome://tracing format).

use eval::{
    build_method_dataset, eval_method_namer, load_method_namer, table2, table2_markdown,
    train_method_namer, PathLevel, Scale,
};
use liger::Ablation;

const TRACE_PATH: &str = "method_name_prediction.trace.json";

fn main() {
    let profiling = std::env::args().any(|a| a == "--profile");
    if profiling {
        obs::trace::set_enabled(Some(true));
    }
    {
        let _root = obs::span!("method_name_prediction");
        run();
    }
    if profiling || obs::trace::enabled() {
        match obs::write_chrome_trace(TRACE_PATH) {
            Ok(profile) => {
                obs::export::report_profile("method_name_prediction", &profile);
                eprintln!(
                    "method_name_prediction: wrote {} span event(s) to {TRACE_PATH}",
                    profile.data.events.len()
                );
            }
            Err(e) => eprintln!("cannot write {TRACE_PATH}: {e}"),
        }
    }
}

fn run() {
    let args: Vec<String> =
        std::env::args().skip(1).filter(|a| a != "--profile").collect();
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a path argument");
                std::process::exit(2);
            })
        })
    };
    let save = flag_value("--save");
    let load = flag_value("--load");

    let scale = Scale::tiny();
    println!("generating the method-name corpus at scale '{}'…", scale.name);
    let (dataset, stats) = build_method_dataset(&scale);
    println!(
        "corpus: {} generated → {} kept ({} no-compile, {} no-exec, {} timeout, {} too-small)",
        stats.original, stats.kept, stats.no_compile, stats.no_exec, stats.timeout, stats.too_small
    );
    println!(
        "split: {} train / {} test; input vocabulary {} tokens\n",
        dataset.train.len(),
        dataset.test.len(),
        dataset.vocabs.input.len()
    );

    let (paths, concrete) = (PathLevel::Full, scale.concrete_per_path);
    if let Some(path) = load {
        println!("loading LIGER checkpoint from {path}…");
        let (namer, store) = load_method_namer(&dataset, &scale, Ablation::Full, &path)
            .unwrap_or_else(|e| {
                eprintln!("cannot load checkpoint: {e}");
                std::process::exit(2);
            });
        let (scores, _) = eval_method_namer(&namer, &store, &dataset, &scale, paths, concrete);
        println!(
            "LIGER (from checkpoint): precision {:.1}%, recall {:.1}%, F1 {:.1}%",
            scores.precision, scores.recall, scores.f1
        );
        return;
    }
    if let Some(path) = save {
        println!("training LIGER only (skipping baselines for --save)…");
        let (namer, store) = train_method_namer(&dataset, &scale, Ablation::Full, paths, concrete);
        let (scores, _) = eval_method_namer(&namer, &store, &dataset, &scale, paths, concrete);
        println!(
            "LIGER: precision {:.1}%, recall {:.1}%, F1 {:.1}%",
            scores.precision, scores.recall, scores.f1
        );
        if let Err(e) = store.save_to_path(&path) {
            eprintln!("cannot save checkpoint to {path}: {e}");
            std::process::exit(2);
        }
        println!("saved binary checkpoint to {path} (reload with --load {path})");
        return;
    }

    println!("training code2vec, code2seq, DYPRO, and LIGER (this takes a minute)…\n");
    let rows = table2(&dataset, &scale);
    println!("{}", table2_markdown(&scale.name, &rows));

    let best = rows
        .iter()
        .max_by(|a, b| a.1.f1.partial_cmp(&b.1.f1).expect("finite"))
        .expect("rows non-empty");
    println!("best model by F1: {}", best.0);
    println!(
        "\n(Paper shape on full-scale data: LIGER > DYPRO > code2seq > code2vec.\n\
         Run `LIGER_SCALE=med cargo bench -p bench --bench table2_method_name`\n\
         for the bench-scale regeneration.)"
    );
}
