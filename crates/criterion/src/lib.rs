//! # criterion — offline stand-in for the `criterion` crate
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmark harness with the subset of the
//! criterion API its benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! of an adaptively-chosen iteration count, and prints the median
//! time/iteration. There are no statistics beyond that — the harness
//! exists so `cargo bench` regenerates the paper's tables and reports
//! honest magnitudes offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parses CLI args (accepted and ignored in the stand-in: cargo bench
    /// passes `--bench`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _parent: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one("", name, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// Ends the group (reporting happens eagerly; this is API parity).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample to make the
    /// clock resolution irrelevant.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the iteration count until one sample takes ≥ 1 ms
        // (or the routine is clearly slow enough to time directly).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, sample_size };
    f(&mut b);
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    if b.samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let per_iter = median.as_secs_f64() / b.iters_per_sample as f64;
    println!("bench {label:<40} {:>12}/iter ({} samples × {} iters)",
        format_time(per_iter), b.samples.len(), b.iters_per_sample);
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Registers bench functions under a group name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
