//! AST path-context extraction (the code2vec/code2seq representation).
//!
//! A *path context* is a triple ⟨terminal a, path, terminal b⟩ where the
//! path walks from leaf a up to the lowest common ancestor and down to
//! leaf b through AST node types (Alon et al. [2, 3]). Both static
//! baselines consume these; neither sees executions.

use minilang::{program_tree, AstTree, NodeLabel, Program};

/// One extracted path context.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathContext {
    /// The source terminal token.
    pub left: String,
    /// Node-type names from `left` up to the LCA and down to `right`.
    pub path: Vec<String>,
    /// The target terminal token.
    pub right: String,
}

impl PathContext {
    /// The path rendered as a single string key (how code2vec's path
    /// vocabulary hashes whole paths).
    pub fn path_key(&self) -> String {
        self.path.join("|")
    }
}

/// Extraction limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathConfig {
    /// Maximum number of contexts kept per program (sampled determin-
    /// istically by stride when exceeded).
    pub max_contexts: usize,
    /// Maximum path length (number of node-type hops); longer paths are
    /// dropped, as in the original implementations.
    pub max_path_len: usize,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig { max_contexts: 120, max_path_len: 9 }
    }
}

/// Extracts path contexts from a whole program's AST.
pub fn extract_path_contexts(program: &Program, config: &PathConfig) -> Vec<PathContext> {
    let tree = program_tree(program);
    let mut leaves: Vec<(String, Vec<usize>)> = Vec::new(); // (token, root-path)
    collect_leaves(&tree, &mut Vec::new(), &mut leaves);

    let mut contexts = Vec::new();
    for i in 0..leaves.len() {
        for j in (i + 1)..leaves.len() {
            let (ref ta, ref pa) = leaves[i];
            let (ref tb, ref pb) = leaves[j];
            if let Some(path) = node_path(&tree, pa, pb, config.max_path_len) {
                contexts.push(PathContext { left: ta.clone(), path, right: tb.clone() });
            }
        }
    }
    if contexts.len() > config.max_contexts {
        // Deterministic stride sampling keeps coverage across the program.
        let stride = contexts.len() as f64 / config.max_contexts as f64;
        contexts = (0..config.max_contexts)
            .map(|k| contexts[(k as f64 * stride) as usize].clone())
            .collect();
    }
    contexts
}

fn collect_leaves(tree: &AstTree, prefix: &mut Vec<usize>, out: &mut Vec<(String, Vec<usize>)>) {
    if let NodeLabel::Terminal(t) = &tree.label {
        out.push((t.clone(), prefix.clone()));
    }
    for (i, c) in tree.children.iter().enumerate() {
        prefix.push(i);
        collect_leaves(c, prefix, out);
        prefix.pop();
    }
}

/// The node-type path between two leaves given their root paths; `None`
/// when it exceeds `max_len`.
fn node_path(root: &AstTree, pa: &[usize], pb: &[usize], max_len: usize) -> Option<Vec<String>> {
    let common = pa.iter().zip(pb).take_while(|(a, b)| a == b).count();
    // Nodes from a's parent chain up to (and including) the LCA, then down
    // to b. The leaves themselves are excluded.
    let mut names = Vec::new();
    // Up: ancestors of a strictly above the leaf, down to depth `common`.
    for depth in (common..pa.len()).rev() {
        names.push(node_at(root, &pa[..depth]).label_name());
    }
    // Down: from below the LCA to b's parent.
    for depth in common + 1..=pb.len() {
        if depth == pb.len() {
            break; // pb[..pb.len()] is the leaf itself
        }
        names.push(node_at(root, &pb[..depth]).label_name());
    }
    if names.len() > max_len {
        None
    } else {
        Some(names)
    }
}

fn node_at<'a>(root: &'a AstTree, path: &[usize]) -> &'a AstTree {
    let mut node = root;
    for &i in path {
        node = &node.children[i];
    }
    node
}

trait LabelName {
    fn label_name(&self) -> String;
}

impl LabelName for AstTree {
    fn label_name(&self) -> String {
        match &self.label {
            NodeLabel::NonTerminal(ty) => ty.name().to_string(),
            NodeLabel::Terminal(t) => t.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        minilang::parse(
            "fn addOne(x: int) -> int {
                let y: int = x + 1;
                return y;
            }",
        )
        .unwrap()
    }

    #[test]
    fn extracts_contexts_with_bounded_paths() {
        let config = PathConfig::default();
        let ctxs = extract_path_contexts(&program(), &config);
        assert!(!ctxs.is_empty());
        for c in &ctxs {
            assert!(c.path.len() <= config.max_path_len);
            assert!(!c.left.is_empty() && !c.right.is_empty());
            // Paths pass through node types, which are bracketed names.
            assert!(c.path.iter().all(|p| p.starts_with('<')), "path: {:?}", c.path);
        }
    }

    #[test]
    fn contains_the_x_plus_one_context() {
        let ctxs = extract_path_contexts(&program(), &PathConfig::default());
        let found = ctxs
            .iter()
            .any(|c| c.left == "x" && c.right == "1" && c.path.contains(&"<BinaryExpr>".into()));
        assert!(found, "expected a path context connecting x and 1 through BinaryExpr");
    }

    #[test]
    fn respects_max_contexts_deterministically() {
        let config = PathConfig { max_contexts: 5, max_path_len: 12 };
        let a = extract_path_contexts(&program(), &config);
        let b = extract_path_contexts(&program(), &config);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn method_name_is_not_a_terminal() {
        let ctxs = extract_path_contexts(&program(), &PathConfig::default());
        assert!(ctxs.iter().all(|c| c.left != "addOne" && c.right != "addOne"));
    }

    #[test]
    fn path_key_is_stable() {
        let c = PathContext {
            left: "a".into(),
            path: vec!["<X>".into(), "<Y>".into()],
            right: "b".into(),
        };
        assert_eq!(c.path_key(), "<X>|<Y>");
    }
}
