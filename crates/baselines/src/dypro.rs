//! The DYPRO baseline (Wang [26]).
//!
//! The state-of-the-art *dynamic* model of the paper's comparison: it
//! "learns from pure execution traces" — each concrete trace is embedded
//! separately (no symbolic feature dimension, no per-path grouping) and
//! the trace embeddings are pooled into the program embedding. Per §6.1
//! "we feed the variable names together with their values for DYPRO to
//! embed execution traces".

use liger::{EncVar, EncoderOutput, NameDecoder, TokenId, Vocab};
use minilang::Program;
use nn::{Embedding, Linear, RnnCell};
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, Tensor, VarId};
use trace::{encode_state, BlendedTrace, VarEncoding};

/// One program state as DYPRO sees it: (variable name, value) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DyproState {
    /// Per variable: the name's token and the value's encoding.
    pub vars: Vec<(TokenId, EncVar)>,
}

/// One concrete execution: its sequence of states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DyproTrace {
    /// The states in execution order.
    pub states: Vec<DyproState>,
}

/// A program as DYPRO sees it: a flat set of concrete traces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DyproProgram {
    /// The concrete traces (ungrouped).
    pub traces: Vec<DyproTrace>,
}

impl DyproProgram {
    /// Keeps only the first `n` traces (down-sampling experiments).
    pub fn with_trace_limit(&self, n: usize) -> DyproProgram {
        DyproProgram { traces: self.traces.iter().take(n.max(1)).cloned().collect() }
    }
}

/// Bounds on DYPRO's inputs (compute control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyproOptions {
    /// Maximum states kept per concrete trace.
    pub max_steps: usize,
    /// Maximum concrete traces kept per program.
    pub max_traces: usize,
}

impl Default for DyproOptions {
    fn default() -> Self {
        DyproOptions { max_steps: 40, max_traces: 20 }
    }
}

fn encode_var(enc: &VarEncoding, vocab: &Vocab) -> EncVar {
    match enc {
        VarEncoding::Primitive(t) => EncVar::Primitive(vocab.get(t)),
        VarEncoding::Object(ts) => EncVar::Object(ts.iter().map(|t| vocab.get(t)).collect()),
    }
}

/// Builds DYPRO's input from the same blended traces LIGER consumes: the
/// grouping is flattened back into individual concrete executions, and
/// variable names are attached from the program's layout.
pub fn dypro_input(
    program: &Program,
    blended: &[BlendedTrace],
    vocab: &Vocab,
    opts: &DyproOptions,
) -> DyproProgram {
    let layout = interp::VarLayout::of(program);
    let name_tokens: Vec<TokenId> = layout.names.iter().map(|n| vocab.get(n)).collect();
    let mut traces = Vec::new();
    'outer: for b in blended {
        for k in 0..b.concrete_count {
            if traces.len() >= opts.max_traces {
                break 'outer;
            }
            let skip = b.steps.len().saturating_sub(opts.max_steps);
            let states = b
                .steps
                .iter()
                .skip(skip)
                .map(|step| DyproState {
                    vars: encode_state(&step.states[k])
                        .iter()
                        .zip(&name_tokens)
                        .map(|(v, &n)| (n, encode_var(v, vocab)))
                        .collect(),
                })
                .collect();
            traces.push(DyproTrace { states });
        }
    }
    DyproProgram { traces }
}

/// Adds the variable names of a program to a growing vocabulary (values
/// are already added by `liger::program_into_vocab`).
pub fn names_into_vocab(program: &Program, vocab: &mut Vocab) {
    for name in interp::VarLayout::of(program).names {
        vocab.add(&name);
    }
}

/// The DYPRO encoder.
#[derive(Debug, Clone, Copy)]
pub struct Dypro {
    emb: Embedding,
    value_rnn: RnnCell,
    state_rnn: RnnCell,
    trace_rnn: RnnCell,
    hidden: usize,
}

impl Dypro {
    /// Registers all encoder parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Dypro {
        Dypro {
            emb: Embedding::new(store, "dypro.emb", vocab_size, hidden, rng),
            value_rnn: RnnCell::new(store, "dypro.value", hidden, hidden, rng),
            state_rnn: RnnCell::new(store, "dypro.state", hidden, hidden, rng),
            trace_rnn: RnnCell::new(store, "dypro.trace", hidden, hidden, rng),
            hidden,
        }
    }

    fn embed_state(&self, g: &mut Graph, store: &ParamStore, state: &DyproState) -> VarId {
        let var_vecs: Vec<VarId> = state
            .vars
            .iter()
            .map(|(name, value)| {
                // Name and value tokens run through the value RNN together.
                let mut seq = vec![self.emb.lookup(g, store, *name)];
                match value {
                    EncVar::Primitive(t) => seq.push(self.emb.lookup(g, store, *t)),
                    EncVar::Object(ts) => seq.extend(self.emb.lookup_seq(g, store, ts)),
                }
                self.value_rnn.encode(g, store, &seq)
            })
            .collect();
        self.state_rnn.encode(g, store, &var_vecs)
    }

    /// Encodes a program: each concrete trace separately, max-pooled into
    /// the program embedding.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, prog: &DyproProgram) -> EncoderOutput {
        let mut flow = Vec::new();
        let mut finals = Vec::new();
        for trace in &prog.traces {
            if trace.states.is_empty() {
                continue;
            }
            let state_vecs: Vec<VarId> =
                trace.states.iter().map(|s| self.embed_state(g, store, s)).collect();
            let hs = self.trace_rnn.run(g, store, &state_vecs);
            finals.push(*hs.last().expect("non-empty trace"));
            flow.push(hs);
        }
        let program = if finals.is_empty() {
            g.input(Tensor::zeros(self.hidden, 1))
        } else {
            g.max_pool(&finals)
        };
        EncoderOutput { program, flow, static_attention: Vec::new() }
    }
}

/// DYPRO with the method-name decoder head.
#[derive(Debug, Clone, Copy)]
pub struct DyproNamer {
    /// The encoder.
    pub model: Dypro,
    /// The decoder (same head architecture as LIGER's).
    pub decoder: NameDecoder,
}

impl DyproNamer {
    /// Registers encoder and decoder parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        out_vocab_size: usize,
        hidden: usize,
        rng: &mut R,
    ) -> DyproNamer {
        DyproNamer {
            model: Dypro::new(store, vocab_size, hidden, rng),
            decoder: NameDecoder::new(store, out_vocab_size, hidden, hidden, rng),
        }
    }

    /// Teacher-forced loss.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        prog: &DyproProgram,
        target: &[TokenId],
    ) -> VarId {
        let enc = self.model.encode(g, store, prog);
        self.decoder.loss(g, store, &enc, target)
    }

    /// Greedy name prediction.
    pub fn predict(&self, store: &ParamStore, prog: &DyproProgram, max_len: usize) -> Vec<TokenId> {
        let mut g = Graph::new();
        let enc = self.model.encode(&mut g, store, prog);
        self.decoder.greedy(&mut g, store, &enc, max_len)
    }
}

/// DYPRO with a classification head (§6.2's baseline).
#[derive(Debug, Clone, Copy)]
pub struct DyproClassifier {
    /// The encoder.
    pub model: Dypro,
    head: Linear,
    /// Number of classes.
    pub num_classes: usize,
}

impl DyproClassifier {
    /// Registers encoder and head parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        num_classes: usize,
        hidden: usize,
        rng: &mut R,
    ) -> DyproClassifier {
        DyproClassifier {
            model: Dypro::new(store, vocab_size, hidden, rng),
            head: Linear::new(store, "dypro.head", hidden, num_classes, rng),
            num_classes,
        }
    }

    /// All head parameters (encoder params live in the store regardless).
    pub fn head_params(&self) -> Vec<ParamId> {
        vec![self.head.w, self.head.b]
    }

    /// Cross-entropy loss against `label`.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        prog: &DyproProgram,
        label: usize,
    ) -> VarId {
        assert!(label < self.num_classes);
        let enc = self.model.encode(g, store, prog);
        let logits = self.head.forward(g, store, enc.program);
        g.cross_entropy(logits, label)
    }

    /// Argmax class prediction.
    pub fn predict(&self, store: &ParamStore, prog: &DyproProgram) -> usize {
        let mut g = Graph::new();
        let enc = self.model.encode(&mut g, store, prog);
        let logits = self.head.forward(&mut g, store, enc.program);
        liger::argmax(g.value(logits).data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trace::{group_by_path, ExecutionTrace};

    fn build(src: &str, inputs: Vec<Vec<Value>>) -> (Program, Vec<BlendedTrace>) {
        let p = minilang::parse(src).unwrap();
        let traces: Vec<ExecutionTrace> = inputs
            .into_iter()
            .map(|i| {
                let run = interp::run(&p, &i).unwrap();
                ExecutionTrace::from_run(i, run)
            })
            .collect();
        let blended = group_by_path(traces).iter().map(|g| g.blend(5).unwrap()).collect();
        (p, blended)
    }

    #[test]
    fn input_flattens_grouped_traces() {
        let (p, blended) = build(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }",
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(-1)]],
        );
        let mut vocab = Vocab::new();
        names_into_vocab(&p, &mut vocab);
        let input = dypro_input(&p, &blended, &vocab, &DyproOptions::default());
        // Three concrete executions regardless of path grouping.
        assert_eq!(input.traces.len(), 3);
        assert_eq!(input.traces[0].states.len(), 2); // guard + return
        assert_eq!(input.with_trace_limit(1).traces.len(), 1);
    }

    #[test]
    fn namer_overfits_one_program() {
        let (p, blended) = build(
            "fn doubleIt(x: int) -> int { x *= 2; return x; }",
            vec![vec![Value::Int(2)], vec![Value::Int(5)]],
        );
        let mut vocab = Vocab::new();
        names_into_vocab(&p, &mut vocab);
        let mut ov = liger::OutVocab::new();
        ov.add("double");
        ov.add("it");
        let input = dypro_input(&p, &blended, &vocab, &DyproOptions::default());

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(40);
        let namer = DyproNamer::new(&mut store, vocab.len(), ov.len(), 8, &mut rng);
        let target = ov.encode_name("doubleIt");
        let mut adam = nn::Adam::new(0.03);
        for _ in 0..60 {
            let mut g = Graph::new();
            let loss = namer.loss(&mut g, &store, &input, &target);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert_eq!(ov.decode_name(&namer.predict(&store, &input, 4)), vec!["double", "it"]);
    }

    #[test]
    fn classifier_separates_distinct_behaviours() {
        let (p1, b1) = build(
            "fn f(x: int) -> int { x *= 2; return x; }",
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        );
        let (p2, b2) = build(
            "fn f(x: int) -> int { x = 0 - x; return x; }",
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        );
        let mut vocab = Vocab::new();
        names_into_vocab(&p1, &mut vocab);
        names_into_vocab(&p2, &mut vocab);
        // Values into vocab.
        for b in b1.iter().chain(&b2) {
            for s in &b.steps {
                for st in &s.states {
                    for v in trace::encode_state(st) {
                        for t in v.tokens() {
                            vocab.add(t);
                        }
                    }
                }
            }
        }
        let opts = DyproOptions::default();
        let i1 = dypro_input(&p1, &b1, &vocab, &opts);
        let i2 = dypro_input(&p2, &b2, &vocab, &opts);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(41);
        let cls = DyproClassifier::new(&mut store, vocab.len(), 2, 8, &mut rng);
        let mut adam = nn::Adam::new(0.03);
        for _ in 0..50 {
            for (input, label) in [(&i1, 0usize), (&i2, 1usize)] {
                let mut g = Graph::new();
                let loss = cls.loss(&mut g, &store, input, label);
                g.backward(loss, &mut store);
                adam.step(&mut store);
            }
        }
        assert_eq!(cls.predict(&store, &i1), 0);
        assert_eq!(cls.predict(&store, &i2), 1);
    }

    #[test]
    fn empty_program_encodes_to_zero() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let model = Dypro::new(&mut store, 4, 6, &mut rng);
        let mut g = Graph::new();
        let out = model.encode(&mut g, &store, &DyproProgram::default());
        assert_eq!(g.value(out.program).data(), &[0.0; 6]);
    }
}
