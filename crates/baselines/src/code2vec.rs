//! The code2vec baseline (Alon et al. [3]).
//!
//! A purely static model: embeds a bag of AST path contexts, attends over
//! them with a global attention vector, and predicts the *whole method
//! name* as a single label from a closed name vocabulary — which is why
//! the paper finds its predictions amount to "a keywords mining process".

use crate::pathctx::{extract_path_contexts, PathConfig, PathContext};
use liger::{TokenId, Vocab};
use minilang::Program;
use nn::{Embedding, Linear};
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// A program as code2vec sees it: vocabulary-resolved path contexts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Code2VecInput {
    /// Triples (left terminal, path, right terminal).
    pub contexts: Vec<(TokenId, TokenId, TokenId)>,
}

/// Resolves extracted path contexts against vocabularies.
pub fn code2vec_input(
    contexts: &[PathContext],
    term_vocab: &Vocab,
    path_vocab: &Vocab,
) -> Code2VecInput {
    Code2VecInput {
        contexts: contexts
            .iter()
            .map(|c| (term_vocab.get(&c.left), path_vocab.get(&c.path_key()), term_vocab.get(&c.right)))
            .collect(),
    }
}

/// Adds a program's context tokens to growing vocabularies; returns the
/// extracted contexts for reuse.
pub fn contexts_into_vocabs(
    program: &Program,
    config: &PathConfig,
    term_vocab: &mut Vocab,
    path_vocab: &mut Vocab,
) -> Vec<PathContext> {
    let contexts = extract_path_contexts(program, config);
    for c in &contexts {
        term_vocab.add(&c.left);
        term_vocab.add(&c.right);
        path_vocab.add(&c.path_key());
    }
    contexts
}

/// The code2vec model.
#[derive(Debug, Clone, Copy)]
pub struct Code2Vec {
    term_emb: Embedding,
    path_emb: Embedding,
    proj: Linear,
    attn: ParamId,
    out: Linear,
    /// Number of name labels.
    pub num_labels: usize,
}

impl Code2Vec {
    /// Registers all parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        term_vocab: usize,
        path_vocab: usize,
        num_labels: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Code2Vec {
        Code2Vec {
            term_emb: Embedding::new(store, "c2v.term", term_vocab, hidden, rng),
            path_emb: Embedding::new(store, "c2v.path", path_vocab, hidden, rng),
            proj: Linear::new(store, "c2v.proj", 3 * hidden, hidden, rng),
            attn: store.add_xavier("c2v.attn", hidden, 1, rng),
            out: Linear::new(store, "c2v.out", hidden, num_labels, rng),
            num_labels,
        }
    }

    /// The attention-pooled code vector of a program.
    pub fn code_vector(&self, g: &mut Graph, store: &ParamStore, input: &Code2VecInput) -> VarId {
        if input.contexts.is_empty() {
            let h = store.get(self.attn).value.rows();
            return g.input(tensor::Tensor::zeros(h, 1));
        }
        let combined: Vec<VarId> = input
            .contexts
            .iter()
            .map(|&(l, p, r)| {
                let le = self.term_emb.lookup(g, store, l);
                let pe = self.path_emb.lookup(g, store, p);
                let re = self.term_emb.lookup(g, store, r);
                let cat = g.concat(&[le, pe, re]);
                let proj = self.proj.forward(g, store, cat);
                g.tanh(proj)
            })
            .collect();
        let attn = g.param(store, self.attn);
        let scores: Vec<VarId> = combined.iter().map(|&c| g.dot(c, attn)).collect();
        let stacked = g.stack_scalars(&scores);
        let weights = g.softmax(stacked);
        g.weighted_sum(&combined, weights)
    }

    /// Training loss: cross-entropy of the whole-name label.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_labels`.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        input: &Code2VecInput,
        label: usize,
    ) -> VarId {
        assert!(label < self.num_labels);
        let v = self.code_vector(g, store, input);
        let logits = self.out.forward(g, store, v);
        g.cross_entropy(logits, label)
    }

    /// Predicts the name label.
    pub fn predict(&self, store: &ParamStore, input: &Code2VecInput) -> usize {
        let mut g = Graph::new();
        let v = self.code_vector(&mut g, store, input);
        let logits = self.out.forward(&mut g, store, v);
        liger::argmax(g.value(logits).data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs() -> (Vocab, Vocab, Code2VecInput, Code2VecInput) {
        let p1 = minilang::parse("fn sumArr(a: array<int>) -> int { let s: int = 0; for (let i: int = 0; i < len(a); i += 1) { s += a[i]; } return s; }").unwrap();
        let p2 = minilang::parse("fn maxArr(a: array<int>) -> int { let m: int = a[0]; for (let i: int = 1; i < len(a); i += 1) { m = max(m, a[i]); } return m; }").unwrap();
        let mut tv = Vocab::new();
        let mut pv = Vocab::new();
        let config = PathConfig::default();
        let c1 = contexts_into_vocabs(&p1, &config, &mut tv, &mut pv);
        let c2 = contexts_into_vocabs(&p2, &config, &mut tv, &mut pv);
        let i1 = code2vec_input(&c1, &tv, &pv);
        let i2 = code2vec_input(&c2, &tv, &pv);
        (tv, pv, i1, i2)
    }

    #[test]
    fn learns_to_separate_two_programs() {
        let (tv, pv, i1, i2) = inputs();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(30);
        let model = Code2Vec::new(&mut store, tv.len(), pv.len(), 2, 8, &mut rng);
        let mut adam = nn::Adam::new(0.02);
        for _ in 0..40 {
            for (input, label) in [(&i1, 0usize), (&i2, 1usize)] {
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &store, input, label);
                g.backward(loss, &mut store);
                adam.step(&mut store);
            }
        }
        assert_eq!(model.predict(&store, &i1), 0);
        assert_eq!(model.predict(&store, &i2), 1);
    }

    #[test]
    fn empty_input_predicts_without_panicking() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(31);
        let model = Code2Vec::new(&mut store, 5, 5, 3, 8, &mut rng);
        let _ = model.predict(&store, &Code2VecInput::default());
    }

    #[test]
    fn gradients_reach_embeddings() {
        let (tv, pv, i1, _) = inputs();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(32);
        let model = Code2Vec::new(&mut store, tv.len(), pv.len(), 2, 8, &mut rng);
        let mut g = Graph::new();
        let loss = model.loss(&mut g, &store, &i1, 0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
    }
}
