//! The code2seq baseline (Alon et al. [2]).
//!
//! The state-of-the-art *static* model the paper compares against
//! (Table 2). Like code2vec it consumes AST path contexts, but terminals
//! are decomposed into sub-tokens (summed embeddings), paths are encoded
//! by an RNN over node types, and the method name is *generated* as a
//! sub-token sequence by an attentive decoder — we reuse LIGER's decoder
//! head over code2seq's context memory.

use crate::pathctx::{extract_path_contexts, PathConfig, PathContext};
use liger::{EncoderOutput, NameDecoder, TokenId, Vocab};
use minilang::Program;
use nn::{Embedding, Linear, RnnCell};
use rand::Rng;
use tensor::{Graph, ParamStore, Tensor, VarId};

/// A program as code2seq sees it: per context, the sub-token ids of both
/// terminals and the node-type token sequence of the path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Code2SeqInput {
    /// Per-context (left sub-tokens, path node-type tokens, right
    /// sub-tokens).
    pub contexts: Vec<(Vec<TokenId>, Vec<TokenId>, Vec<TokenId>)>,
}

/// Resolves path contexts against the sub-token and node-type vocabularies.
pub fn code2seq_input(
    contexts: &[PathContext],
    subtoken_vocab: &Vocab,
    node_vocab: &Vocab,
) -> Code2SeqInput {
    Code2SeqInput {
        contexts: contexts
            .iter()
            .map(|c| {
                let l = minilang::subtokens(&c.left)
                    .iter()
                    .map(|t| subtoken_vocab.get(t))
                    .collect();
                let p = c.path.iter().map(|n| node_vocab.get(n)).collect();
                let r = minilang::subtokens(&c.right)
                    .iter()
                    .map(|t| subtoken_vocab.get(t))
                    .collect();
                (l, p, r)
            })
            .collect(),
    }
}

/// Adds a program's context sub-tokens and node types to growing
/// vocabularies; returns the contexts for reuse.
pub fn code2seq_vocabs(
    program: &Program,
    config: &PathConfig,
    subtoken_vocab: &mut Vocab,
    node_vocab: &mut Vocab,
) -> Vec<PathContext> {
    let contexts = extract_path_contexts(program, config);
    for c in &contexts {
        for t in minilang::subtokens(&c.left).iter().chain(minilang::subtokens(&c.right).iter()) {
            subtoken_vocab.add(t);
        }
        for n in &c.path {
            node_vocab.add(n);
        }
    }
    contexts
}

/// The code2seq encoder plus LIGER-style attentive decoder.
#[derive(Debug, Clone, Copy)]
pub struct Code2Seq {
    sub_emb: Embedding,
    node_emb: Embedding,
    path_rnn: RnnCell,
    proj: Linear,
    /// The sub-token decoder (shared head architecture with LIGER).
    pub decoder: NameDecoder,
    hidden: usize,
}

impl Code2Seq {
    /// Registers all parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        subtoken_vocab: usize,
        node_vocab: usize,
        out_vocab: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Code2Seq {
        Code2Seq {
            sub_emb: Embedding::new(store, "c2s.sub", subtoken_vocab, hidden, rng),
            node_emb: Embedding::new(store, "c2s.node", node_vocab, hidden, rng),
            path_rnn: RnnCell::new(store, "c2s.path", hidden, hidden, rng),
            proj: Linear::new(store, "c2s.proj", 3 * hidden, hidden, rng),
            decoder: NameDecoder::new(store, out_vocab, hidden, hidden, rng),
            hidden,
        }
    }

    fn terminal_vec(&self, g: &mut Graph, store: &ParamStore, subs: &[TokenId]) -> VarId {
        if subs.is_empty() {
            return g.input(Tensor::zeros(self.hidden, 1));
        }
        let embs = self.sub_emb.lookup_seq(g, store, subs);
        if embs.len() == 1 {
            embs[0]
        } else {
            g.sum_vecs(&embs)
        }
    }

    /// Encodes the program into a decoder-ready memory (one vector per
    /// path context; the "program embedding" is their mean).
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, input: &Code2SeqInput) -> EncoderOutput {
        let combined: Vec<VarId> = input
            .contexts
            .iter()
            .map(|(l, p, r)| {
                let lv = self.terminal_vec(g, store, l);
                let pv = {
                    let embs = self.node_emb.lookup_seq(g, store, p);
                    self.path_rnn.encode(g, store, &embs)
                };
                let rv = self.terminal_vec(g, store, r);
                let cat = g.concat(&[lv, pv, rv]);
                let proj = self.proj.forward(g, store, cat);
                g.tanh(proj)
            })
            .collect();
        let program = if combined.is_empty() {
            g.input(Tensor::zeros(self.hidden, 1))
        } else {
            let sum = g.sum_vecs(&combined);
            g.scale(sum, 1.0 / combined.len() as f32)
        };
        EncoderOutput { program, flow: vec![combined], static_attention: Vec::new() }
    }

    /// Teacher-forced training loss for a target sub-token sequence.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        input: &Code2SeqInput,
        target: &[TokenId],
    ) -> VarId {
        let enc = self.encode(g, store, input);
        self.decoder.loss(g, store, &enc, target)
    }

    /// Greedy name prediction (sub-token ids, no `<EOS>`).
    pub fn predict(&self, store: &ParamStore, input: &Code2SeqInput, max_len: usize) -> Vec<TokenId> {
        let mut g = Graph::new();
        let enc = self.encode(&mut g, store, input);
        self.decoder.greedy(&mut g, store, &enc, max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liger::{OutVocab, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vocab, Vocab, OutVocab, Code2SeqInput, Code2SeqInput) {
        let p1 = minilang::parse(
            "fn sumArr(a: array<int>) -> int { let s: int = 0; s += a[0]; return s; }",
        )
        .unwrap();
        let p2 = minilang::parse(
            "fn firstNeg(a: array<int>) -> bool { if (a[0] < 0) { return true; } return false; }",
        )
        .unwrap();
        let mut sv = Vocab::new();
        let mut nv = Vocab::new();
        let config = PathConfig::default();
        let c1 = code2seq_vocabs(&p1, &config, &mut sv, &mut nv);
        let c2 = code2seq_vocabs(&p2, &config, &mut sv, &mut nv);
        let mut ov = OutVocab::new();
        for t in ["sum", "arr", "first", "neg"] {
            ov.add(t);
        }
        let i1 = code2seq_input(&c1, &sv, &nv);
        let i2 = code2seq_input(&c2, &sv, &nv);
        (sv, nv, ov, i1, i2)
    }

    #[test]
    fn learns_two_names() {
        let (sv, nv, ov, i1, i2) = setup();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(33);
        let model = Code2Seq::new(&mut store, sv.len(), nv.len(), ov.len(), 8, &mut rng);
        let t1 = ov.encode_name("sumArr");
        let t2 = ov.encode_name("firstNeg");
        let mut adam = nn::Adam::new(0.02);
        for _ in 0..60 {
            for (input, target) in [(&i1, &t1), (&i2, &t2)] {
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &store, input, target);
                g.backward(loss, &mut store);
                adam.step(&mut store);
            }
        }
        assert_eq!(ov.decode_name(&model.predict(&store, &i1, 4)), vec!["sum", "arr"]);
        assert_eq!(ov.decode_name(&model.predict(&store, &i2, 4)), vec!["first", "neg"]);
        let _ = EOS;
    }

    #[test]
    fn empty_input_is_not_fatal() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(34);
        let model = Code2Seq::new(&mut store, 4, 4, 6, 8, &mut rng);
        let ids = model.predict(&store, &Code2SeqInput::default(), 3);
        assert!(ids.len() <= 3);
    }

    #[test]
    fn subtokens_are_decomposed_in_input() {
        let (sv, nv, _, i1, _) = setup();
        let _ = nv;
        // "sumArr" is the name (excluded); but identifiers like `a`/`s`
        // appear as single subtokens.
        assert!(i1.contexts.iter().any(|(l, _, r)| !l.is_empty() || !r.is_empty()));
        assert!(sv.contains("a"));
    }
}
