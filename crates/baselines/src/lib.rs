//! # baselines — the comparison models of the paper's evaluation
//!
//! Table 2 and every figure compare LIGER against three prior models,
//! reimplemented here on the shared `nn` substrate (the paper retrained
//! the originals; DYPRO is closed source — see DESIGN.md §1):
//!
//! - [`Code2Vec`] — static; attention over AST path contexts, whole-name
//!   classification (Alon et al. [3]),
//! - [`Code2Seq`] — static; sub-token terminals + path RNNs with an
//!   attentive sub-token decoder (Alon et al. [2]),
//! - [`Dypro`] / [`DyproNamer`] / [`DyproClassifier`] — dynamic; embeds
//!   each concrete trace separately (variable names fed together with
//!   their values, §6.1) and pools trace embeddings (Wang [26]).
//!
//! # Examples
//!
//! ```
//! use baselines::{contexts_into_vocabs, code2vec_input, PathConfig};
//! use liger::Vocab;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = minilang::parse("fn inc(x: int) -> int { return x + 1; }")?;
//! let mut terms = Vocab::new();
//! let mut paths = Vocab::new();
//! let contexts = contexts_into_vocabs(&program, &PathConfig::default(), &mut terms, &mut paths);
//! let input = code2vec_input(&contexts, &terms, &paths);
//! assert!(!input.contexts.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod code2seq;
pub mod code2vec;
pub mod dypro;
pub mod pathctx;

pub use code2seq::{code2seq_input, code2seq_vocabs, Code2Seq, Code2SeqInput};
pub use code2vec::{code2vec_input, contexts_into_vocabs, Code2Vec, Code2VecInput};
pub use dypro::{
    dypro_input, names_into_vocab, Dypro, DyproClassifier, DyproNamer, DyproOptions,
    DyproProgram, DyproState, DyproTrace,
};
pub use pathctx::{extract_path_contexts, PathConfig, PathContext};
