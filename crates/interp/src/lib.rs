//! # interp — the tracing interpreter of the LIGER reproduction
//!
//! Plays the role of the paper's instrumented JVM: executes MiniLang
//! programs on concrete inputs and records complete execution traces
//! (Definition 2.1 of the paper) — the statement-event sequence, the
//! program state after every statement, and statement/line coverage.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use interp::{run, Value, VarLayout};
//!
//! let program = minilang::parse(
//!     "fn sumTo(n: int) -> int {
//!          let s: int = 0;
//!          for (let i: int = 1; i <= n; i += 1) { s += i; }
//!          return s;
//!      }",
//! )?;
//! let result = run(&program, &[Value::Int(4)])?;
//! assert_eq!(result.return_value, Value::Int(10));
//!
//! // Render the final state in the paper's Figure 2 style.
//! let layout = VarLayout::of(&program);
//! let last = result.events.last().unwrap();
//! assert_eq!(last.state.render(&layout.names), "{n:4; s:10; i:⊥}");
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod interpreter;
pub mod trace_event;
pub mod value;

pub use error::RuntimeError;
pub use interpreter::{run, run_with_fuel, RunResult, DEFAULT_FUEL};
pub use trace_event::{EventKind, PathStep, TraceEvent};
pub use value::{State, Value, VarLayout};
