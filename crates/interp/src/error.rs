//! Runtime errors of the tracing interpreter.

use minilang::Type;
use std::fmt;

/// Errors raised while executing a MiniLang program.
///
/// The dataset filter (Table 1) treats any runtime error during input
/// generation as "Randoop failed to produce a meaningful execution" and
/// discards the offending input (or, if no input works, the program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Wrong number of inputs supplied.
    ArityMismatch {
        /// Declared parameter count.
        expected: usize,
        /// Supplied input count.
        actual: usize,
    },
    /// An input's type does not match its parameter.
    InputTypeMismatch {
        /// Parameter name.
        param: String,
        /// Declared type.
        expected: Type,
        /// Supplied type.
        actual: Type,
    },
    /// The function returned a value of the wrong type.
    ReturnTypeMismatch {
        /// Declared return type.
        expected: Type,
        /// Actual returned type.
        actual: Type,
    },
    /// Use of a variable with no binding (unreachable for type-checked
    /// programs).
    UndefinedVariable(String),
    /// Division or remainder by zero.
    DivisionByZero,
    /// Arithmetic overflow on `i64`.
    ArithmeticOverflow,
    /// Array or string index out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The collection length.
        len: usize,
    },
    /// `substring` range out of bounds.
    SubstringOutOfRange {
        /// Start index.
        start: i64,
        /// End index.
        end: i64,
        /// String length.
        len: usize,
    },
    /// `newArray` with a negative or excessive length.
    InvalidArrayLength(i64),
    /// A dynamic type error (unreachable for type-checked programs).
    TypeMismatch {
        /// Description of the mismatch.
        msg: String,
    },
    /// Execution exceeded its fuel budget.
    OutOfFuel,
    /// Control fell off the end of the function without `return`.
    MissingReturn,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ArityMismatch { expected, actual } => {
                write!(f, "expected {expected} inputs, got {actual}")
            }
            RuntimeError::InputTypeMismatch { param, expected, actual } => {
                write!(f, "parameter {param} expects {expected}, got {actual}")
            }
            RuntimeError::ReturnTypeMismatch { expected, actual } => {
                write!(f, "function declares return type {expected}, returned {actual}")
            }
            RuntimeError::UndefinedVariable(name) => write!(f, "undefined variable: {name}"),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::ArithmeticOverflow => write!(f, "arithmetic overflow"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            RuntimeError::SubstringOutOfRange { start, end, len } => {
                write!(f, "substring range {start}..{end} out of bounds for length {len}")
            }
            RuntimeError::InvalidArrayLength(n) => write!(f, "invalid array length: {n}"),
            RuntimeError::TypeMismatch { msg } => write!(f, "type mismatch: {msg}"),
            RuntimeError::OutOfFuel => write!(f, "execution exceeded fuel budget"),
            RuntimeError::MissingReturn => write!(f, "control reached end of function without return"),
        }
    }
}

impl std::error::Error for RuntimeError {}
