//! Raw execution-trace events emitted by the tracing interpreter.
//!
//! An execution trace (Definition 2.1) is π = s₀ → (eᵢ → sᵢ)*. The
//! interpreter emits one [`TraceEvent`] per executed statement eᵢ, carrying
//! the program state sᵢ observed immediately after it. Branching statements
//! appear as *guard* events with the direction taken, so the projection to
//! a symbolic trace (Definition 2.2) describes one program path exactly.

use crate::value::State;
use minilang::StmtId;

/// What kind of statement produced a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A simple statement executed (`let`, assignment, `return`, `break`,
    /// `continue`).
    Exec,
    /// A branch guard (the condition of `if`/`while`/`for`) evaluated, with
    /// the direction taken.
    Guard {
        /// `true` when the condition held.
        taken: bool,
    },
}

/// One step of an execution trace: a statement event and the program state
/// immediately after it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The statement that executed.
    pub stmt: StmtId,
    /// Source line of that statement.
    pub line: u32,
    /// Simple execution or branch guard.
    pub kind: EventKind,
    /// The program state sᵢ after the event.
    pub state: State,
}

impl TraceEvent {
    /// The path-identity component of this event: which statement ran and,
    /// for guards, which way it went. Two executions follow the same
    /// program path iff their event sequences project to equal step lists.
    pub fn path_step(&self) -> PathStep {
        PathStep { stmt: self.stmt, kind: self.kind }
    }
}

/// One element of a path signature (see [`TraceEvent::path_step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathStep {
    /// The statement.
    pub stmt: StmtId,
    /// Exec or guard-with-direction.
    pub kind: EventKind,
}

// Manual Ord for EventKind so PathStep can be ordered (useful for
// deterministic grouping).
impl PartialOrd for EventKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(k: &EventKind) -> u8 {
            match k {
                EventKind::Exec => 0,
                EventKind::Guard { taken: false } => 1,
                EventKind::Guard { taken: true } => 2,
            }
        }
        rank(self).cmp(&rank(other))
    }
}
