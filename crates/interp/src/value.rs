//! Runtime values and program states.
//!
//! A program state (Definition 2.1) is "a set of variable/memory and value
//! pairs immediately after the execution of statement eᵢ". Following §5.1,
//! "the order of variables [is] fixed across all program states in any
//! concrete trace of P": states are snapshots over a fixed variable layout
//! computed once per program, with ⊥ ([`None`]) for variables that are not
//! yet (or no longer) in scope — exactly like `right:⊥` in the paper's
//! Figure 2.

use std::fmt;

/// A MiniLang runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Integer array ("object type" in the paper's sense — flattened into
    /// an `attr(v)` sequence when fed to the model, see `trace::encode`).
    Array(Vec<i64>),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> minilang::Type {
        match self {
            Value::Int(_) => minilang::Type::Int,
            Value::Bool(_) => minilang::Type::Bool,
            Value::Str(_) => minilang::Type::Str,
            Value::Array(_) => minilang::Type::IntArray,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A program state: one optional value per slot of the program's fixed
/// variable layout (`None` = ⊥, not in scope).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct State {
    /// Values in layout order.
    pub values: Vec<Option<Value>>,
}

impl State {
    /// Renders the state in the paper's Figure 2 style, given the layout's
    /// variable names: `{A:[8, 5, 1, 4, 3]; left:0; right:⊥}`.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            out.push_str(name);
            out.push(':');
            match value {
                Some(v) => out.push_str(&v.to_string()),
                None => out.push('⊥'),
            }
        }
        out.push('}');
        out
    }
}

/// The fixed variable layout of a program: parameter names first (in
/// declaration order), then every `let`-declared name in statement-id
/// order. Shadowed re-declarations share their slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarLayout {
    /// Variable names in slot order.
    pub names: Vec<String>,
}

impl VarLayout {
    /// Computes the layout of `program`.
    pub fn of(program: &minilang::Program) -> VarLayout {
        let mut names: Vec<String> =
            program.function.params.iter().map(|p| p.name.clone()).collect();
        for stmt in program.statements() {
            if let minilang::StmtKind::Let { name, .. } = &stmt.kind {
                if !names.contains(name) {
                    names.push(name.clone());
                }
            }
        }
        VarLayout { names }
    }

    /// The slot of `name`, if declared anywhere in the program.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the program declares no variables at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_orders_params_then_lets() {
        let p = minilang::parse(
            "fn f(a: array<int>, n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) { s += a[i]; }
                return s;
            }",
        )
        .unwrap();
        let layout = VarLayout::of(&p);
        assert_eq!(layout.names, vec!["a", "n", "s", "i"]);
        assert_eq!(layout.slot("i"), Some(3));
        assert_eq!(layout.slot("zz"), None);
    }

    #[test]
    fn shadowed_names_share_a_slot() {
        let p = minilang::parse(
            "fn f(x: int) -> int {
                let y: int = 0;
                if (x > 0) { let y: int = 1; x += y; }
                return y;
            }",
        )
        .unwrap();
        let layout = VarLayout::of(&p);
        assert_eq!(layout.names, vec!["x", "y"]);
    }

    #[test]
    fn state_renders_figure2_style() {
        let state = State {
            values: vec![
                Some(Value::Array(vec![8, 5, 1, 4, 3])),
                Some(Value::Int(0)),
                None,
            ],
        };
        let names = vec!["A".to_string(), "left".to_string(), "right".to_string()];
        assert_eq!(state.render(&names), "{A:[8, 5, 1, 4, 3]; left:0; right:⊥}");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("ab".into()).to_string(), "\"ab\"");
        assert_eq!(Value::Array(vec![1, 2]).to_string(), "[1, 2]");
    }
}
