//! The tracing interpreter.
//!
//! Plays the role of the paper's instrumented JVM: executes a MiniLang
//! program on concrete inputs and records the full execution trace
//! (statement events + program states) together with statement and line
//! coverage. Execution is bounded by *fuel* so the dataset filter of
//! Table 1 can discard programs that "take too long".

use crate::error::RuntimeError;
use crate::trace_event::{EventKind, TraceEvent};
use crate::value::{State, Value, VarLayout};
use minilang::{
    AssignOp, BinOp, Block, Builtin, Expr, ExprKind, LValue, Program, Stmt, StmtKind, UnOp,
};
use std::collections::{BTreeSet, HashMap};

/// Default fuel (maximum number of statement events) for a single run.
pub const DEFAULT_FUEL: u64 = 100_000;

/// The complete result of one traced execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The initial state s₀ (parameters bound, locals ⊥).
    pub initial_state: State,
    /// The event sequence (eᵢ, sᵢ)*.
    pub events: Vec<TraceEvent>,
    /// The function's return value.
    pub return_value: Value,
    /// Statement ids executed at least once.
    pub stmt_coverage: BTreeSet<minilang::StmtId>,
    /// Source lines executed at least once.
    pub line_coverage: BTreeSet<u32>,
}

/// Executes `program` on `inputs` with [`DEFAULT_FUEL`].
///
/// # Errors
///
/// Returns [`RuntimeError`] on arity/type mismatches between `inputs` and
/// the parameter list, division by zero, out-of-bounds access, fuel
/// exhaustion, or falling off the end of the function without `return`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use interp::{run, Value};
/// let program = minilang::parse("fn inc(x: int) -> int { return x + 1; }")?;
/// let result = run(&program, &[Value::Int(41)])?;
/// assert_eq!(result.return_value, Value::Int(42));
/// # Ok(())
/// # }
/// ```
pub fn run(program: &Program, inputs: &[Value]) -> Result<RunResult, RuntimeError> {
    run_with_fuel(program, inputs, DEFAULT_FUEL)
}

/// Executes `program` on `inputs` with an explicit fuel bound.
///
/// # Errors
///
/// See [`run`]; additionally returns [`RuntimeError::OutOfFuel`] once the
/// number of statement events exceeds `fuel`.
pub fn run_with_fuel(
    program: &Program,
    inputs: &[Value],
    fuel: u64,
) -> Result<RunResult, RuntimeError> {
    let _span = obs::span!("interp.run");
    obs::counter!("interp.runs").inc();
    let f = &program.function;
    if inputs.len() != f.params.len() {
        return Err(RuntimeError::ArityMismatch {
            expected: f.params.len(),
            actual: inputs.len(),
        });
    }
    for (p, v) in f.params.iter().zip(inputs) {
        if v.ty() != p.ty {
            return Err(RuntimeError::InputTypeMismatch {
                param: p.name.clone(),
                expected: p.ty,
                actual: v.ty(),
            });
        }
    }
    let layout = VarLayout::of(program);
    let mut interp = Interp {
        layout: &layout,
        scopes: vec![HashMap::new()],
        events: Vec::new(),
        fuel,
        stmt_coverage: BTreeSet::new(),
        line_coverage: BTreeSet::new(),
    };
    for (p, v) in f.params.iter().zip(inputs) {
        interp.scopes[0].insert(p.name.clone(), v.clone());
    }
    let initial_state = interp.snapshot();
    let flow = interp.exec_block(&f.body)?;
    let return_value = match flow {
        Flow::Return(v) => v,
        _ => return Err(RuntimeError::MissingReturn),
    };
    if return_value.ty() != f.ret {
        return Err(RuntimeError::ReturnTypeMismatch { expected: f.ret, actual: return_value.ty() });
    }
    Ok(RunResult {
        initial_state,
        events: interp.events,
        return_value,
        stmt_coverage: interp.stmt_coverage,
        line_coverage: interp.line_coverage,
    })
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Interp<'a> {
    layout: &'a VarLayout,
    scopes: Vec<HashMap<String, Value>>,
    events: Vec<TraceEvent>,
    fuel: u64,
    stmt_coverage: BTreeSet<minilang::StmtId>,
    line_coverage: BTreeSet<u32>,
}

impl<'a> Interp<'a> {
    fn snapshot(&self) -> State {
        let mut values = vec![None; self.layout.len()];
        // Innermost scope wins for shadowed names: iterate outer→inner.
        for scope in &self.scopes {
            for (name, value) in scope {
                if let Some(slot) = self.layout.slot(name) {
                    values[slot] = Some(value.clone());
                }
            }
        }
        State { values }
    }

    fn record(&mut self, stmt: &Stmt, kind: EventKind) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        self.stmt_coverage.insert(stmt.id);
        self.line_coverage.insert(stmt.line);
        let state = self.snapshot();
        self.events.push(TraceEvent { stmt: stmt.id, line: stmt.line, kind, state });
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<&Value, RuntimeError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(v);
            }
        }
        Err(RuntimeError::UndefinedVariable(name.to_string()))
    }

    fn assign_var(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        Err(RuntimeError::UndefinedVariable(name.to_string()))
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow, RuntimeError> {
        self.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in &block.stmts {
            flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let value = self.eval(init)?;
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), value);
                self.record(stmt, EventKind::Exec)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                let rhs = self.eval(value)?;
                match target {
                    LValue::Var(name) => {
                        let new = match op {
                            AssignOp::Set => rhs,
                            _ => apply_compound(*op, self.lookup(name)?.clone(), rhs)?,
                        };
                        self.assign_var(name, new)?;
                    }
                    LValue::Index(name, idx_expr) => {
                        let idx = self.eval_int(idx_expr)?;
                        let current = self.lookup(name)?.clone();
                        let Value::Array(mut arr) = current else {
                            return Err(RuntimeError::TypeMismatch {
                                msg: format!("indexed assignment into non-array {name}"),
                            });
                        };
                        let i = check_index(idx, arr.len())?;
                        let new_elem = match op {
                            AssignOp::Set => rhs,
                            _ => apply_compound(*op, Value::Int(arr[i]), rhs)?,
                        };
                        let Value::Int(elem) = new_elem else {
                            return Err(RuntimeError::TypeMismatch {
                                msg: "array element assignment of non-int".to_string(),
                            });
                        };
                        arr[i] = elem;
                        self.assign_var(name, Value::Array(arr))?;
                    }
                }
                self.record(stmt, EventKind::Exec)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_block, else_block } => {
                let taken = self.eval_bool(cond)?;
                self.record(stmt, EventKind::Guard { taken })?;
                if taken {
                    self.exec_block(then_block)
                } else if let Some(e) = else_block {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => loop {
                let taken = self.eval_bool(cond)?;
                self.record(stmt, EventKind::Guard { taken })?;
                if !taken {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    r @ Flow::Return(_) => return Ok(r),
                }
            },
            StmtKind::For { init, cond, update, body } => {
                // The header's scope holds the induction variable.
                self.scopes.push(HashMap::new());
                let result = (|| {
                    self.exec_stmt(init)?;
                    loop {
                        let taken = self.eval_bool(cond)?;
                        self.record(stmt, EventKind::Guard { taken })?;
                        if !taken {
                            return Ok(Flow::Normal);
                        }
                        match self.exec_block(body)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => return Ok(Flow::Normal),
                            r @ Flow::Return(_) => return Ok(r),
                        }
                        self.exec_stmt(update)?;
                    }
                })();
                self.scopes.pop();
                result
            }
            StmtKind::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                self.record(stmt, EventKind::Exec)?;
                Ok(Flow::Return(value))
            }
            StmtKind::Break => {
                self.record(stmt, EventKind::Exec)?;
                Ok(Flow::Break)
            }
            StmtKind::Continue => {
                self.record(stmt, EventKind::Exec)?;
                Ok(Flow::Continue)
            }
        }
    }

    fn eval_int(&mut self, expr: &Expr) -> Result<i64, RuntimeError> {
        match self.eval(expr)? {
            Value::Int(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                msg: format!("expected int, got {}", other.ty()),
            }),
        }
    }

    fn eval_bool(&mut self, expr: &Expr) -> Result<bool, RuntimeError> {
        match self.eval(expr)? {
            Value::Bool(b) => Ok(b),
            other => Err(RuntimeError::TypeMismatch {
                msg: format!("expected bool, got {}", other.ty()),
            }),
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, RuntimeError> {
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::StrLit(s) => Ok(Value::Str(s.clone())),
            ExprKind::Var(name) => self.lookup(name).cloned(),
            ExprKind::Unary(UnOp::Neg, inner) => {
                let v = self.eval_int(inner)?;
                Ok(Value::Int(v.checked_neg().ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                let b = self.eval_bool(inner)?;
                Ok(Value::Bool(!b))
            }
            ExprKind::Binary(BinOp::And, lhs, rhs) => {
                // Short-circuit.
                if !self.eval_bool(lhs)? {
                    Ok(Value::Bool(false))
                } else {
                    Ok(Value::Bool(self.eval_bool(rhs)?))
                }
            }
            ExprKind::Binary(BinOp::Or, lhs, rhs) => {
                if self.eval_bool(lhs)? {
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(self.eval_bool(rhs)?))
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                eval_binop(*op, l, r)
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval_int(idx)?;
                match b {
                    Value::Array(arr) => {
                        let i = check_index(i, arr.len())?;
                        Ok(Value::Int(arr[i]))
                    }
                    Value::Str(s) => {
                        let bytes = s.as_bytes();
                        let i = check_index(i, bytes.len())?;
                        Ok(Value::Int(i64::from(bytes[i])))
                    }
                    other => Err(RuntimeError::TypeMismatch {
                        msg: format!("indexing into {}", other.ty()),
                    }),
                }
            }
            ExprKind::Call(builtin, args) => {
                let values: Vec<Value> =
                    args.iter().map(|a| self.eval(a)).collect::<Result<_, _>>()?;
                eval_builtin(*builtin, values)
            }
            ExprKind::ArrayLit(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.eval_int(e)?);
                }
                Ok(Value::Array(out))
            }
        }
    }
}

fn check_index(idx: i64, len: usize) -> Result<usize, RuntimeError> {
    if idx < 0 || (idx as usize) >= len {
        Err(RuntimeError::IndexOutOfBounds { index: idx, len })
    } else {
        Ok(idx as usize)
    }
}

fn apply_compound(op: AssignOp, current: Value, rhs: Value) -> Result<Value, RuntimeError> {
    match op {
        AssignOp::Set => unreachable!("Set handled by caller"),
        AssignOp::Add => eval_binop(BinOp::Add, current, rhs),
        AssignOp::Sub => eval_binop(BinOp::Sub, current, rhs),
        AssignOp::Mul => eval_binop(BinOp::Mul, current, rhs),
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use Value::*;
    let type_err = |l: &Value, r: &Value| RuntimeError::TypeMismatch {
        msg: format!("binary {op:?} on {} and {}", l.ty(), r.ty()),
    };
    match op {
        BinOp::Add => match (&l, &r) {
            (Int(a), Int(b)) => {
                Ok(Int(a.checked_add(*b).ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            (Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Sub => match (&l, &r) {
            (Int(a), Int(b)) => {
                Ok(Int(a.checked_sub(*b).ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Mul => match (&l, &r) {
            (Int(a), Int(b)) => {
                Ok(Int(a.checked_mul(*b).ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Div => match (&l, &r) {
            (Int(_), Int(0)) => Err(RuntimeError::DivisionByZero),
            (Int(a), Int(b)) => {
                Ok(Int(a.checked_div(*b).ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Mod => match (&l, &r) {
            (Int(_), Int(0)) => Err(RuntimeError::DivisionByZero),
            (Int(a), Int(b)) => {
                Ok(Int(a.checked_rem(*b).ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (&l, &r) {
            (Int(a), Int(b)) => Ok(Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                _ => a >= b,
            })),
            _ => Err(type_err(&l, &r)),
        },
        BinOp::Eq => Ok(Bool(l == r)),
        BinOp::Ne => Ok(Bool(l != r)),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled by caller"),
    }
}

fn eval_builtin(builtin: Builtin, mut args: Vec<Value>) -> Result<Value, RuntimeError> {
    let type_err = |msg: &str| RuntimeError::TypeMismatch { msg: msg.to_string() };
    match builtin {
        Builtin::Len => match &args[0] {
            Value::Array(a) => Ok(Value::Int(a.len() as i64)),
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            _ => Err(type_err("len on non-collection")),
        },
        Builtin::Substring => {
            let (s, i, j) = match (&args[0], &args[1], &args[2]) {
                (Value::Str(s), Value::Int(i), Value::Int(j)) => (s.clone(), *i, *j),
                _ => return Err(type_err("substring expects (str, int, int)")),
            };
            if i < 0 || j < i || (j as usize) > s.len() {
                return Err(RuntimeError::SubstringOutOfRange {
                    start: i,
                    end: j,
                    len: s.len(),
                });
            }
            Ok(Value::Str(s[i as usize..j as usize].to_string()))
        }
        Builtin::Abs => match &args[0] {
            Value::Int(v) => {
                Ok(Value::Int(v.checked_abs().ok_or(RuntimeError::ArithmeticOverflow)?))
            }
            _ => Err(type_err("abs on non-int")),
        },
        Builtin::Min | Builtin::Max => match (&args[0], &args[1]) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if builtin == Builtin::Min {
                *a.min(b)
            } else {
                *a.max(b)
            })),
            _ => Err(type_err("min/max on non-ints")),
        },
        Builtin::NewArray => match (&args[0], &args[1]) {
            (Value::Int(n), Value::Int(v)) => {
                if *n < 0 || *n > 1_000_000 {
                    return Err(RuntimeError::InvalidArrayLength(*n));
                }
                Ok(Value::Array(vec![*v; *n as usize]))
            }
            _ => Err(type_err("newArray expects (int, int)")),
        },
        Builtin::Push => {
            let v = match args.pop() {
                Some(Value::Int(v)) => v,
                _ => return Err(type_err("push expects int element")),
            };
            match args.pop() {
                Some(Value::Array(mut a)) => {
                    a.push(v);
                    Ok(Value::Array(a))
                }
                _ => Err(type_err("push expects array")),
            }
        }
        Builtin::CharToStr => match &args[0] {
            Value::Int(c) => {
                let c = u8::try_from(*c & 0x7f).unwrap_or(b'?');
                Ok(Value::Str((c as char).to_string()))
            }
            _ => Err(type_err("charToStr on non-int")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str, inputs: &[Value]) -> Result<RunResult, RuntimeError> {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        run(&p, inputs)
    }

    #[test]
    fn runs_bubble_sort() {
        let src = "fn sortArray(a: array<int>) -> array<int> {
            for (let i: int = len(a) - 1; i > 0; i -= 1) {
                for (let j: int = 0; j < i; j += 1) {
                    if (a[j] > a[j + 1]) {
                        let tmp: int = a[j];
                        a[j] = a[j + 1];
                        a[j + 1] = tmp;
                    }
                }
            }
            return a;
        }";
        let r = run_src(src, &[Value::Array(vec![8, 5, 1, 4, 3])]).unwrap();
        assert_eq!(r.return_value, Value::Array(vec![1, 3, 4, 5, 8]));
        assert!(!r.events.is_empty());
    }

    #[test]
    fn i_plus_eq_i_equals_i_times_2_states() {
        // §3's motivating pair: different symbolic statements, identical
        // program states.
        let r1 = run_src("fn f(i: int) -> int { i += i; return i; }", &[Value::Int(21)]).unwrap();
        let r2 = run_src("fn f(i: int) -> int { i *= 2; return i; }", &[Value::Int(21)]).unwrap();
        let states1: Vec<_> = r1.events.iter().map(|e| e.state.clone()).collect();
        let states2: Vec<_> = r2.events.iter().map(|e| e.state.clone()).collect();
        assert_eq!(states1, states2);
    }

    #[test]
    fn guard_events_record_direction() {
        let r = run_src(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }",
            &[Value::Int(5)],
        )
        .unwrap();
        assert_eq!(r.events[0].kind, EventKind::Guard { taken: true });
        let r = run_src(
            "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }",
            &[Value::Int(-5)],
        )
        .unwrap();
        assert_eq!(r.events[0].kind, EventKind::Guard { taken: false });
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let r = run_src(
            "fn f(x: int) -> bool { return x != 0 && 10 / x > 1; }",
            &[Value::Int(0)],
        )
        .unwrap();
        assert_eq!(r.return_value, Value::Bool(false));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = run_src("fn f(x: int) -> int { return 1 / x; }", &[Value::Int(0)]);
        assert_eq!(e.unwrap_err(), RuntimeError::DivisionByZero);
    }

    #[test]
    fn index_out_of_bounds_is_an_error() {
        let e = run_src("fn f(a: array<int>) -> int { return a[5]; }", &[Value::Array(vec![1])]);
        assert!(matches!(e.unwrap_err(), RuntimeError::IndexOutOfBounds { index: 5, len: 1 }));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let p = minilang::parse("fn f() -> int { while (true) { let x: int = 0; } return 0; }")
            .unwrap();
        let e = run_with_fuel(&p, &[], 100);
        assert_eq!(e.unwrap_err(), RuntimeError::OutOfFuel);
    }

    #[test]
    fn missing_return_is_an_error() {
        let e = run_src(
            "fn f(x: int) -> int { if (x > 0) { return 1; } }",
            &[Value::Int(-1)],
        );
        assert_eq!(e.unwrap_err(), RuntimeError::MissingReturn);
    }

    #[test]
    fn arity_and_type_mismatches_are_errors() {
        let src = "fn f(x: int) -> int { return x; }";
        assert!(matches!(
            run_src(src, &[]).unwrap_err(),
            RuntimeError::ArityMismatch { expected: 1, actual: 0 }
        ));
        assert!(matches!(
            run_src(src, &[Value::Bool(true)]).unwrap_err(),
            RuntimeError::InputTypeMismatch { .. }
        ));
    }

    #[test]
    fn break_and_continue() {
        let r = run_src(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) {
                    if (i == 2) { continue; }
                    if (i == 5) { break; }
                    s += i;
                }
                return s;
            }",
            &[Value::Int(10)],
        )
        .unwrap();
        // 0 + 1 + 3 + 4 = 8
        assert_eq!(r.return_value, Value::Int(8));
    }

    #[test]
    fn string_rotation_example_from_paper() {
        let src = r#"fn isStringRotation(a: str, b: str) -> bool {
            if (len(a) != len(b)) { return false; }
            for (let i: int = 1; i < len(a); i += 1) {
                let tail: str = substring(a, i, len(a));
                let wrap: str = substring(a, 0, i);
                if (tail + wrap == b) { return true; }
            }
            return false;
        }"#;
        let yes = run_src(src, &[Value::Str("abc".into()), Value::Str("bca".into())]).unwrap();
        assert_eq!(yes.return_value, Value::Bool(true));
        let no = run_src(src, &[Value::Str("abc".into()), Value::Str("cab".into())]).unwrap();
        assert_eq!(no.return_value, Value::Bool(true));
        let no = run_src(src, &[Value::Str("abc".into()), Value::Str("acb".into())]).unwrap();
        assert_eq!(no.return_value, Value::Bool(false));
    }

    #[test]
    fn coverage_accounts_lines_and_stmts() {
        let src = "fn f(x: int) -> int {\nif (x > 0) {\nreturn 1;\n}\nreturn 0;\n}";
        let r = run_src(src, &[Value::Int(1)]).unwrap();
        // Guard + then-return; the else-path return is uncovered.
        assert_eq!(r.stmt_coverage.len(), 2);
        assert!(r.line_coverage.contains(&2));
        assert!(r.line_coverage.contains(&3));
        assert!(!r.line_coverage.contains(&5));
    }

    #[test]
    fn states_track_scoped_visibility() {
        let src = "fn f(x: int) -> int {\nlet y: int = 1;\nif (x > 0) {\nlet z: int = 2;\nx += z;\n}\nreturn x + y;\n}";
        let r = run_src(src, &[Value::Int(3)]).unwrap();
        // After the if-block ends, z leaves scope: the return event's state
        // must show z as ⊥ again.
        let last = r.events.last().unwrap();
        let layout_names = ["x", "y", "z"];
        assert_eq!(last.state.values[2], None, "z must be ⊥ after its block: {layout_names:?}");
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let e = run_src(
            "fn f(x: int) -> int { return x * x; }",
            &[Value::Int(i64::MAX / 2)],
        );
        assert_eq!(e.unwrap_err(), RuntimeError::ArithmeticOverflow);
    }

    #[test]
    fn initial_state_has_params_bound_and_locals_bottom() {
        let r = run_src(
            "fn f(x: int) -> int { let y: int = x; return y; }",
            &[Value::Int(7)],
        )
        .unwrap();
        assert_eq!(r.initial_state.values[0], Some(Value::Int(7)));
        assert_eq!(r.initial_state.values[1], None);
    }
}
