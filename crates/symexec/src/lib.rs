//! # symexec — symbolic execution with path conditions
//!
//! Implements the front half of the paper's §5.1 pipeline: "we symbolically
//! execute P to obtain U distinct paths, where each path σᵢ is associated
//! with a condition φᵢ. By solving φᵢ, we obtain concrete traces."
//!
//! - [`sym`] — symbolic integer expressions and boolean constraints,
//! - [`solver`] — a bounded model finder over small integer domains
//!   (the documented SMT substitution; see DESIGN.md §4),
//! - [`exec`] — bounded path enumeration producing [`SymPath`]s, each with
//!   a concrete witness input that reproduces the path under the tracing
//!   interpreter.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use symexec::{symbolic_execute, SymExecConfig};
//!
//! let program = minilang::parse(
//!     "fn absOf(x: int) -> int {
//!          if (x < 0) { return 0 - x; }
//!          return x;
//!      }",
//! )?;
//! let (paths, stats) = symbolic_execute(&program, &SymExecConfig::default());
//! assert_eq!(paths.len(), 2);
//! assert_eq!(stats.sat_paths, 2);
//!
//! // Each path's witness reproduces the path concretely.
//! for path in &paths {
//!     let run = interp::run(&program, &path.witness)?;
//!     let steps: Vec<_> = run.events.iter().map(|e| e.path_step()).collect();
//!     assert_eq!(steps, path.steps);
//! }
//! # Ok(())
//! # }
//! ```

pub mod exec;
pub mod solver;
pub mod sym;

pub use exec::{
    symbolic_execute, symbolic_execute_canon, symbolic_execute_stored, SymExecConfig,
    SymExecStats, SymPath,
};
pub use solver::{solve, SolveResult, SolverConfig};
pub use sym::{IntOp, PathCondition, SymBool, SymInt, SymVar};
