//! The symbolic executor: path enumeration with path conditions.
//!
//! Implements the §5.1 pipeline front half: "we symbolically execute P to
//! obtain U distinct paths, where each path σᵢ is associated with a
//! condition φᵢ". Loops are unrolled under a per-path step budget; guards
//! fork the state; branch feasibility is pruned with the bounded solver;
//! surviving paths are solved for a concrete witness input.
//!
//! Scope (documented substitution, DESIGN.md §4): parameters of type
//! `int`, `bool` and `array<int>` are treated symbolically (array lengths
//! are case-split over `0..=max_array_len`); `str` parameters are not
//! supported symbolically — programs using them fall back to the
//! feedback-directed random generator, exactly as the paper falls back to
//! grouping Randoop executions by path.

use crate::solver::{solve, SolveResult, SolverConfig};
use crate::sym::{IntOp, PathCondition, SymBool, SymInt, SymVar};
use interp::{EventKind, PathStep, Value};
use minilang::{
    AssignOp, BinOp, Block, Builtin, Expr, ExprKind, LValue, Program, Stmt, StmtKind, Type, UnOp,
};
use std::collections::HashMap;

/// Configuration of the symbolic executor.
#[derive(Debug, Clone, PartialEq)]
pub struct SymExecConfig {
    /// Maximum number of satisfiable paths to return (the paper's U).
    pub max_paths: usize,
    /// Per-path step budget (bounds loop unrolling).
    pub max_steps: usize,
    /// Array parameters are case-split over lengths `0..=max_array_len`.
    pub max_array_len: usize,
    /// Solver settings for the final witness search.
    pub solver: SolverConfig,
    /// Node budget for the per-guard feasibility pre-check (smaller than
    /// the witness search; `Unknown` counts as feasible).
    pub prune_nodes: u64,
    /// Consult the static analyses (`analysis::program_facts`) to take
    /// statically decided branches without solver calls. Pruning preserves
    /// the feasible-path set: a decided guard's untaken side is
    /// unsatisfiable under every input, so the solver would reject it
    /// anyway (see DESIGN.md §2d).
    pub use_analysis: bool,
}

impl Default for SymExecConfig {
    fn default() -> Self {
        SymExecConfig {
            max_paths: 48,
            max_steps: 300,
            max_array_len: 4,
            solver: SolverConfig::default(),
            prune_nodes: 20_000,
            use_analysis: true,
        }
    }
}

/// One enumerated program path.
#[derive(Debug, Clone, PartialEq)]
pub struct SymPath {
    /// The path's statement steps (identical shape to a concrete run's
    /// symbolic trace).
    pub steps: Vec<PathStep>,
    /// The path condition φ.
    pub condition: PathCondition,
    /// A concrete input witness satisfying φ.
    pub witness: Vec<Value>,
}

/// Why symbolic execution could not fully cover a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymExecStats {
    /// Paths returned with witnesses.
    pub sat_paths: usize,
    /// Paths whose condition was unsatisfiable within the solver bound.
    pub unsat_paths: usize,
    /// Paths dropped for exceeding the step budget or hitting an
    /// unsupported construct.
    pub aborted_paths: usize,
    /// Paths dropped because the witness search ran out of budget.
    pub unknown_paths: usize,
    /// Total solver invocations (feasibility pre-checks + witness
    /// searches).
    pub solver_calls: usize,
    /// Guard forks resolved by static analysis without any solver call.
    pub pruned_guards: usize,
    /// Branch-bearing statements the canonicalizer erased before
    /// execution (only set by [`symbolic_execute_canon`]): each one is a
    /// fork the enumeration never has to consider.
    pub canon_pruned: usize,
}

/// Symbolically executes `program`, returning satisfiable paths with
/// witnesses plus enumeration statistics.
///
/// Returns an empty path list (with `aborted_paths > 0`) for programs with
/// `str` parameters, which this executor does not model symbolically.
pub fn symbolic_execute(program: &Program, config: &SymExecConfig) -> (Vec<SymPath>, SymExecStats) {
    // Static facts are computed once per program; decided guards let the
    // engine skip both per-polarity feasibility solves at a fork.
    let facts = config.use_analysis.then(|| analysis::program_facts(program));
    execute_with_facts(program, config, facts)
}

/// [`symbolic_execute`] with the pruning facts resolved through the
/// artifact store: `key` is the FNV-1a hash of the source `program` was
/// parsed from, and a warm store serves the facts without re-running
/// the dataflow stack. With `store == None` this is exactly
/// [`symbolic_execute`].
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached facts artifact is corrupt
/// — surfaced rather than silently recomputed, mirroring the store's
/// corruption contract.
pub fn symbolic_execute_stored(
    program: &Program,
    config: &SymExecConfig,
    key: u64,
    store: Option<&store::Store>,
) -> Result<(Vec<SymPath>, SymExecStats), store::StoreError> {
    let facts = if config.use_analysis {
        Some(analysis::facts_with_store(program, key, store)?)
    } else {
        None
    };
    Ok(execute_with_facts(program, config, facts))
}

fn execute_with_facts(
    program: &Program,
    config: &SymExecConfig,
    facts: Option<analysis::ProgramFacts>,
) -> (Vec<SymPath>, SymExecStats) {
    let _span = obs::span!("symexec.execute");
    obs::counter!("symexec.programs").inc();
    let mut stats = SymExecStats::default();
    if program.function.params.iter().any(|p| p.ty == Type::Str) {
        stats.aborted_paths = 1;
        record_stats(&stats);
        return (Vec::new(), stats);
    }

    let mut paths: Vec<SymPath> = Vec::new();
    let mut seen_steps: std::collections::HashSet<Vec<PathStep>> = std::collections::HashSet::new();

    // Case-split over array-parameter lengths.
    let array_params: Vec<usize> = program
        .function
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.ty == Type::IntArray)
        .map(|(i, _)| i)
        .collect();
    let combos = length_combos(array_params.len(), config.max_array_len);

    'combos: for combo in combos {
        let mut engine = Engine { program, config, stats: &mut stats, facts: facts.as_ref() };
        let (init, spec) = engine.initial_state(&combo);
        let finished = engine.explore(init);
        for (state, returned) in finished {
            if !returned {
                stats.aborted_paths += 1;
                continue;
            }
            if seen_steps.contains(&state.steps) {
                continue;
            }
            stats.solver_calls += 1;
            let _solve_span = obs::span!("symexec.solve");
            match solve(&state.pc, spec.num_vars, &config.solver) {
                SolveResult::Sat(assignment) => {
                    let witness = spec.realize(&assignment);
                    seen_steps.insert(state.steps.clone());
                    paths.push(SymPath {
                        steps: state.steps,
                        condition: state.pc,
                        witness,
                    });
                    stats.sat_paths += 1;
                    if paths.len() >= config.max_paths {
                        break 'combos;
                    }
                }
                SolveResult::BoundedUnsat => stats.unsat_paths += 1,
                SolveResult::Unknown => stats.unknown_paths += 1,
            }
        }
    }
    record_stats(&stats);
    (paths, stats)
}

/// [`symbolic_execute`] over the canonical form of `program`.
///
/// When `config.use_analysis` is on, the program is first rewritten by
/// [`analysis::canonicalize`] — decided guards, dead stores, and
/// distractor branches disappear before enumeration ever starts, so the
/// engine explores the (provably equivalent) smaller program.
/// `stats.canon_pruned` counts the branch-bearing statements the
/// canonicalizer erased; the feasible path set of the canonical program
/// is a subset of the original's with identical observable semantics
/// (witness replay on the concrete interpreter agrees — property-tested
/// in `tests/symexec_properties.rs` / `tests/analysis_properties.rs`).
///
/// With `use_analysis` off this is exactly [`symbolic_execute`].
pub fn symbolic_execute_canon(
    program: &Program,
    config: &SymExecConfig,
) -> (Vec<SymPath>, SymExecStats) {
    if !config.use_analysis {
        return symbolic_execute(program, config);
    }
    let canon = analysis::canonicalize(program);
    let branches = |p: &Program| {
        p.statements()
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    minilang::StmtKind::If { .. }
                        | minilang::StmtKind::While { .. }
                        | minilang::StmtKind::For { .. }
                )
            })
            .count()
    };
    let pruned = branches(program).saturating_sub(branches(&canon.program));
    let (paths, mut stats) = symbolic_execute(&canon.program, config);
    stats.canon_pruned = pruned;
    obs::counter!("symexec.canon_pruned").add(pruned as u64);
    (paths, stats)
}

/// Mirrors one program's enumeration totals into the global metrics
/// registry so liger-lint/datagen drivers print them uniformly alongside
/// encoder and serving counters. Purely additive — the per-call
/// [`SymExecStats`] return value is unchanged.
fn record_stats(stats: &SymExecStats) {
    obs::counter!("symexec.sat_paths").add(stats.sat_paths as u64);
    obs::counter!("symexec.unsat_paths").add(stats.unsat_paths as u64);
    obs::counter!("symexec.aborted_paths").add(stats.aborted_paths as u64);
    obs::counter!("symexec.solver_calls").add(stats.solver_calls as u64);
    obs::counter!("symexec.pruned_guards").add(stats.pruned_guards as u64);
}

fn length_combos(n_arrays: usize, max_len: usize) -> Vec<Vec<usize>> {
    // Order lengths so mid-sized arrays come first: they exercise loops
    // without exploding the path count.
    let preferred: Vec<usize> = {
        let mut v: Vec<usize> = (0..=max_len).collect();
        v.sort_by_key(|&l| (l as i64 - 3).abs());
        v
    };
    let mut combos = vec![Vec::new()];
    for _ in 0..n_arrays {
        let mut next = Vec::new();
        for c in &combos {
            for &l in &preferred {
                let mut c2 = c.clone();
                c2.push(l);
                next.push(c2);
            }
        }
        combos = next;
    }
    combos
}

/// A symbolic runtime value.
#[derive(Debug, Clone, PartialEq)]
enum SymValue {
    Int(SymInt),
    Bool(SymBool),
    Str(String),
    Array(Vec<SymInt>),
}

/// How solver assignments map back to typed program inputs.
struct ParamSpec {
    num_vars: usize,
    params: Vec<ParamShape>,
}

enum ParamShape {
    Int(SymVar),
    Bool(SymVar),
    Array(Vec<SymVar>),
}

impl ParamSpec {
    fn realize(&self, assignment: &[i64]) -> Vec<Value> {
        self.params
            .iter()
            .map(|shape| match shape {
                ParamShape::Int(v) => Value::Int(assignment[v.0 as usize]),
                ParamShape::Bool(v) => Value::Bool(assignment[v.0 as usize] != 0),
                ParamShape::Array(vars) => {
                    Value::Array(vars.iter().map(|v| assignment[v.0 as usize]).collect())
                }
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
struct PState {
    scopes: Vec<HashMap<String, SymValue>>,
    pc: PathCondition,
    steps: Vec<PathStep>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// An unsupported construct on this path (symbolic index, symbolic string
/// operation, …) — the path is aborted.
struct Unsupported;

struct Engine<'a> {
    program: &'a Program,
    config: &'a SymExecConfig,
    stats: &'a mut SymExecStats,
    facts: Option<&'a analysis::ProgramFacts>,
}

impl<'a> Engine<'a> {
    fn initial_state(&mut self, array_lens: &[usize]) -> (PState, ParamSpec) {
        let mut next_var = 0u32;
        let mut fresh = || {
            let v = SymVar(next_var);
            next_var += 1;
            v
        };
        let mut scope = HashMap::new();
        let mut shapes = Vec::new();
        let mut pc = PathCondition::new();
        let mut array_idx = 0usize;
        for p in &self.program.function.params {
            match p.ty {
                Type::Int => {
                    let v = fresh();
                    scope.insert(p.name.clone(), SymValue::Int(SymInt::Var(v)));
                    shapes.push(ParamShape::Int(v));
                }
                Type::Bool => {
                    let v = fresh();
                    // Constrain to {0, 1}; the boolean value is `v == 1`.
                    pc.push(SymBool::Or(
                        Box::new(SymBool::Eq(SymInt::Var(v), SymInt::Const(0))),
                        Box::new(SymBool::Eq(SymInt::Var(v), SymInt::Const(1))),
                    ));
                    scope.insert(
                        p.name.clone(),
                        SymValue::Bool(SymBool::Eq(SymInt::Var(v), SymInt::Const(1))),
                    );
                    shapes.push(ParamShape::Bool(v));
                }
                Type::IntArray => {
                    let len = array_lens[array_idx];
                    array_idx += 1;
                    let vars: Vec<SymVar> = (0..len).map(|_| fresh()).collect();
                    scope.insert(
                        p.name.clone(),
                        SymValue::Array(vars.iter().map(|v| SymInt::Var(*v)).collect()),
                    );
                    shapes.push(ParamShape::Array(vars));
                }
                Type::Str => unreachable!("str params filtered before exploration"),
            }
        }
        (
            PState { scopes: vec![scope], pc, steps: Vec::new() },
            ParamSpec { num_vars: next_var as usize, params: shapes },
        )
    }

    /// Runs the whole function body, returning terminal states with a flag
    /// for "terminated via return".
    fn explore(&mut self, init: PState) -> Vec<(PState, bool)> {
        let body = &self.program.function.body;
        let outcomes = self.exec_block(body, init);
        outcomes
            .into_iter()
            .map(|(st, flow)| (st, flow == Flow::Return))
            .collect()
    }

    fn exec_block(&mut self, block: &Block, mut state: PState) -> Vec<(PState, Flow)> {
        state.scopes.push(HashMap::new());
        let mut active = vec![state];
        let mut finished: Vec<(PState, Flow)> = Vec::new();
        for stmt in &block.stmts {
            let mut next_active = Vec::new();
            for st in active {
                for (st2, flow) in self.exec_stmt(stmt, st) {
                    if flow == Flow::Normal {
                        next_active.push(st2);
                    } else {
                        finished.push((st2, flow));
                    }
                }
            }
            active = next_active;
            if active.is_empty() {
                break;
            }
        }
        finished.extend(active.into_iter().map(|st| (st, Flow::Normal)));
        for (st, _) in &mut finished {
            st.scopes.pop();
        }
        finished
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mut state: PState) -> Vec<(PState, Flow)> {
        if state.steps.len() >= self.config.max_steps {
            self.stats.aborted_paths += 1;
            return Vec::new();
        }
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let value = match self.eval(&state, init) {
                    Ok(v) => v,
                    Err(Unsupported) => {
                        self.stats.aborted_paths += 1;
                        return Vec::new();
                    }
                };
                state
                    .scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), value);
                state.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Exec });
                vec![(state, Flow::Normal)]
            }
            StmtKind::Assign { target, op, value } => {
                let rhs = match self.eval(&state, value) {
                    Ok(v) => v,
                    Err(Unsupported) => {
                        self.stats.aborted_paths += 1;
                        return Vec::new();
                    }
                };
                if self.apply_assign(&mut state, target, *op, rhs).is_err() {
                    self.stats.aborted_paths += 1;
                    return Vec::new();
                }
                state.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Exec });
                vec![(state, Flow::Normal)]
            }
            StmtKind::If { cond, then_block, else_block, .. } => {
                let branches = self.fork_guard(stmt, cond, state);
                let mut out = Vec::new();
                for (st, taken) in branches {
                    if taken {
                        out.extend(self.exec_block(then_block, st));
                    } else if let Some(e) = else_block {
                        out.extend(self.exec_block(e, st));
                    } else {
                        out.push((st, Flow::Normal));
                    }
                }
                out
            }
            StmtKind::While { cond, body } => {
                let mut out = Vec::new();
                let mut active = vec![state];
                while let Some(st) = active.pop() {
                    if st.steps.len() >= self.config.max_steps {
                        self.stats.aborted_paths += 1;
                        continue;
                    }
                    for (st2, taken) in self.fork_guard(stmt, cond, st) {
                        if !taken {
                            out.push((st2, Flow::Normal));
                            continue;
                        }
                        for (st3, flow) in self.exec_block(body, st2) {
                            match flow {
                                Flow::Normal | Flow::Continue => active.push(st3),
                                Flow::Break => out.push((st3, Flow::Normal)),
                                Flow::Return => out.push((st3, Flow::Return)),
                            }
                        }
                    }
                }
                out
            }
            StmtKind::For { init, cond, update, body } => {
                state.scopes.push(HashMap::new());
                let mut out = Vec::new();
                let mut after_init = self.exec_stmt(init, state);
                let mut active: Vec<PState> = Vec::new();
                for (st, flow) in after_init.drain(..) {
                    debug_assert_eq!(flow, Flow::Normal, "for-init cannot branch");
                    active.push(st);
                }
                while let Some(st) = active.pop() {
                    if st.steps.len() >= self.config.max_steps {
                        self.stats.aborted_paths += 1;
                        continue;
                    }
                    for (st2, taken) in self.fork_guard(stmt, cond, st) {
                        if !taken {
                            out.push((st2, Flow::Normal));
                            continue;
                        }
                        for (st3, flow) in self.exec_block(body, st2) {
                            match flow {
                                Flow::Normal | Flow::Continue => {
                                    for (st4, uflow) in self.exec_stmt(update, st3) {
                                        debug_assert_eq!(uflow, Flow::Normal);
                                        active.push(st4);
                                    }
                                }
                                Flow::Break => out.push((st3, Flow::Normal)),
                                Flow::Return => out.push((st3, Flow::Return)),
                            }
                        }
                    }
                }
                for (st, _) in &mut out {
                    st.scopes.pop();
                }
                out
            }
            StmtKind::Return(_) => {
                state.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Exec });
                vec![(state, Flow::Return)]
            }
            StmtKind::Break => {
                state.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Exec });
                vec![(state, Flow::Break)]
            }
            StmtKind::Continue => {
                state.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Exec });
                vec![(state, Flow::Continue)]
            }
        }
    }

    /// Evaluates a guard and forks the state on its polarity; concrete
    /// guards take a single branch. The guard event is recorded on every
    /// branch (mirroring the tracing interpreter's event stream).
    fn fork_guard(&mut self, stmt: &Stmt, cond: &Expr, state: PState) -> Vec<(PState, bool)> {
        let c = match self.eval(&state, cond) {
            Ok(SymValue::Bool(c)) => c,
            Ok(_) | Err(Unsupported) => {
                self.stats.aborted_paths += 1;
                return Vec::new();
            }
        };
        let mut out = Vec::new();
        let record = |mut st: PState, taken: bool| -> PState {
            st.steps.push(PathStep { stmt: stmt.id, kind: EventKind::Guard { taken } });
            st
        };
        if let SymBool::Const(b) = c {
            out.push((record(state, b), b));
            return out;
        }
        // A statically decided guard holds the same way on every execution
        // reaching it, so only the decided branch is feasible. The conjunct
        // is still pushed so path conditions (and witnesses) match the
        // unpruned enumeration exactly.
        if let Some(b) = self.facts.and_then(|f| f.decided_guard(stmt.id)) {
            self.stats.pruned_guards += 1;
            let mut st = state;
            st.pc.push(if b { c } else { c.negate() });
            out.push((record(st, b), b));
            return out;
        }
        let prune = SolverConfig { max_nodes: self.config.prune_nodes, ..self.config.solver };
        let num_vars = {
            // All variables ever created are < num vars of the spec; use
            // the max mentioned + 1 for the feasibility check.
            let mut vars = state.pc.vars();
            c.vars(&mut vars);
            vars.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0)
        };
        for taken in [true, false] {
            let mut st = state.clone();
            let conjunct = if taken { c.clone() } else { c.negate() };
            st.pc.push(conjunct);
            self.stats.solver_calls += 1;
            let _solve_span = obs::span!("symexec.solve");
            let feasible = match solve(&st.pc, num_vars, &prune) {
                SolveResult::Sat(_) | SolveResult::Unknown => true,
                SolveResult::BoundedUnsat => false,
            };
            if feasible {
                out.push((record(st, taken), taken));
            }
        }
        out
    }

    fn lookup<'s>(&self, state: &'s PState, name: &str) -> Option<&'s SymValue> {
        state.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn apply_assign(
        &mut self,
        state: &mut PState,
        target: &LValue,
        op: AssignOp,
        rhs: SymValue,
    ) -> Result<(), Unsupported> {
        match target {
            LValue::Var(name) => {
                let new = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let current =
                            self.lookup(state, name).cloned().ok_or(Unsupported)?;
                        compound(op, current, rhs)?
                    }
                };
                for scope in state.scopes.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name) {
                        *slot = new;
                        return Ok(());
                    }
                }
                Err(Unsupported)
            }
            LValue::Index(name, idx_expr) => {
                let idx = match self.eval(state, idx_expr)? {
                    SymValue::Int(SymInt::Const(i)) => i,
                    // Symbolic write index: out of scope for the bounded
                    // executor.
                    _ => return Err(Unsupported),
                };
                let current = self.lookup(state, name).cloned().ok_or(Unsupported)?;
                let SymValue::Array(mut arr) = current else { return Err(Unsupported) };
                if idx < 0 || idx as usize >= arr.len() {
                    // Out-of-bounds on this path: the concrete run would
                    // crash, so the path is dropped.
                    return Err(Unsupported);
                }
                let i = idx as usize;
                let new_elem = match op {
                    AssignOp::Set => rhs,
                    _ => compound(op, SymValue::Int(arr[i].clone()), rhs)?,
                };
                let SymValue::Int(e) = new_elem else { return Err(Unsupported) };
                arr[i] = e;
                for scope in state.scopes.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name) {
                        *slot = SymValue::Array(arr);
                        return Ok(());
                    }
                }
                Err(Unsupported)
            }
        }
    }

    fn eval(&self, state: &PState, expr: &Expr) -> Result<SymValue, Unsupported> {
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(SymValue::Int(SymInt::Const(*v))),
            ExprKind::BoolLit(b) => Ok(SymValue::Bool(SymBool::Const(*b))),
            ExprKind::StrLit(s) => Ok(SymValue::Str(s.clone())),
            ExprKind::Var(name) => self.lookup(state, name).cloned().ok_or(Unsupported),
            ExprKind::Unary(UnOp::Neg, inner) => match self.eval(state, inner)? {
                SymValue::Int(e) => Ok(SymValue::Int(match e {
                    SymInt::Const(v) => SymInt::Const(v.wrapping_neg()),
                    other => SymInt::Neg(Box::new(other)),
                })),
                _ => Err(Unsupported),
            },
            ExprKind::Unary(UnOp::Not, inner) => match self.eval(state, inner)? {
                SymValue::Bool(c) => Ok(SymValue::Bool(c.negate())),
                _ => Err(Unsupported),
            },
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(state, lhs)?;
                let r = self.eval(state, rhs)?;
                self.eval_binop(*op, l, r)
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(state, base)?;
                let i = match self.eval(state, idx)? {
                    SymValue::Int(SymInt::Const(i)) => i,
                    _ => return Err(Unsupported), // symbolic read index
                };
                match b {
                    SymValue::Array(arr) => {
                        if i < 0 || i as usize >= arr.len() {
                            Err(Unsupported)
                        } else {
                            Ok(SymValue::Int(arr[i as usize].clone()))
                        }
                    }
                    SymValue::Str(s) => {
                        let bytes = s.as_bytes();
                        if i < 0 || i as usize >= bytes.len() {
                            Err(Unsupported)
                        } else {
                            Ok(SymValue::Int(SymInt::Const(i64::from(bytes[i as usize]))))
                        }
                    }
                    _ => Err(Unsupported),
                }
            }
            ExprKind::Call(builtin, args) => self.eval_builtin(state, *builtin, args),
            ExprKind::ArrayLit(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    match self.eval(state, e)? {
                        SymValue::Int(v) => out.push(v),
                        _ => return Err(Unsupported),
                    }
                }
                Ok(SymValue::Array(out))
            }
        }
    }

    fn eval_binop(&self, op: BinOp, l: SymValue, r: SymValue) -> Result<SymValue, Unsupported> {
        use SymValue::*;
        match (op, l, r) {
            (BinOp::Add, Int(a), Int(b)) => Ok(Int(SymInt::binary(IntOp::Add, a, b))),
            (BinOp::Sub, Int(a), Int(b)) => Ok(Int(SymInt::binary(IntOp::Sub, a, b))),
            (BinOp::Mul, Int(a), Int(b)) => Ok(Int(SymInt::binary(IntOp::Mul, a, b))),
            (BinOp::Div, Int(a), Int(b)) => Ok(Int(SymInt::binary(IntOp::Div, a, b))),
            (BinOp::Mod, Int(a), Int(b)) => Ok(Int(SymInt::binary(IntOp::Mod, a, b))),
            (BinOp::Add, Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            (BinOp::Lt, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Lt(a, b)))),
            (BinOp::Le, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Le(a, b)))),
            (BinOp::Gt, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Lt(b, a)))),
            (BinOp::Ge, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Le(b, a)))),
            (BinOp::Eq, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Eq(a, b)))),
            (BinOp::Ne, Int(a), Int(b)) => Ok(Bool(fold_cmp(SymBool::Ne(a, b)))),
            (BinOp::Eq, Bool(a), Bool(b)) => Ok(Bool(bool_eq(a, b))),
            (BinOp::Ne, Bool(a), Bool(b)) => Ok(Bool(bool_eq(a, b).negate())),
            (BinOp::Eq, Str(a), Str(b)) => Ok(Bool(SymBool::Const(a == b))),
            (BinOp::Ne, Str(a), Str(b)) => Ok(Bool(SymBool::Const(a != b))),
            (BinOp::Eq, Array(a), Array(b)) => Ok(Bool(array_eq(&a, &b))),
            (BinOp::Ne, Array(a), Array(b)) => Ok(Bool(array_eq(&a, &b).negate())),
            (BinOp::And, Bool(a), Bool(b)) => Ok(Bool(fold_and(a, b))),
            (BinOp::Or, Bool(a), Bool(b)) => Ok(Bool(fold_or(a, b))),
            _ => Err(Unsupported),
        }
    }

    fn eval_builtin(
        &self,
        state: &PState,
        builtin: Builtin,
        args: &[Expr],
    ) -> Result<SymValue, Unsupported> {
        let vals: Vec<SymValue> =
            args.iter().map(|a| self.eval(state, a)).collect::<Result<_, _>>()?;
        match builtin {
            Builtin::Len => match &vals[0] {
                SymValue::Array(a) => Ok(SymValue::Int(SymInt::Const(a.len() as i64))),
                SymValue::Str(s) => Ok(SymValue::Int(SymInt::Const(s.len() as i64))),
                _ => Err(Unsupported),
            },
            Builtin::Abs => match vals.into_iter().next() {
                Some(SymValue::Int(SymInt::Const(v))) => {
                    Ok(SymValue::Int(SymInt::Const(v.checked_abs().ok_or(Unsupported)?)))
                }
                Some(SymValue::Int(e)) => Ok(SymValue::Int(SymInt::Abs(Box::new(e)))),
                _ => Err(Unsupported),
            },
            Builtin::Min | Builtin::Max => {
                let op = if builtin == Builtin::Min { IntOp::Min } else { IntOp::Max };
                match (&vals[0], &vals[1]) {
                    (SymValue::Int(a), SymValue::Int(b)) => {
                        Ok(SymValue::Int(SymInt::binary(op, a.clone(), b.clone())))
                    }
                    _ => Err(Unsupported),
                }
            }
            Builtin::NewArray => match (&vals[0], &vals[1]) {
                (SymValue::Int(SymInt::Const(n)), SymValue::Int(v)) => {
                    if *n < 0 || *n > 64 {
                        return Err(Unsupported);
                    }
                    Ok(SymValue::Array(vec![v.clone(); *n as usize]))
                }
                _ => Err(Unsupported), // symbolic length
            },
            Builtin::Push => match (&vals[0], &vals[1]) {
                (SymValue::Array(a), SymValue::Int(v)) => {
                    let mut a = a.clone();
                    a.push(v.clone());
                    Ok(SymValue::Array(a))
                }
                _ => Err(Unsupported),
            },
            Builtin::Substring => match (&vals[0], &vals[1], &vals[2]) {
                (
                    SymValue::Str(s),
                    SymValue::Int(SymInt::Const(i)),
                    SymValue::Int(SymInt::Const(j)),
                ) => {
                    if *i < 0 || j < i || (*j as usize) > s.len() {
                        Err(Unsupported)
                    } else {
                        Ok(SymValue::Str(s[*i as usize..*j as usize].to_string()))
                    }
                }
                _ => Err(Unsupported),
            },
            Builtin::CharToStr => match &vals[0] {
                SymValue::Int(SymInt::Const(c)) => {
                    let c = u8::try_from(*c & 0x7f).unwrap_or(b'?');
                    Ok(SymValue::Str((c as char).to_string()))
                }
                _ => Err(Unsupported),
            },
        }
    }
}

fn compound(op: AssignOp, current: SymValue, rhs: SymValue) -> Result<SymValue, Unsupported> {
    match (op, current, rhs) {
        (AssignOp::Add, SymValue::Int(a), SymValue::Int(b)) => {
            Ok(SymValue::Int(SymInt::binary(IntOp::Add, a, b)))
        }
        (AssignOp::Add, SymValue::Str(a), SymValue::Str(b)) => {
            Ok(SymValue::Str(format!("{a}{b}")))
        }
        (AssignOp::Sub, SymValue::Int(a), SymValue::Int(b)) => {
            Ok(SymValue::Int(SymInt::binary(IntOp::Sub, a, b)))
        }
        (AssignOp::Mul, SymValue::Int(a), SymValue::Int(b)) => {
            Ok(SymValue::Int(SymInt::binary(IntOp::Mul, a, b)))
        }
        _ => Err(Unsupported),
    }
}

/// Folds comparisons of constants to `SymBool::Const`.
fn fold_cmp(c: SymBool) -> SymBool {
    let concrete = match &c {
        SymBool::Lt(SymInt::Const(a), SymInt::Const(b)) => Some(a < b),
        SymBool::Le(SymInt::Const(a), SymInt::Const(b)) => Some(a <= b),
        SymBool::Eq(SymInt::Const(a), SymInt::Const(b)) => Some(a == b),
        SymBool::Ne(SymInt::Const(a), SymInt::Const(b)) => Some(a != b),
        _ => None,
    };
    match concrete {
        Some(b) => SymBool::Const(b),
        None => c,
    }
}

fn fold_and(a: SymBool, b: SymBool) -> SymBool {
    match (&a, &b) {
        (SymBool::Const(false), _) => SymBool::Const(false),
        (SymBool::Const(true), _) => b,
        (_, SymBool::Const(true)) => a,
        _ => SymBool::And(Box::new(a), Box::new(b)),
    }
}

fn fold_or(a: SymBool, b: SymBool) -> SymBool {
    match (&a, &b) {
        (SymBool::Const(true), _) => SymBool::Const(true),
        (SymBool::Const(false), _) => b,
        (_, SymBool::Const(false)) => a,
        _ => SymBool::Or(Box::new(a), Box::new(b)),
    }
}

fn bool_eq(a: SymBool, b: SymBool) -> SymBool {
    match (&a, &b) {
        (SymBool::Const(x), SymBool::Const(y)) => SymBool::Const(x == y),
        (SymBool::Const(true), _) => b,
        (_, SymBool::Const(true)) => a,
        (SymBool::Const(false), _) => b.negate(),
        (_, SymBool::Const(false)) => a.negate(),
        // a == b  ≡  (a && b) || (!a && !b)
        _ => SymBool::Or(
            Box::new(SymBool::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(SymBool::And(Box::new(a.negate()), Box::new(b.negate()))),
        ),
    }
}

fn array_eq(a: &[SymInt], b: &[SymInt]) -> SymBool {
    if a.len() != b.len() {
        return SymBool::Const(false);
    }
    let mut acc = SymBool::Const(true);
    for (x, y) in a.iter().zip(b) {
        acc = fold_and(acc, fold_cmp(SymBool::Eq(x.clone(), y.clone())));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths_of(src: &str) -> (Program, Vec<SymPath>, SymExecStats) {
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let (paths, stats) = symbolic_execute(&p, &SymExecConfig::default());
        (p, paths, stats)
    }

    #[test]
    fn enumerates_three_sign_paths() {
        let (_, paths, stats) = paths_of(
            "fn signOf(x: int) -> int {
                if (x > 0) { return 1; }
                if (x < 0) { return 0 - 1; }
                return 0;
            }",
        );
        assert_eq!(paths.len(), 3);
        assert_eq!(stats.sat_paths, 3);
        // Witnesses actually satisfy their paths when executed concretely.
        for path in &paths {
            assert_eq!(path.witness.len(), 1);
        }
    }

    #[test]
    fn witnesses_reproduce_their_paths_concretely() {
        let src = "fn classify(x: int, y: int) -> int {
            if (x > y) { return 1; }
            if (x == y) { return 2; }
            return 3;
        }";
        let (p, paths, _) = paths_of(src);
        assert_eq!(paths.len(), 3);
        for path in &paths {
            let run = interp::run(&p, &path.witness).unwrap();
            let concrete: Vec<PathStep> = run.events.iter().map(|e| e.path_step()).collect();
            assert_eq!(concrete, path.steps, "witness does not reproduce path");
        }
    }

    #[test]
    fn array_case_split_covers_loop_paths() {
        let src = "fn sumPositive(a: array<int>) -> int {
            let s: int = 0;
            for (let i: int = 0; i < len(a); i += 1) {
                if (a[i] > 0) { s += a[i]; }
            }
            return s;
        }";
        let (p, paths, _) = paths_of(src);
        // At minimum: the empty-array path plus branchy length≥1 paths.
        assert!(paths.len() >= 3, "got {} paths", paths.len());
        for path in &paths {
            let run = interp::run(&p, &path.witness).unwrap();
            let concrete: Vec<PathStep> = run.events.iter().map(|e| e.path_step()).collect();
            assert_eq!(concrete, path.steps);
        }
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        let (_, paths, _) = paths_of(
            "fn f(x: int) -> int {
                if (x > 0) {
                    if (x < 0) { return 99; }
                    return 1;
                }
                return 0;
            }",
        );
        // The x>0 && x<0 path must not appear.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn bool_params_split_both_ways() {
        let (_, paths, _) = paths_of(
            "fn f(b: bool) -> int {
                if (b) { return 1; }
                return 0;
            }",
        );
        assert_eq!(paths.len(), 2);
        let trues = paths
            .iter()
            .filter(|p| p.witness[0] == Value::Bool(true))
            .count();
        assert_eq!(trues, 1);
    }

    #[test]
    fn str_params_are_unsupported() {
        let (_, paths, stats) = paths_of("fn f(s: str) -> int { return len(s); }");
        assert!(paths.is_empty());
        assert!(stats.aborted_paths > 0);
    }

    #[test]
    fn while_loop_unrolls_within_budget() {
        let src = "fn countDown(n: int) -> int {
            let c: int = 0;
            while (n > 0) { n -= 1; c += 1; }
            return c;
        }";
        let (p, paths, _) = paths_of(src);
        assert!(paths.len() > 3);
        for path in &paths {
            let run = interp::run(&p, &path.witness).unwrap();
            let concrete: Vec<PathStep> = run.events.iter().map(|e| e.path_step()).collect();
            assert_eq!(concrete, path.steps);
        }
    }

    #[test]
    fn paths_are_deduplicated() {
        let (_, paths, _) = paths_of("fn f(x: int) -> int { return x + 1; }");
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn analysis_pruning_preserves_paths_with_fewer_solver_calls() {
        // `abs(x) >= 0` is symbolic to the engine but decided by the
        // interval analysis, so the fork is pruned statically.
        let src = "fn f(x: int, y: int) -> int {
            let lim: int = abs(x);
            if (lim >= 0) {
                if (y > 0) { return lim + y; }
                return lim;
            }
            return 0 - 1;
        }";
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let with = SymExecConfig::default();
        let without = SymExecConfig { use_analysis: false, ..SymExecConfig::default() };
        let (paths_with, stats_with) = symbolic_execute(&p, &with);
        let (paths_without, stats_without) = symbolic_execute(&p, &without);
        let steps = |ps: &[SymPath]| {
            let mut v: Vec<Vec<PathStep>> = ps.iter().map(|p| p.steps.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(steps(&paths_with), steps(&paths_without), "path set must be identical");
        assert!(stats_with.pruned_guards > 0);
        assert!(
            stats_with.solver_calls < stats_without.solver_calls,
            "pruning must save solver calls ({} vs {})",
            stats_with.solver_calls,
            stats_without.solver_calls
        );
    }

    #[test]
    fn canon_prunes_branches_and_preserves_semantics() {
        // The `min(d, 0) > 0` guard is decided false (and its condition is
        // fault-free), so the canonicalizer erases the whole branch along
        // with the dead `t` stores. The canonical program therefore has
        // strictly fewer branch-bearing statements, and every canonical
        // witness must observe identical semantics on the original program.
        let src = "fn f(x: int, d: int) -> int {
            let t: int = 0;
            if (min(d, 0) > 0) { t = 1; } else { t = 2; }
            if (x > 0) { return x + 1; }
            return 0 - x;
        }";
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let config = SymExecConfig::default();
        let (orig_paths, orig_stats) = symbolic_execute(&p, &config);
        let (canon_paths, canon_stats) = symbolic_execute_canon(&p, &config);
        assert!(canon_stats.canon_pruned > 0, "decided guard must be erased");
        assert!(
            canon_stats.sat_paths <= orig_stats.sat_paths,
            "canonical feasible path set must be a subset ({} vs {})",
            canon_stats.sat_paths,
            orig_stats.sat_paths
        );
        assert!(!canon_paths.is_empty());
        // Witness replay: parameters keep their order under renaming, so
        // each canonical witness runs on both programs and must agree.
        let canon = analysis::canonicalize(&p);
        for path in &canon_paths {
            let on_orig = interp::run(&p, &path.witness).map(|r| r.return_value);
            let on_canon = interp::run(&canon.program, &path.witness).map(|r| r.return_value);
            assert_eq!(on_orig.ok(), on_canon.ok(), "witness semantics diverge");
            // And the witness reproduces its path on the canonical program.
            let run = interp::run(&canon.program, &path.witness).unwrap();
            let concrete: Vec<PathStep> = run.events.iter().map(|e| e.path_step()).collect();
            assert_eq!(concrete, path.steps);
        }
        // Every original witness is still a feasible input of the canonical
        // program with the same observable result (no behavior was lost).
        for path in &orig_paths {
            let on_orig = interp::run(&p, &path.witness).map(|r| r.return_value);
            let on_canon = interp::run(&canon.program, &path.witness).map(|r| r.return_value);
            assert_eq!(on_orig.ok(), on_canon.ok());
        }
    }

    #[test]
    fn stored_matches_plain_and_hits_on_rerun() {
        let src = "fn f(x: int) -> int {
            if (true) { return x + 1; }
            return 0;
        }";
        let mut p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        p.assign_ids();
        let config = SymExecConfig::default();
        let key = store::hash::fnv1a_str(src);
        let dir = std::env::temp_dir().join(format!("lgrs-symexec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let st = store::Store::open(&dir).unwrap();

        let (plain, plain_stats) = symbolic_execute(&p, &config);
        let (cold, cold_stats) = symbolic_execute_stored(&p, &config, key, Some(&st)).unwrap();
        let (warm, warm_stats) = symbolic_execute_stored(&p, &config, key, Some(&st)).unwrap();
        for paths in [&cold, &warm] {
            assert_eq!(paths.len(), plain.len());
            for (a, b) in plain.iter().zip(paths.iter()) {
                assert_eq!(a.steps, b.steps);
                assert_eq!(a.witness, b.witness);
            }
        }
        assert_eq!(plain_stats.sat_paths, cold_stats.sat_paths);
        assert_eq!(plain_stats.sat_paths, warm_stats.sat_paths);
        // The facts artifact landed in the store on the cold pass.
        assert!(!st.is_empty(store::ArtifactKind::Facts).unwrap());
        // And with no store it is exactly the plain entry point.
        let (none, _) = symbolic_execute_stored(&p, &config, key, None).unwrap();
        assert_eq!(none.len(), plain.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn canon_without_analysis_is_plain_symexec() {
        let src = "fn f(x: int) -> int {
            if (x > 0) { return 1; }
            return 0;
        }";
        let p = minilang::parse(src).unwrap();
        minilang::typecheck(&p).unwrap();
        let config = SymExecConfig { use_analysis: false, ..SymExecConfig::default() };
        let (plain, plain_stats) = symbolic_execute(&p, &config);
        let (via_canon, canon_stats) = symbolic_execute_canon(&p, &config);
        assert_eq!(canon_stats.canon_pruned, 0);
        assert_eq!(plain.len(), via_canon.len());
        assert_eq!(plain_stats.sat_paths, canon_stats.sat_paths);
    }
}
