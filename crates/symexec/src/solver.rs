//! A bounded constraint solver for path conditions.
//!
//! The paper's pipeline solves each path condition φᵢ to seed concrete
//! executions. Full SMT is out of scope offline (see DESIGN.md §4), so we
//! use a *bounded model finder*: backtracking search over a small integer
//! domain with per-variable constraint scheduling — each conjunct is
//! checked as soon as all its variables are assigned, pruning the subtree
//! early. MiniLang path conditions are conjunctions of (mostly linear)
//! comparisons over a handful of variables, for which this is fast and,
//! within the bound, complete.

use crate::sym::{PathCondition, SymVar};
use std::collections::BTreeSet;

/// Result of a bounded satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A witness assignment (indexed by [`SymVar`] number).
    Sat(Vec<i64>),
    /// No assignment exists within the bound.
    BoundedUnsat,
    /// The node budget was exhausted before a decision.
    Unknown,
}

impl SolveResult {
    /// True when a witness was found.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Variables range over `[-bound, bound]`.
    pub bound: i64,
    /// Maximum number of search nodes before giving up with
    /// [`SolveResult::Unknown`].
    pub max_nodes: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { bound: 16, max_nodes: 2_000_000 }
    }
}

/// Searches for an assignment of `num_vars` variables in
/// `[-bound, bound]^num_vars` satisfying `condition`.
///
/// Variables not mentioned by the condition are assigned a small default
/// immediately (they are unconstrained). The domain is enumerated from
/// small magnitudes outward (0, 1, -1, 2, -2, …) so witnesses are "nice"
/// values, matching how a test generator would pick inputs.
pub fn solve(condition: &PathCondition, num_vars: usize, config: &SolverConfig) -> SolveResult {
    // Schedule: conjunct j fires at the latest-assigned variable it
    // mentions (variables are assigned in index order).
    let mentioned: BTreeSet<SymVar> = condition.vars();
    let mut fire_at: Vec<Vec<usize>> = vec![Vec::new(); num_vars + 1];
    for (j, c) in condition.conjuncts.iter().enumerate() {
        let mut vars = BTreeSet::new();
        c.vars(&mut vars);
        let latest = vars.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0);
        if latest > num_vars {
            // Constraint mentions a variable beyond num_vars: treat as
            // unsatisfiable input rather than panicking.
            return SolveResult::BoundedUnsat;
        }
        fire_at[latest].push(j);
    }

    // Check variable-free conjuncts immediately.
    let mut assignment = vec![0i64; num_vars];
    for &j in &fire_at[0] {
        match condition.conjuncts[j].eval(&assignment) {
            Some(true) => {}
            _ => return SolveResult::BoundedUnsat,
        }
    }

    let domain: Vec<i64> = {
        let mut d = vec![0];
        for v in 1..=config.bound {
            d.push(v);
            d.push(-v);
        }
        d
    };

    let mut nodes = 0u64;
    match search(
        condition,
        &fire_at,
        &mentioned,
        &domain,
        &mut assignment,
        0,
        &mut nodes,
        config.max_nodes,
    ) {
        Search::Found => SolveResult::Sat(assignment),
        Search::Exhausted => SolveResult::BoundedUnsat,
        Search::Budget => SolveResult::Unknown,
    }
}

enum Search {
    Found,
    Exhausted,
    Budget,
}

#[allow(clippy::too_many_arguments)]
fn search(
    condition: &PathCondition,
    fire_at: &[Vec<usize>],
    mentioned: &BTreeSet<SymVar>,
    domain: &[i64],
    assignment: &mut Vec<i64>,
    var: usize,
    nodes: &mut u64,
    max_nodes: u64,
) -> Search {
    if var == assignment.len() {
        return Search::Found;
    }
    // Unconstrained variable: pin to 0 and move on.
    if !mentioned.contains(&SymVar(var as u32)) {
        assignment[var] = 0;
        return check_and_descend(
            condition, fire_at, mentioned, domain, assignment, var, nodes, max_nodes,
        );
    }
    for &value in domain {
        *nodes += 1;
        if *nodes > max_nodes {
            return Search::Budget;
        }
        assignment[var] = value;
        match check_and_descend(
            condition, fire_at, mentioned, domain, assignment, var, nodes, max_nodes,
        ) {
            Search::Found => return Search::Found,
            Search::Budget => return Search::Budget,
            Search::Exhausted => {}
        }
    }
    Search::Exhausted
}

#[allow(clippy::too_many_arguments)]
fn check_and_descend(
    condition: &PathCondition,
    fire_at: &[Vec<usize>],
    mentioned: &BTreeSet<SymVar>,
    domain: &[i64],
    assignment: &mut Vec<i64>,
    var: usize,
    nodes: &mut u64,
    max_nodes: u64,
) -> Search {
    for &j in &fire_at[var + 1] {
        match condition.conjuncts[j].eval(assignment) {
            Some(true) => {}
            // `None` (division by zero etc.) prunes like a violation.
            _ => return Search::Exhausted,
        }
    }
    search(condition, fire_at, mentioned, domain, assignment, var + 1, nodes, max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{SymBool, SymInt};

    fn var(i: u32) -> SymInt {
        SymInt::Var(SymVar(i))
    }

    fn pc(conjuncts: Vec<SymBool>) -> PathCondition {
        PathCondition { conjuncts }
    }

    #[test]
    fn finds_small_witness() {
        let c = pc(vec![SymBool::Lt(SymInt::Const(3), var(0))]);
        match solve(&c, 1, &SolverConfig::default()) {
            SolveResult::Sat(a) => assert_eq!(a, vec![4]), // smallest-magnitude witness
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn reports_bounded_unsat() {
        // x > 100 is outside the default bound of 16.
        let c = pc(vec![SymBool::Lt(SymInt::Const(100), var(0))]);
        assert_eq!(solve(&c, 1, &SolverConfig::default()), SolveResult::BoundedUnsat);
    }

    #[test]
    fn contradiction_is_unsat() {
        let c = pc(vec![
            SymBool::Lt(var(0), SymInt::Const(0)),
            SymBool::Lt(SymInt::Const(0), var(0)),
        ]);
        assert_eq!(solve(&c, 1, &SolverConfig::default()), SolveResult::BoundedUnsat);
    }

    #[test]
    fn multi_variable_relations() {
        // v0 == v1 + v2 and v1 > 2 and v2 > 2.
        let c = pc(vec![
            SymBool::Eq(
                var(0),
                SymInt::binary(crate::sym::IntOp::Add, var(1), var(2)),
            ),
            SymBool::Lt(SymInt::Const(2), var(1)),
            SymBool::Lt(SymInt::Const(2), var(2)),
        ]);
        match solve(&c, 3, &SolverConfig::default()) {
            SolveResult::Sat(a) => {
                assert_eq!(a[0], a[1] + a[2]);
                assert!(a[1] > 2 && a[2] > 2);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_vars_default_to_zero() {
        let c = pc(vec![SymBool::Eq(var(1), SymInt::Const(5))]);
        match solve(&c, 3, &SolverConfig::default()) {
            SolveResult::Sat(a) => assert_eq!(a, vec![0, 5, 0]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn division_guard_respected() {
        // 10 / v0 == 5 requires v0 == 2 (integer division also admits
        // nothing else in-bound except exactly 2).
        let c = pc(vec![SymBool::Eq(
            SymInt::binary(crate::sym::IntOp::Div, SymInt::Const(10), var(0)),
            SymInt::Const(5),
        )]);
        match solve(&c, 1, &SolverConfig::default()) {
            SolveResult::Sat(a) => assert_eq!(10 / a[0], 5),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // An unsatisfiable 4-variable nonlinear constraint with a tiny node
        // budget cannot be decided.
        let product = SymInt::binary(
            crate::sym::IntOp::Mul,
            SymInt::binary(crate::sym::IntOp::Mul, var(0), var(1)),
            SymInt::binary(crate::sym::IntOp::Mul, var(2), var(3)),
        );
        let c = pc(vec![SymBool::Eq(product, SymInt::Const(104_729))]); // prime
        let config = SolverConfig { bound: 16, max_nodes: 50 };
        assert_eq!(solve(&c, 4, &config), SolveResult::Unknown);
    }

    #[test]
    fn empty_condition_is_trivially_sat() {
        match solve(&PathCondition::new(), 2, &SolverConfig::default()) {
            SolveResult::Sat(a) => assert_eq!(a, vec![0, 0]),
            other => panic!("expected sat, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::sym::{IntOp, SymBool, SymInt, SymVar};

    #[test]
    fn abs_min_max_terms_are_solvable() {
        // |v0| == 5 and min(v0, 0) == v0 forces v0 == -5.
        let c = PathCondition {
            conjuncts: vec![
                SymBool::Eq(SymInt::Abs(Box::new(SymInt::Var(SymVar(0)))), SymInt::Const(5)),
                SymBool::Eq(
                    SymInt::binary(IntOp::Min, SymInt::Var(SymVar(0)), SymInt::Const(0)),
                    SymInt::Var(SymVar(0)),
                ),
            ],
        };
        match solve(&c, 1, &SolverConfig::default()) {
            SolveResult::Sat(a) => assert_eq!(a, vec![-5]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn zero_variables_with_true_condition() {
        let c = PathCondition { conjuncts: vec![SymBool::Const(true)] };
        assert!(solve(&c, 0, &SolverConfig::default()).is_sat());
    }

    #[test]
    fn zero_variables_with_false_condition() {
        let c = PathCondition { conjuncts: vec![SymBool::Const(false)] };
        assert_eq!(solve(&c, 0, &SolverConfig::default()), SolveResult::BoundedUnsat);
    }

    #[test]
    fn out_of_range_variable_mention_is_unsat_not_panic() {
        let c = PathCondition {
            conjuncts: vec![SymBool::Eq(SymInt::Var(SymVar(7)), SymInt::Const(1))],
        };
        assert_eq!(solve(&c, 2, &SolverConfig::default()), SolveResult::BoundedUnsat);
    }
}
