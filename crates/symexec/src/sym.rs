//! Symbolic values and path-condition constraints.
//!
//! §5.1 of the paper: "we symbolically execute P to obtain U distinct
//! paths, where each path σᵢ is associated with a condition φᵢ. By solving
//! φᵢ, we obtain concrete traces." These are the terms φ is built from:
//! integer expressions over symbolic input variables ([`SymInt`]) and
//! boolean formulas over them ([`SymBool`]).

use std::fmt;

/// Identifier of a symbolic integer variable (an input parameter or one
/// element of an input array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymVar(pub u32);

impl fmt::Display for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymInt {
    /// A constant.
    Const(i64),
    /// A symbolic input variable.
    Var(SymVar),
    /// Addition.
    Add(Box<SymInt>, Box<SymInt>),
    /// Subtraction.
    Sub(Box<SymInt>, Box<SymInt>),
    /// Multiplication.
    Mul(Box<SymInt>, Box<SymInt>),
    /// Truncating division (division by zero fails evaluation).
    Div(Box<SymInt>, Box<SymInt>),
    /// Remainder (remainder by zero fails evaluation).
    Mod(Box<SymInt>, Box<SymInt>),
    /// Negation.
    Neg(Box<SymInt>),
    /// Absolute value.
    Abs(Box<SymInt>),
    /// Minimum.
    Min(Box<SymInt>, Box<SymInt>),
    /// Maximum.
    Max(Box<SymInt>, Box<SymInt>),
}

impl SymInt {
    /// Convenience constructor for a binary node, folding constants.
    pub fn binary(op: IntOp, lhs: SymInt, rhs: SymInt) -> SymInt {
        if let (SymInt::Const(a), SymInt::Const(b)) = (&lhs, &rhs) {
            if let Some(v) = op.apply(*a, *b) {
                return SymInt::Const(v);
            }
        }
        match op {
            IntOp::Add => SymInt::Add(Box::new(lhs), Box::new(rhs)),
            IntOp::Sub => SymInt::Sub(Box::new(lhs), Box::new(rhs)),
            IntOp::Mul => SymInt::Mul(Box::new(lhs), Box::new(rhs)),
            IntOp::Div => SymInt::Div(Box::new(lhs), Box::new(rhs)),
            IntOp::Mod => SymInt::Mod(Box::new(lhs), Box::new(rhs)),
            IntOp::Min => SymInt::Min(Box::new(lhs), Box::new(rhs)),
            IntOp::Max => SymInt::Max(Box::new(lhs), Box::new(rhs)),
        }
    }

    /// Evaluates the expression under `assignment` (values indexed by
    /// [`SymVar`]). Returns `None` on division/remainder by zero or
    /// arithmetic overflow — assignments triggering those are rejected by
    /// the solver.
    pub fn eval(&self, assignment: &[i64]) -> Option<i64> {
        match self {
            SymInt::Const(v) => Some(*v),
            SymInt::Var(v) => assignment.get(v.0 as usize).copied(),
            SymInt::Add(a, b) => a.eval(assignment)?.checked_add(b.eval(assignment)?),
            SymInt::Sub(a, b) => a.eval(assignment)?.checked_sub(b.eval(assignment)?),
            SymInt::Mul(a, b) => a.eval(assignment)?.checked_mul(b.eval(assignment)?),
            SymInt::Div(a, b) => {
                let d = b.eval(assignment)?;
                if d == 0 {
                    None
                } else {
                    a.eval(assignment)?.checked_div(d)
                }
            }
            SymInt::Mod(a, b) => {
                let d = b.eval(assignment)?;
                if d == 0 {
                    None
                } else {
                    a.eval(assignment)?.checked_rem(d)
                }
            }
            SymInt::Neg(a) => a.eval(assignment)?.checked_neg(),
            SymInt::Abs(a) => a.eval(assignment)?.checked_abs(),
            SymInt::Min(a, b) => Some(a.eval(assignment)?.min(b.eval(assignment)?)),
            SymInt::Max(a, b) => Some(a.eval(assignment)?.max(b.eval(assignment)?)),
        }
    }

    /// Collects the variables occurring in the expression.
    pub fn vars(&self, out: &mut std::collections::BTreeSet<SymVar>) {
        match self {
            SymInt::Const(_) => {}
            SymInt::Var(v) => {
                out.insert(*v);
            }
            SymInt::Add(a, b)
            | SymInt::Sub(a, b)
            | SymInt::Mul(a, b)
            | SymInt::Div(a, b)
            | SymInt::Mod(a, b)
            | SymInt::Min(a, b)
            | SymInt::Max(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            SymInt::Neg(a) | SymInt::Abs(a) => a.vars(out),
        }
    }

    /// True when the expression contains no variables.
    pub fn is_concrete(&self) -> bool {
        let mut s = std::collections::BTreeSet::new();
        self.vars(&mut s);
        s.is_empty()
    }
}

/// Integer operators used by [`SymInt::binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl IntOp {
    fn apply(self, a: i64, b: i64) -> Option<i64> {
        match self {
            IntOp::Add => a.checked_add(b),
            IntOp::Sub => a.checked_sub(b),
            IntOp::Mul => a.checked_mul(b),
            IntOp::Div => {
                if b == 0 {
                    None
                } else {
                    a.checked_div(b)
                }
            }
            IntOp::Mod => {
                if b == 0 {
                    None
                } else {
                    a.checked_rem(b)
                }
            }
            IntOp::Min => Some(a.min(b)),
            IntOp::Max => Some(a.max(b)),
        }
    }
}

/// A boolean constraint over symbolic integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymBool {
    /// Literal truth value.
    Const(bool),
    /// `a < b`
    Lt(SymInt, SymInt),
    /// `a <= b`
    Le(SymInt, SymInt),
    /// `a == b`
    Eq(SymInt, SymInt),
    /// `a != b`
    Ne(SymInt, SymInt),
    /// Conjunction.
    And(Box<SymBool>, Box<SymBool>),
    /// Disjunction.
    Or(Box<SymBool>, Box<SymBool>),
    /// Negation.
    Not(Box<SymBool>),
}

impl SymBool {
    /// Evaluates the constraint under `assignment`; `None` on evaluation
    /// failure of a subterm (e.g. division by zero).
    pub fn eval(&self, assignment: &[i64]) -> Option<bool> {
        match self {
            SymBool::Const(b) => Some(*b),
            SymBool::Lt(a, b) => Some(a.eval(assignment)? < b.eval(assignment)?),
            SymBool::Le(a, b) => Some(a.eval(assignment)? <= b.eval(assignment)?),
            SymBool::Eq(a, b) => Some(a.eval(assignment)? == b.eval(assignment)?),
            SymBool::Ne(a, b) => Some(a.eval(assignment)? != b.eval(assignment)?),
            // Short-circuit like the language: when the left operand
            // decides the result, a failing right operand (e.g. division
            // by zero) must not poison the evaluation.
            SymBool::And(a, b) => match a.eval(assignment)? {
                false => Some(false),
                true => b.eval(assignment),
            },
            SymBool::Or(a, b) => match a.eval(assignment)? {
                true => Some(true),
                false => b.eval(assignment),
            },
            SymBool::Not(a) => Some(!a.eval(assignment)?),
        }
    }

    /// Collects the variables occurring in the constraint.
    pub fn vars(&self, out: &mut std::collections::BTreeSet<SymVar>) {
        match self {
            SymBool::Const(_) => {}
            SymBool::Lt(a, b) | SymBool::Le(a, b) | SymBool::Eq(a, b) | SymBool::Ne(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            SymBool::And(a, b) | SymBool::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            SymBool::Not(a) => a.vars(out),
        }
    }

    /// The negation of this constraint (with double negation folded).
    pub fn negate(&self) -> SymBool {
        match self {
            SymBool::Const(b) => SymBool::Const(!b),
            SymBool::Not(inner) => (**inner).clone(),
            other => SymBool::Not(Box::new(other.clone())),
        }
    }
}

/// A path condition φ: a conjunction of constraints accumulated at guards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathCondition {
    /// The conjuncts, in the order the path accumulated them.
    pub conjuncts: Vec<SymBool>,
}

impl PathCondition {
    /// The empty (always-true) condition.
    pub fn new() -> PathCondition {
        PathCondition::default()
    }

    /// Extends the condition with one more conjunct.
    pub fn push(&mut self, c: SymBool) {
        self.conjuncts.push(c);
    }

    /// Evaluates the whole conjunction under `assignment`.
    pub fn eval(&self, assignment: &[i64]) -> Option<bool> {
        for c in &self.conjuncts {
            if !c.eval(assignment)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// All variables mentioned by the condition.
    pub fn vars(&self) -> std::collections::BTreeSet<SymVar> {
        let mut out = std::collections::BTreeSet::new();
        for c in &self.conjuncts {
            c.vars(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: u32) -> SymInt {
        SymInt::Var(SymVar(i))
    }

    #[test]
    fn constant_folding_in_binary() {
        let e = SymInt::binary(IntOp::Add, SymInt::Const(2), SymInt::Const(3));
        assert_eq!(e, SymInt::Const(5));
        let e = SymInt::binary(IntOp::Add, var(0), SymInt::Const(3));
        assert!(matches!(e, SymInt::Add(_, _)));
    }

    #[test]
    fn eval_respects_assignment() {
        let e = SymInt::binary(IntOp::Mul, var(0), SymInt::Const(2));
        assert_eq!(e.eval(&[21]), Some(42));
    }

    #[test]
    fn division_by_zero_fails_eval() {
        let e = SymInt::binary(IntOp::Div, SymInt::Const(1), var(0));
        assert_eq!(e.eval(&[0]), None);
        assert_eq!(e.eval(&[2]), Some(0));
    }

    #[test]
    fn path_condition_conjunction() {
        let mut pc = PathCondition::new();
        pc.push(SymBool::Lt(var(0), SymInt::Const(10)));
        pc.push(SymBool::Lt(SymInt::Const(0), var(0)));
        assert_eq!(pc.eval(&[5]), Some(true));
        assert_eq!(pc.eval(&[15]), Some(false));
        assert_eq!(pc.eval(&[0]), Some(false));
    }

    #[test]
    fn negate_folds_double_negation() {
        let c = SymBool::Lt(var(0), SymInt::Const(1));
        assert_eq!(c.negate().negate(), c);
    }

    #[test]
    fn vars_collects_all_mentions() {
        let mut pc = PathCondition::new();
        pc.push(SymBool::Eq(var(0), var(2)));
        pc.push(SymBool::Ne(var(1), SymInt::Const(0)));
        let vars = pc.vars();
        assert_eq!(vars.len(), 3);
    }
}
