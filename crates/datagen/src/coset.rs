//! The COSET-like semantics-classification corpus (§6.2).
//!
//! COSET (Wang & Christodorescu [27]) contains programs by many
//! programmers solving ten coding problems; "the challenge for models to
//! resolve is to differentiate a variety of algorithms applied for solving
//! each coding problem (e.g. bubble sort vs. insertion sort vs. merge
//! sort)". This module generates the reproduction's equivalent: ten
//! problems, each with several algorithmic strategies, all rendered
//! through the variation engine. The label is the *strategy*.

use crate::variation::Knobs;

/// One (problem, strategy) pair of the COSET-like corpus. The class label
/// of the classification task is the index into [`Strategy::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Sorting — bubble sort (adjacent swaps, shrinking bound).
    SortBubble,
    /// Sorting — insertion sort (shift left into place).
    SortInsertion,
    /// Sorting — selection sort (select minimum, swap to front).
    SortSelection,
    /// Max — forward best-so-far scan.
    MaxForward,
    /// Max — backward best-so-far scan.
    MaxBackward,
    /// Max — `max()` accumulator.
    MaxBuiltin,
    /// Reverse — two-pointer in-place swap.
    ReverseSwap,
    /// Reverse — rebuild via `push` from the end.
    ReverseBuild,
    /// Sum — forward accumulation.
    SumForward,
    /// Sum — backward accumulation.
    SumBackward,
    /// Contains — early-return linear search.
    ContainsEarly,
    /// Contains — full-scan flag.
    ContainsFlag,
    /// Count occurrences — conditional increment.
    CountIf,
    /// Count occurrences — boolean-to-int arithmetic.
    CountArith,
    /// GCD — Euclid with remainder.
    GcdMod,
    /// GCD — Euclid with subtraction.
    GcdSub,
    /// Factorial — ascending product.
    FactUp,
    /// Factorial — descending product.
    FactDown,
    /// Fibonacci — rolling pair.
    FibPair,
    /// Fibonacci — array dynamic programming.
    FibArray,
    /// Power — repeated multiplication.
    PowLoop,
    /// Power — square-and-multiply.
    PowFast,
    /// Is-even — remainder test.
    EvenMod,
    /// Is-even — halving-doubling identity test.
    EvenHalf,
    /// Digit sum — remainder peeling.
    DigitMod,
    /// Digit count — division counting.
    DigitCount,
}

impl Strategy {
    /// All strategies (the class label space of Table 3's task).
    pub const ALL: [Strategy; 26] = [
        Strategy::SortBubble,
        Strategy::SortInsertion,
        Strategy::SortSelection,
        Strategy::MaxForward,
        Strategy::MaxBackward,
        Strategy::MaxBuiltin,
        Strategy::ReverseSwap,
        Strategy::ReverseBuild,
        Strategy::SumForward,
        Strategy::SumBackward,
        Strategy::ContainsEarly,
        Strategy::ContainsFlag,
        Strategy::CountIf,
        Strategy::CountArith,
        Strategy::GcdMod,
        Strategy::GcdSub,
        Strategy::FactUp,
        Strategy::FactDown,
        Strategy::FibPair,
        Strategy::FibArray,
        Strategy::PowLoop,
        Strategy::PowFast,
        Strategy::EvenMod,
        Strategy::EvenHalf,
        Strategy::DigitMod,
        Strategy::DigitCount,
    ];

    /// The class label (index into [`Strategy::ALL`]).
    pub fn label(self) -> usize {
        Strategy::ALL.iter().position(|s| *s == self).expect("strategy is in ALL")
    }

    /// The coding problem this strategy solves; strategies of the same
    /// problem produce identical outputs on identical inputs (the
    /// confusability the task is about).
    pub fn problem(self) -> &'static str {
        match self {
            Strategy::SortBubble | Strategy::SortInsertion | Strategy::SortSelection => "sort",
            Strategy::MaxForward | Strategy::MaxBackward | Strategy::MaxBuiltin => "max",
            Strategy::ReverseSwap | Strategy::ReverseBuild => "reverse",
            Strategy::SumForward | Strategy::SumBackward => "sum",
            Strategy::ContainsEarly | Strategy::ContainsFlag => "contains",
            Strategy::CountIf | Strategy::CountArith => "countOcc",
            Strategy::GcdMod | Strategy::GcdSub => "gcd",
            Strategy::FactUp | Strategy::FactDown => "factorial",
            Strategy::FibPair | Strategy::FibArray => "fibonacci",
            Strategy::PowLoop | Strategy::PowFast => "power",
            Strategy::EvenMod | Strategy::EvenHalf => "isEven",
            Strategy::DigitMod => "digitSum",
            Strategy::DigitCount => "digitCount",
        }
    }

    /// Renders one variant through the variation knobs. The generated
    /// function is always named `solve` so the method name carries no
    /// class signal — classification must come from structure/semantics.
    pub fn render(self, knobs: &Knobs) -> String {
        let nm = &knobs.names;
        let (arr, num, i, j, acc, tmp, aux) =
            (&nm.arr, &nm.n, &nm.idx, &nm.jdx, &nm.acc, &nm.tmp, &nm.aux);
        match self {
            Strategy::SortBubble => format!(
                "fn solve({arr}: array<int>) -> array<int> {{\nfor (let {i}: int = len({arr}) - 1; {i} > 0; {i} -= 1) {{\nfor (let {j}: int = 0; {cond}; {incr}) {{\nif ({arr}[{j}] > {arr}[{j} + 1]) {{\nlet {tmp}: int = {arr}[{j}];\n{arr}[{j}] = {arr}[{j} + 1];\n{arr}[{j} + 1] = {tmp};\n}}\n}}\n}}\nreturn {arr};\n}}",
                cond = knobs.lt(j, i),
                incr = knobs.incr_stmt(j),
            ),
            Strategy::SortInsertion => format!(
                "fn solve({arr}: array<int>) -> array<int> {{\nfor (let {i}: int = 1; {cond}; {incr}) {{\nlet {j}: int = {i};\nwhile ({j} > 0 && {arr}[{j} - 1] > {arr}[{j}]) {{\nlet {tmp}: int = {arr}[{j}];\n{arr}[{j}] = {arr}[{j} - 1];\n{arr}[{j} - 1] = {tmp};\n{j} -= 1;\n}}\n}}\nreturn {arr};\n}}",
                cond = knobs.lt(i, &format!("len({arr})")),
                incr = knobs.incr_stmt(i),
            ),
            Strategy::SortSelection => format!(
                "fn solve({arr}: array<int>) -> array<int> {{\nfor (let {i}: int = 0; {cond}; {incr}) {{\nlet {aux}: int = {i};\nfor (let {j}: int = {i} + 1; {cond2}; {incr2}) {{\nif ({arr}[{j}] < {arr}[{aux}]) {{\n{aux} = {j};\n}}\n}}\nlet {tmp}: int = {arr}[{i}];\n{arr}[{i}] = {arr}[{aux}];\n{arr}[{aux}] = {tmp};\n}}\nreturn {arr};\n}}",
                cond = knobs.lt(i, &format!("len({arr})")),
                incr = knobs.incr_stmt(i),
                cond2 = knobs.lt(j, &format!("len({arr})")),
                incr2 = knobs.incr_stmt(j),
            ),
            Strategy::MaxForward => format!(
                "fn solve({arr}: array<int>) -> int {{\nif (len({arr}) == 0) {{\nreturn 0;\n}}\nlet {acc}: int = {arr}[0];\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "1",
                    &format!("len({arr})"),
                    &format!("if ({arr}[{i}] > {acc}) {{\n{acc} = {arr}[{i}];\n}}"),
                ),
            ),
            Strategy::MaxBackward => format!(
                "fn solve({arr}: array<int>) -> int {{\nif (len({arr}) == 0) {{\nreturn 0;\n}}\nlet {acc}: int = {arr}[len({arr}) - 1];\nlet {i}: int = len({arr}) - 2;\nwhile ({i} >= 0) {{\nif ({arr}[{i}] > {acc}) {{\n{acc} = {arr}[{i}];\n}}\n{i} -= 1;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::MaxBuiltin => format!(
                "fn solve({arr}: array<int>) -> int {{\nif (len({arr}) == 0) {{\nreturn 0;\n}}\nlet {acc}: int = {arr}[0];\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "1",
                    &format!("len({arr})"),
                    &format!("{acc} = max({acc}, {arr}[{i}]);"),
                ),
            ),
            Strategy::ReverseSwap => format!(
                "fn solve({arr}: array<int>) -> array<int> {{\n{lp}\nreturn {arr};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr}) / 2"),
                    &format!("let {tmp}: int = {arr}[{i}];\n{arr}[{i}] = {arr}[len({arr}) - 1 - {i}];\n{arr}[len({arr}) - 1 - {i}] = {tmp};"),
                ),
            ),
            Strategy::ReverseBuild => format!(
                "fn solve({arr}: array<int>) -> array<int> {{\nlet {acc}: array<int> = [];\nlet {i}: int = len({arr}) - 1;\nwhile ({i} >= 0) {{\n{acc} = push({acc}, {arr}[{i}]);\n{i} -= 1;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::SumForward => format!(
                "fn solve({arr}: array<int>) -> int {{\nlet {acc}: int = 0;\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr})"),
                    &format!("{acc} += {arr}[{i}];"),
                ),
            ),
            Strategy::SumBackward => format!(
                "fn solve({arr}: array<int>) -> int {{\nlet {acc}: int = 0;\nlet {i}: int = len({arr}) - 1;\nwhile ({i} >= 0) {{\n{acc} += {arr}[{i}];\n{i} -= 1;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::ContainsEarly => format!(
                "fn solve({arr}: array<int>, {num}: int) -> bool {{\n{lp}\nreturn false;\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr})"),
                    &format!("if ({arr}[{i}] == {num}) {{\nreturn true;\n}}"),
                ),
            ),
            Strategy::ContainsFlag => format!(
                "fn solve({arr}: array<int>, {num}: int) -> bool {{\nlet {aux}: bool = false;\n{lp}\nreturn {aux};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr})"),
                    &format!("if ({arr}[{i}] == {num}) {{\n{aux} = true;\n}}"),
                ),
            ),
            Strategy::CountIf => format!(
                "fn solve({arr}: array<int>, {num}: int) -> int {{\nlet {acc}: int = 0;\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr})"),
                    &format!("if ({arr}[{i}] == {num}) {{\n{acc} += 1;\n}}"),
                ),
            ),
            Strategy::CountArith => format!(
                "fn solve({arr}: array<int>, {num}: int) -> int {{\nlet {acc}: int = 0;\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    i,
                    "0",
                    &format!("len({arr})"),
                    // 1 - min(1, |a[i] - x|) is 1 exactly on equality.
                    &format!("{acc} += 1 - min(1, abs({arr}[{i}] - {num}));"),
                ),
            ),
            Strategy::GcdMod => format!(
                "fn solve({num}: int, {aux}: int) -> int {{\nlet {acc}: int = abs({num});\nlet {tmp}: int = abs({aux});\nwhile ({tmp} != 0) {{\nlet {j}: int = {acc} % {tmp};\n{acc} = {tmp};\n{tmp} = {j};\n}}\nreturn {acc};\n}}"
            ),
            Strategy::GcdSub => format!(
                "fn solve({num}: int, {aux}: int) -> int {{\nlet {acc}: int = abs({num});\nlet {tmp}: int = abs({aux});\nif ({acc} == 0) {{\nreturn {tmp};\n}}\nif ({tmp} == 0) {{\nreturn {acc};\n}}\nwhile ({acc} != {tmp}) {{\nif ({acc} > {tmp}) {{\n{acc} -= {tmp};\n}} else {{\n{tmp} -= {acc};\n}}\n}}\nreturn {acc};\n}}"
            ),
            Strategy::FactUp => format!(
                "fn solve({num}: int) -> int {{\nif ({num} > 12) {{\nreturn 0;\n}}\nlet {acc}: int = 1;\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(j, "1", &format!("{num} + 1"), &format!("{acc} *= {j};")),
            ),
            Strategy::FactDown => format!(
                "fn solve({num}: int) -> int {{\nif ({num} > 12) {{\nreturn 0;\n}}\nlet {acc}: int = 1;\nlet {j}: int = {num};\nwhile ({j} > 1) {{\n{acc} *= {j};\n{j} -= 1;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::FibPair => format!(
                "fn solve({num}: int) -> int {{\nlet {acc}: int = 0;\nlet {tmp}: int = 1;\nlet {aux}: int = min(abs({num}), 40);\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(
                    j,
                    "0",
                    aux,
                    &format!("let {i}: int = {acc} + {tmp};\n{acc} = {tmp};\n{tmp} = {i};"),
                ),
            ),
            Strategy::FibArray => format!(
                "fn solve({num}: int) -> int {{\nlet {aux}: int = min(abs({num}), 40);\nlet {arr}: array<int> = newArray({aux} + 2, 0);\n{arr}[1] = 1;\n{lp}\nreturn {arr}[{aux}];\n}}",
                lp = knobs.counted_loop(
                    j,
                    "2",
                    &format!("{aux} + 1"),
                    &format!("{arr}[{j}] = {arr}[{j} - 1] + {arr}[{j} - 2];"),
                ),
            ),
            Strategy::PowLoop => format!(
                "fn solve({num}: int, {aux}: int) -> int {{\nlet {tmp}: int = abs({aux}) % 5;\nlet {acc}: int = 1;\n{lp}\nreturn {acc};\n}}",
                lp = knobs.counted_loop(j, "0", tmp, &format!("{acc} *= {num};")),
            ),
            Strategy::PowFast => format!(
                "fn solve({num}: int, {aux}: int) -> int {{\nlet {tmp}: int = abs({aux}) % 5;\nlet {acc}: int = 1;\nlet {i}: int = {num};\nwhile ({tmp} > 0) {{\nif ({tmp} % 2 == 1) {{\n{acc} *= {i};\n}}\n{i} *= {i};\n{tmp} = {tmp} / 2;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::EvenMod => format!(
                "fn solve({num}: int) -> bool {{\nif ({num} % 2 == 0) {{\nreturn true;\n}}\nreturn false;\n}}"
            ),
            Strategy::EvenHalf => format!(
                "fn solve({num}: int) -> bool {{\nlet {tmp}: int = {num} / 2;\nif ({tmp} * 2 == {num}) {{\nreturn true;\n}}\nreturn false;\n}}"
            ),
            Strategy::DigitMod => format!(
                "fn solve({num}: int) -> int {{\nlet {tmp}: int = abs({num});\nlet {acc}: int = 0;\nwhile ({tmp} > 0) {{\n{acc} += {tmp} % 10;\n{tmp} = {tmp} / 10;\n}}\nreturn {acc};\n}}"
            ),
            Strategy::DigitCount => format!(
                "fn solve({num}: int) -> int {{\nlet {tmp}: int = abs({num});\nif ({tmp} == 0) {{\nreturn 1;\n}}\nlet {acc}: int = 0;\nwhile ({tmp} > 0) {{\n{acc} += 1;\n{tmp} = {tmp} / 10;\n}}\nreturn {acc};\n}}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_strategy_parses_and_typechecks_under_many_knobs() {
        let mut rng = StdRng::seed_from_u64(300);
        for s in Strategy::ALL {
            for _ in 0..8 {
                let knobs = Knobs::random(&mut rng, 0.2);
                let src = s.render(&knobs);
                let p = minilang::parse(&src)
                    .unwrap_or_else(|e| panic!("{s:?} failed to parse: {e}\n{src}"));
                minilang::typecheck(&p)
                    .unwrap_or_else(|e| panic!("{s:?} failed to typecheck: {e}\n{src}"));
                assert_eq!(p.function.name, "solve");
            }
        }
    }

    #[test]
    fn labels_are_dense_and_unique() {
        for (i, s) in Strategy::ALL.iter().enumerate() {
            assert_eq!(s.label(), i);
        }
    }

    #[test]
    fn same_problem_strategies_agree_on_outputs() {
        // COSET's premise: different algorithms for the same problem are
        // I/O-equivalent; the model must tell them apart anyway.
        let mut rng = StdRng::seed_from_u64(301);
        let cfg = randgen::InputConfig::default();
        let groups: Vec<Vec<Strategy>> = vec![
            vec![Strategy::SortBubble, Strategy::SortInsertion, Strategy::SortSelection],
            vec![Strategy::MaxForward, Strategy::MaxBackward, Strategy::MaxBuiltin],
            vec![Strategy::ReverseSwap, Strategy::ReverseBuild],
            vec![Strategy::SumForward, Strategy::SumBackward],
            vec![Strategy::ContainsEarly, Strategy::ContainsFlag],
            vec![Strategy::CountIf, Strategy::CountArith],
            vec![Strategy::GcdMod, Strategy::GcdSub],
            vec![Strategy::FactUp, Strategy::FactDown],
            vec![Strategy::FibPair, Strategy::FibArray],
            vec![Strategy::PowLoop, Strategy::PowFast],
            vec![Strategy::EvenMod, Strategy::EvenHalf],
        ];
        let k = Knobs::plain();
        for group in groups {
            let programs: Vec<_> = group
                .iter()
                .map(|s| minilang::parse(&s.render(&k)).unwrap())
                .collect();
            for _ in 0..20 {
                let inputs = randgen::random_inputs(&programs[0], &cfg, &mut rng);
                let results: Vec<_> =
                    programs.iter().map(|p| interp::run(p, &inputs)).collect();
                let first = &results[0];
                for (s, r) in group.iter().zip(&results) {
                    match (first, r) {
                        (Ok(a), Ok(b)) => assert_eq!(
                            a.return_value, b.return_value,
                            "{:?} vs {s:?} on {inputs:?}",
                            group[0]
                        ),
                        _ => {
                            // Tolerate paired failures (e.g. overflow).
                            assert_eq!(first.is_err(), r.is_err(), "{:?} vs {s:?}", group[0]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bubble_sort_sorts() {
        let k = Knobs::plain();
        let p = minilang::parse(&Strategy::SortBubble.render(&k)).unwrap();
        let out = interp::run(&p, &[Value::Array(vec![8, 5, 1, 4, 3])]).unwrap().return_value;
        assert_eq!(out, Value::Array(vec![1, 3, 4, 5, 8]));
    }

    #[test]
    fn fib_strategies_compute_fibonacci() {
        let k = Knobs::plain();
        for s in [Strategy::FibPair, Strategy::FibArray] {
            let p = minilang::parse(&s.render(&k)).unwrap();
            let out = interp::run(&p, &[Value::Int(10)]).unwrap().return_value;
            assert_eq!(out, Value::Int(55), "{s:?}");
        }
    }
}
