//! # datagen — synthetic corpora for both evaluation tasks
//!
//! The paper evaluates on Java-med/Java-large (method-name prediction)
//! and COSET (semantics classification); neither is available offline, so
//! this crate generates laptop-scale equivalents that preserve the
//! *phenomena* the evaluation measures (DESIGN.md §1):
//!
//! - [`templates`] — 27 method behaviours rendered through the
//!   semantics-preserving [`variation`] engine (renaming incl. misleading
//!   identifiers, loop forms, `i += i` vs `i *= 2`, …), with deliberate
//!   confusable pairs (sum/product, max/min, …),
//! - [`coset`] — ten coding problems × several algorithmic strategies
//!   each, labelled by strategy,
//! - [`corpus`] — raw generation (including defective programs), the
//!   Table 1 filter pipeline (compile / executions / timeout / size), and
//!   train/valid/test splits.
//!
//! # Examples
//!
//! ```
//! use datagen::{Behavior, Knobs};
//!
//! let source = Behavior::SumArray.render(&Knobs::plain());
//! let program = minilang::parse(&source).unwrap();
//! assert_eq!(program.function.name, "sumArray");
//! ```

pub mod corpus;
pub mod coset;
pub mod templates;
pub mod variation;

pub use corpus::{
    corpus_fingerprint, filter_one_stored, generate_coset_corpus,
    generate_coset_corpus_with_store, generate_method_corpus, generate_method_corpus_with_store,
    split_indices, CorpusConfig, CosetCorpus, CosetSample, FilterReason, FilterStats,
    MethodCorpus, MethodSample, Split, DEFAULT_GEN_SEED,
};
pub use coset::Strategy;
pub use templates::Behavior;
pub use variation::{
    distractor_preamble, with_distractors, with_opaque_distractor, CmpStyle, IncrStyle, Knobs,
    LoopStyle, NameAssignment,
};
