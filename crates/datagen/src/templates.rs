//! Method-name corpus templates.
//!
//! The substitute for Java-med / Java-large (DESIGN.md §1): a catalogue of
//! method behaviours, each rendered through the variation engine into many
//! syntactically-diverse but semantically-identical variants. The method
//! name is the ground-truth label; several behaviour pairs are deliberate
//! *confusables* — near-identical syntax, different semantics (sum vs.
//! product, max vs. min, count-positive vs. count-negative) — so that
//! keyword mining is insufficient and trace reading is rewarded, which is
//! the regime the paper's Table 2 describes.

use crate::variation::Knobs;

/// One method behaviour of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Behavior {
    /// Sum of array elements.
    SumArray,
    /// Product of array elements.
    ProductArray,
    /// Maximum element.
    MaxArray,
    /// Minimum element.
    MinArray,
    /// Count of strictly positive elements.
    CountPositive,
    /// Count of strictly negative elements.
    CountNegative,
    /// Count of even elements.
    CountEven,
    /// Sum of even elements.
    SumEven,
    /// Sum of positive elements.
    SumPositive,
    /// Sum of absolute values.
    AbsSum,
    /// In-place reversal.
    ReverseArray,
    /// Membership test.
    ContainsValue,
    /// First index of a value (−1 when absent).
    IndexOfValue,
    /// Monotone non-decreasing test.
    IsSorted,
    /// Max minus min.
    RangeArray,
    /// Every element doubled.
    DoubleArray,
    /// Every element incremented.
    IncrementArray,
    /// Sum of `1..=n`.
    SumToN,
    /// Factorial (1 for n < 1).
    Factorial,
    /// Greatest common divisor.
    Gcd,
    /// `x` raised to a small bounded exponent.
    PowerOf,
    /// −1 / 0 / +1 sign.
    SignOf,
    /// Absolute value.
    AbsValue,
    /// Even test.
    IsEven,
    /// Digit sum of |n|.
    SumDigits,
    /// Decimal digit count of |n|.
    CountDigits,
    /// Decimal reversal of |n|.
    ReverseNumber,
}

impl Behavior {
    /// All behaviours in the catalogue.
    pub const ALL: [Behavior; 27] = [
        Behavior::SumArray,
        Behavior::ProductArray,
        Behavior::MaxArray,
        Behavior::MinArray,
        Behavior::CountPositive,
        Behavior::CountNegative,
        Behavior::CountEven,
        Behavior::SumEven,
        Behavior::SumPositive,
        Behavior::AbsSum,
        Behavior::ReverseArray,
        Behavior::ContainsValue,
        Behavior::IndexOfValue,
        Behavior::IsSorted,
        Behavior::RangeArray,
        Behavior::DoubleArray,
        Behavior::IncrementArray,
        Behavior::SumToN,
        Behavior::Factorial,
        Behavior::Gcd,
        Behavior::PowerOf,
        Behavior::SignOf,
        Behavior::AbsValue,
        Behavior::IsEven,
        Behavior::SumDigits,
        Behavior::CountDigits,
        Behavior::ReverseNumber,
    ];

    /// The ground-truth method name (the prediction target).
    pub fn name(self) -> &'static str {
        match self {
            Behavior::SumArray => "sumArray",
            Behavior::ProductArray => "productArray",
            Behavior::MaxArray => "maxArray",
            Behavior::MinArray => "minArray",
            Behavior::CountPositive => "countPositive",
            Behavior::CountNegative => "countNegative",
            Behavior::CountEven => "countEven",
            Behavior::SumEven => "sumEven",
            Behavior::SumPositive => "sumPositive",
            Behavior::AbsSum => "absSum",
            Behavior::ReverseArray => "reverseArray",
            Behavior::ContainsValue => "containsValue",
            Behavior::IndexOfValue => "indexOfValue",
            Behavior::IsSorted => "isSorted",
            Behavior::RangeArray => "rangeArray",
            Behavior::DoubleArray => "doubleArray",
            Behavior::IncrementArray => "incrementArray",
            Behavior::SumToN => "sumToN",
            Behavior::Factorial => "factorial",
            Behavior::Gcd => "gcd",
            Behavior::PowerOf => "powerOf",
            Behavior::SignOf => "signOf",
            Behavior::AbsValue => "absValue",
            Behavior::IsEven => "isEven",
            Behavior::SumDigits => "sumDigits",
            Behavior::CountDigits => "countDigits",
            Behavior::ReverseNumber => "reverseNumber",
        }
    }

    /// Alternative names real programmers give this behaviour. The corpus
    /// draws method names from this pool, so the name space is large and
    /// test names are frequently unseen as whole labels — the regime in
    /// which the paper's code2vec struggles (its predictions come from a
    /// closed whole-name vocabulary) while sub-token decoders share
    /// statistical strength across synonyms.
    /// The pools are built from sub-token *permutations* of the canonical
    /// name plus one `compute`-prefixed variant: the order-free sub-token
    /// targets stay (nearly) identical within a family, while the whole-
    /// name label space triples — the exact regime that punishes
    /// closed-label prediction without punishing sub-token decoding.
    pub fn name_pool(self) -> &'static [&'static str] {
        match self {
            Behavior::SumArray => &["sumArray", "arraySum", "computeArraySum"],
            Behavior::ProductArray => &["productArray", "arrayProduct", "computeArrayProduct"],
            Behavior::MaxArray => &["maxArray", "arrayMax", "computeArrayMax"],
            Behavior::MinArray => &["minArray", "arrayMin", "computeArrayMin"],
            Behavior::CountPositive => &["countPositive", "positiveCount", "computePositiveCount"],
            Behavior::CountNegative => &["countNegative", "negativeCount", "computeNegativeCount"],
            Behavior::CountEven => &["countEven", "evenCount", "computeEvenCount"],
            Behavior::SumEven => &["sumEven", "evenSum", "computeEvenSum"],
            Behavior::SumPositive => &["sumPositive", "positiveSum", "computePositiveSum"],
            Behavior::AbsSum => &["absSum", "sumAbs", "computeAbsSum"],
            Behavior::ReverseArray => &["reverseArray", "arrayReverse", "computeArrayReverse"],
            Behavior::ContainsValue => &["containsValue", "valueContains", "computeValueContains"],
            Behavior::IndexOfValue => &["indexOfValue", "valueOfIndex", "computeValueIndex"],
            Behavior::IsSorted => &["isSorted", "sortedIs", "computeSortedIs"],
            Behavior::RangeArray => &["rangeArray", "arrayRange", "computeArrayRange"],
            Behavior::DoubleArray => &["doubleArray", "arrayDouble", "computeArrayDouble"],
            Behavior::IncrementArray => &["incrementArray", "arrayIncrement", "computeArrayIncrement"],
            Behavior::SumToN => &["sumToN", "toNSum", "computeSumToN"],
            Behavior::Factorial => &["factorial", "factorialValue", "computeFactorial"],
            Behavior::Gcd => &["gcd", "gcdValue", "computeGcd"],
            Behavior::PowerOf => &["powerOf", "ofPower", "computePowerOf"],
            Behavior::SignOf => &["signOf", "ofSign", "computeSignOf"],
            Behavior::AbsValue => &["absValue", "valueAbs", "computeValueAbs"],
            Behavior::IsEven => &["isEven", "evenIs", "computeEvenIs"],
            Behavior::SumDigits => &["sumDigits", "digitsSum", "computeDigitsSum"],
            Behavior::CountDigits => &["countDigits", "digitsCount", "computeDigitsCount"],
            Behavior::ReverseNumber => &["reverseNumber", "numberReverse", "computeNumberReverse"],
        }
    }

    /// Renders one variant with an alternative method name drawn from
    /// [`Behavior::name_pool`].
    pub fn render_named(self, knobs: &Knobs, name: &str) -> String {
        let canonical = format!("fn {}(", self.name());
        self.render(knobs).replacen(&canonical, &format!("fn {name}("), 1)
    }

    /// Renders one variant of the behaviour through `knobs`. The produced
    /// source parses, type-checks, and is total on the random-input
    /// distribution of `randgen` (no division by zero, no out-of-bounds,
    /// bounded loops).
    pub fn render(self, knobs: &Knobs) -> String {
        let n = &knobs.names;
        let (arr, num, i, j, acc, tmp, aux) =
            (&n.arr, &n.n, &n.idx, &n.jdx, &n.acc, &n.tmp, &n.aux);
        match self {
            Behavior::SumArray => fold_loop(self, knobs, "0", &format!("{acc} += {arr}[{i}];")),
            Behavior::ProductArray => {
                fold_loop(self, knobs, "1", &format!("{acc} *= {arr}[{i}];"))
            }
            Behavior::SumPositive => fold_loop(
                self,
                knobs,
                "0",
                &format!("if ({arr}[{i}] > 0) {{\n{acc} += {arr}[{i}];\n}}"),
            ),
            Behavior::SumEven => fold_loop(
                self,
                knobs,
                "0",
                &format!("if ({arr}[{i}] % 2 == 0) {{\n{acc} += {arr}[{i}];\n}}"),
            ),
            Behavior::AbsSum => {
                fold_loop(self, knobs, "0", &format!("{acc} += abs({arr}[{i}]);"))
            }
            Behavior::CountPositive => fold_loop(
                self,
                knobs,
                "0",
                &format!("if ({arr}[{i}] > 0) {{\n{acc} += 1;\n}}"),
            ),
            Behavior::CountNegative => fold_loop(
                self,
                knobs,
                "0",
                &format!("if ({arr}[{i}] < 0) {{\n{acc} += 1;\n}}"),
            ),
            Behavior::CountEven => fold_loop(
                self,
                knobs,
                "0",
                &format!("if ({arr}[{i}] % 2 == 0) {{\n{acc} += 1;\n}}"),
            ),
            Behavior::MaxArray => extremum(self, knobs, ">"),
            Behavior::MinArray => extremum(self, knobs, "<"),
            Behavior::RangeArray => {
                let body = format!(
                    "if ({arr}[{i}] > {acc}) {{\n{acc} = {arr}[{i}];\n}}\nif ({arr}[{i}] < {tmp}) {{\n{tmp} = {arr}[{i}];\n}}"
                );
                let lp = knobs.counted_loop(i, "1", &format!("len({arr})"), &body);
                format!(
                    "fn {name}({arr}: array<int>) -> int {{\nif (len({arr}) == 0) {{\nreturn 0;\n}}\nlet {acc}: int = {arr}[0];\nlet {tmp}: int = {arr}[0];\n{lp}\nreturn {acc} - {tmp};\n}}",
                    name = self.name()
                )
            }
            Behavior::ReverseArray => {
                let body = format!(
                    "let {tmp}: int = {arr}[{i}];\n{arr}[{i}] = {arr}[len({arr}) - 1 - {i}];\n{arr}[len({arr}) - 1 - {i}] = {tmp};"
                );
                let lp = knobs.counted_loop(i, "0", &format!("len({arr}) / 2"), &body);
                format!(
                    "fn {name}({arr}: array<int>) -> array<int> {{\n{lp}\nreturn {arr};\n}}",
                    name = self.name()
                )
            }
            Behavior::ContainsValue => {
                let body = format!("if ({arr}[{i}] == {num}) {{\nreturn true;\n}}");
                let lp = knobs.counted_loop(i, "0", &format!("len({arr})"), &body);
                format!(
                    "fn {name}({arr}: array<int>, {num}: int) -> bool {{\n{lp}\nreturn false;\n}}",
                    name = self.name()
                )
            }
            Behavior::IndexOfValue => {
                let body = format!("if ({arr}[{i}] == {num}) {{\nreturn {i};\n}}");
                let lp = knobs.counted_loop(i, "0", &format!("len({arr})"), &body);
                format!(
                    "fn {name}({arr}: array<int>, {num}: int) -> int {{\n{lp}\nreturn 0 - 1;\n}}",
                    name = self.name()
                )
            }
            Behavior::IsSorted => {
                let body = format!("if ({arr}[{i}] > {arr}[{i} + 1]) {{\nreturn false;\n}}");
                let lp = knobs.counted_loop(i, "0", &format!("len({arr}) - 1"), &body);
                format!(
                    "fn {name}({arr}: array<int>) -> bool {{\nif (len({arr}) == 0) {{\nreturn true;\n}}\n{lp}\nreturn true;\n}}",
                    name = self.name()
                )
            }
            Behavior::DoubleArray => {
                let body = knobs.double_stmt(&format!("{arr}[{i}]")) + ";";
                let lp = knobs.counted_loop(i, "0", &format!("len({arr})"), &body);
                format!(
                    "fn {name}({arr}: array<int>) -> array<int> {{\n{lp}\nreturn {arr};\n}}",
                    name = self.name()
                )
            }
            Behavior::IncrementArray => {
                let body = knobs.incr_stmt(&format!("{arr}[{i}]")) + ";";
                let lp = knobs.counted_loop(i, "0", &format!("len({arr})"), &body);
                format!(
                    "fn {name}({arr}: array<int>) -> array<int> {{\n{lp}\nreturn {arr};\n}}",
                    name = self.name()
                )
            }
            Behavior::SumToN => {
                let body = format!("{acc} += {j};");
                let lp = knobs.counted_loop(j, "1", &format!("{num} + 1"), &body);
                format!(
                    "fn {name}({num}: int) -> int {{\nlet {acc}: int = 0;\n{lp}\nreturn {acc};\n}}",
                    name = self.name()
                )
            }
            Behavior::Factorial => {
                let body = format!("{acc} *= {j};");
                let lp = knobs.counted_loop(j, "1", &format!("{num} + 1"), &body);
                format!(
                    "fn {name}({num}: int) -> int {{\nlet {acc}: int = 1;\nif ({num} > 12) {{\nreturn 0;\n}}\n{lp}\nreturn {acc};\n}}",
                    name = self.name()
                )
            }
            Behavior::Gcd => format!(
                "fn {name}({num}: int, {aux}: int) -> int {{\nlet {acc}: int = abs({num});\nlet {tmp}: int = abs({aux});\nwhile ({tmp} != 0) {{\nlet {j}: int = {acc} % {tmp};\n{acc} = {tmp};\n{tmp} = {j};\n}}\nreturn {acc};\n}}",
                name = self.name()
            ),
            Behavior::PowerOf => {
                let body = format!("{acc} *= {num};");
                let lp = knobs.counted_loop(j, "0", tmp, &body);
                format!(
                    "fn {name}({num}: int, {aux}: int) -> int {{\nlet {tmp}: int = abs({aux}) % 5;\nlet {acc}: int = 1;\n{lp}\nreturn {acc};\n}}",
                    name = self.name()
                )
            }
            Behavior::SignOf => format!(
                "fn {name}({num}: int) -> int {{\nif ({num} > 0) {{\nreturn 1;\n}}\nif ({num} < 0) {{\nreturn 0 - 1;\n}}\nreturn 0;\n}}",
                name = self.name()
            ),
            Behavior::AbsValue => format!(
                "fn {name}({num}: int) -> int {{\nif ({num} < 0) {{\nreturn 0 - {num};\n}}\nreturn {num};\n}}",
                name = self.name()
            ),
            Behavior::IsEven => format!(
                "fn {name}({num}: int) -> bool {{\nif ({num} % 2 == 0) {{\nreturn true;\n}}\nreturn false;\n}}",
                name = self.name()
            ),
            Behavior::SumDigits => digit_loop(self, knobs, &format!("{acc} += {tmp} % 10;")),
            Behavior::CountDigits => {
                // A 0 has one digit; normalise via the initial check.
                let body = format!("{acc} += 1;");
                format!(
                    "fn {name}({num}: int) -> int {{\nlet {tmp}: int = abs({num});\nif ({tmp} == 0) {{\nreturn 1;\n}}\nlet {acc}: int = 0;\nwhile ({tmp} > 0) {{\n{body}\n{tmp} = {tmp} / 10;\n}}\nreturn {acc};\n}}",
                    name = self.name()
                )
            }
            Behavior::ReverseNumber => digit_loop(
                self,
                knobs,
                &format!("{acc} = {acc} * 10 + {tmp} % 10;"),
            ),
        }
    }
}

/// The common accumulate-over-array shape.
fn fold_loop(b: Behavior, knobs: &Knobs, init: &str, body: &str) -> String {
    let n = &knobs.names;
    let lp = knobs.counted_loop(&n.idx, "0", &format!("len({})", n.arr), body);
    format!(
        "fn {name}({arr}: array<int>) -> int {{\nlet {acc}: int = {init};\n{lp}\nreturn {acc};\n}}",
        name = b.name(),
        arr = n.arr,
        acc = n.acc,
    )
}

/// The common best-so-far extremum shape.
fn extremum(b: Behavior, knobs: &Knobs, cmp: &str) -> String {
    let n = &knobs.names;
    let body = format!(
        "if ({arr}[{i}] {cmp} {acc}) {{\n{acc} = {arr}[{i}];\n}}",
        arr = n.arr,
        i = n.idx,
        acc = n.acc,
    );
    let lp = knobs.counted_loop(&n.idx, "1", &format!("len({})", n.arr), &body);
    format!(
        "fn {name}({arr}: array<int>) -> int {{\nif (len({arr}) == 0) {{\nreturn 0;\n}}\nlet {acc}: int = {arr}[0];\n{lp}\nreturn {acc};\n}}",
        name = b.name(),
        arr = n.arr,
        acc = n.acc,
    )
}

/// The common digit-peeling shape over |n|.
fn digit_loop(b: Behavior, knobs: &Knobs, body: &str) -> String {
    let n = &knobs.names;
    format!(
        "fn {name}({num}: int) -> int {{\nlet {tmp}: int = abs({num});\nlet {acc}: int = 0;\nwhile ({tmp} > 0) {{\n{body}\n{tmp} = {tmp} / 10;\n}}\nreturn {acc};\n}}",
        name = b.name(),
        num = n.n,
        tmp = n.tmp,
        acc = n.acc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_behavior_parses_and_typechecks_under_many_knobs() {
        let mut rng = StdRng::seed_from_u64(100);
        for behavior in Behavior::ALL {
            for _ in 0..12 {
                let knobs = Knobs::random(&mut rng, 0.3);
                let src = behavior.render(&knobs);
                let program = minilang::parse(&src)
                    .unwrap_or_else(|e| panic!("{behavior:?} failed to parse: {e}\n{src}"));
                minilang::typecheck(&program)
                    .unwrap_or_else(|e| panic!("{behavior:?} failed to typecheck: {e}\n{src}"));
                assert_eq!(program.function.name, behavior.name());
            }
        }
    }

    #[test]
    fn variants_are_semantically_equivalent() {
        // Any two knob renderings of the same behaviour agree on random
        // inputs — the variation engine is semantics-preserving.
        let mut rng = StdRng::seed_from_u64(200);
        let input_cfg = randgen::InputConfig::default();
        for behavior in Behavior::ALL {
            let ka = Knobs::plain();
            let kb = Knobs::random(&mut rng, 0.5);
            let pa = minilang::parse(&behavior.render(&ka)).unwrap();
            let pb = minilang::parse(&behavior.render(&kb)).unwrap();
            for trial in 0..25 {
                let inputs = randgen::random_inputs(&pa, &input_cfg, &mut rng);
                let ra = interp::run(&pa, &inputs);
                let rb = interp::run(&pb, &inputs);
                match (ra, rb) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a.return_value, b.return_value,
                        "{behavior:?} variants disagree on {inputs:?} (trial {trial})"
                    ),
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{behavior:?} errors disagree"),
                    (a, b) => panic!("{behavior:?}: one variant failed: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn behaviors_are_executable_on_typical_inputs() {
        use interp::Value;
        let k = Knobs::plain();
        let cases: Vec<(Behavior, Vec<Value>, Value)> = vec![
            (Behavior::SumArray, vec![Value::Array(vec![1, 2, 3])], Value::Int(6)),
            (Behavior::ProductArray, vec![Value::Array(vec![2, 3, 4])], Value::Int(24)),
            (Behavior::MaxArray, vec![Value::Array(vec![3, 9, 1])], Value::Int(9)),
            (Behavior::MinArray, vec![Value::Array(vec![3, -9, 1])], Value::Int(-9)),
            (Behavior::CountPositive, vec![Value::Array(vec![1, -2, 3])], Value::Int(2)),
            (Behavior::ReverseArray, vec![Value::Array(vec![1, 2, 3])], Value::Array(vec![3, 2, 1])),
            (Behavior::ContainsValue, vec![Value::Array(vec![5, 7]), Value::Int(7)], Value::Bool(true)),
            (Behavior::IndexOfValue, vec![Value::Array(vec![5, 7]), Value::Int(9)], Value::Int(-1)),
            (Behavior::IsSorted, vec![Value::Array(vec![1, 2, 2])], Value::Bool(true)),
            (Behavior::RangeArray, vec![Value::Array(vec![4, -1, 9])], Value::Int(10)),
            (Behavior::SumToN, vec![Value::Int(4)], Value::Int(10)),
            (Behavior::Factorial, vec![Value::Int(5)], Value::Int(120)),
            (Behavior::Gcd, vec![Value::Int(12), Value::Int(18)], Value::Int(6)),
            (Behavior::PowerOf, vec![Value::Int(2), Value::Int(3)], Value::Int(8)),
            (Behavior::SignOf, vec![Value::Int(-9)], Value::Int(-1)),
            (Behavior::SumDigits, vec![Value::Int(-123)], Value::Int(6)),
            (Behavior::CountDigits, vec![Value::Int(4075)], Value::Int(4)),
            (Behavior::ReverseNumber, vec![Value::Int(123)], Value::Int(321)),
        ];
        for (behavior, inputs, expected) in cases {
            let p = minilang::parse(&behavior.render(&k)).unwrap();
            let got = interp::run(&p, &inputs).unwrap().return_value;
            assert_eq!(got, expected, "{behavior:?} on {inputs:?}");
        }
    }

    #[test]
    fn confusable_pairs_share_shape_but_differ_semantically() {
        use interp::Value;
        let k = Knobs::plain();
        let pairs = [
            (Behavior::SumArray, Behavior::ProductArray),
            (Behavior::MaxArray, Behavior::MinArray),
            (Behavior::CountPositive, Behavior::CountNegative),
        ];
        for (a, b) in pairs {
            let pa = minilang::parse(&a.render(&k)).unwrap();
            let pb = minilang::parse(&b.render(&k)).unwrap();
            // Same statement count (syntactic confusability)…
            assert_eq!(pa.statements().len(), pb.statements().len(), "{a:?} vs {b:?}");
            // …different behaviour on a separating input.
            let input = vec![Value::Array(vec![2, 3, -5])];
            let ra = interp::run(&pa, &input).unwrap().return_value;
            let rb = interp::run(&pb, &input).unwrap().return_value;
            assert_ne!(ra, rb, "{a:?} vs {b:?} should differ on {input:?}");
        }
    }
}
