//! Corpus assembly: generation, the Table 1 filtering pipeline, and
//! train/validation/test splits.
//!
//! The paper filters Java-med/Java-large down to methods that (1) compile,
//! (2) Randoop can execute, (3) finish within a timeout, and (4) are not
//! trivially small (Table 1). The raw generator here deliberately includes
//! defective programs (corrupted sources, crash-on-every-input bodies,
//! diverging bodies, trivially small bodies) so that the same pipeline has
//! real work to do.

use crate::coset::Strategy;
use crate::templates::Behavior;
use crate::variation::Knobs;
use minilang::Program;
use rand::{Rng, RngExt as _};
use randgen::{generate_grouped, GenConfig};
use trace::PathGroup;

/// Why a raw program was filtered out — the categories of Table 1's
/// "filtered" discussion (§6.1 Datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterReason {
    /// Does not parse or type-check ("some programs do not compile").
    DoesNotCompile,
    /// No input produced a successful execution ("Randoop does not have
    /// access" / everything crashes).
    NoExecutions,
    /// Exceeded the fuel budget on every attempt ("take too long").
    Timeout,
    /// Fewer statements than the minimum ("too small to be considered").
    TooSmall,
}

/// Aggregate statistics of one filtering run — the data behind Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Programs generated before filtering ("Original").
    pub original: usize,
    /// Programs surviving all filters ("Filtered").
    pub kept: usize,
    /// Dropped: compile failures.
    pub no_compile: usize,
    /// Dropped: no successful executions.
    pub no_exec: usize,
    /// Dropped: timeouts.
    pub timeout: usize,
    /// Dropped: too small.
    pub too_small: usize,
}

/// One usable sample of the method-name corpus.
#[derive(Debug, Clone)]
pub struct MethodSample {
    /// The ground-truth method name.
    pub name: String,
    /// The behaviour family ("project" for splitting purposes).
    pub behavior: Behavior,
    /// The parsed program.
    pub program: Program,
    /// Executions grouped by path, ready to blend.
    pub groups: Vec<PathGroup>,
}

/// One usable sample of the COSET-like corpus.
#[derive(Debug, Clone)]
pub struct CosetSample {
    /// The algorithm-strategy class label.
    pub label: usize,
    /// The strategy.
    pub strategy: Strategy,
    /// The parsed program.
    pub program: Program,
    /// Executions grouped by path.
    pub groups: Vec<PathGroup>,
}

/// Generation settings for both corpora.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Variants generated per behaviour/strategy (before filtering).
    pub variants_per_family: usize,
    /// Probability of a misleading accumulator name.
    pub misleading_prob: f64,
    /// Probability of injecting a defective variant (exercises Table 1's
    /// filter categories).
    pub defect_prob: f64,
    /// Maximum dead-code distractor statements per program (each variant
    /// draws uniformly from `0..=max_distractors`); distractors carry
    /// cross-family keywords to defeat keyword mining while leaving
    /// runtime behaviour untouched.
    pub max_distractors: usize,
    /// Trace generation settings (paths × concrete executions).
    pub gen: GenConfig,
    /// Minimum statement count (the "too small" filter).
    pub min_statements: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            variants_per_family: 8,
            misleading_prob: 0.8,
            defect_prob: 0.08,
            max_distractors: 2,
            gen: GenConfig { target_paths: 12, concrete_per_path: 5, ..GenConfig::default() },
            min_statements: 3,
        }
    }
}

/// A generated method-name corpus plus its filtering statistics.
#[derive(Debug, Clone)]
pub struct MethodCorpus {
    /// The surviving samples.
    pub samples: Vec<MethodSample>,
    /// Table 1 statistics.
    pub stats: FilterStats,
}

/// A generated COSET-like corpus plus its filtering statistics.
#[derive(Debug, Clone)]
pub struct CosetCorpus {
    /// The surviving samples.
    pub samples: Vec<CosetSample>,
    /// Table 1-style statistics.
    pub stats: FilterStats,
}

/// Injects a defect into a source string (for the filter pipeline tests).
fn corrupt<R: Rng + ?Sized>(src: &str, rng: &mut R) -> (String, FilterReason) {
    match rng.random_range(0..4) {
        0 => {
            // Undeclared variable → type error.
            (src.replacen("return", "return zz9 + 0 * ", 1), FilterReason::DoesNotCompile)
        }
        1 => {
            // Crash on every input.
            let broken = src.replacen('{', "{\nlet zz0: int = 1 / (0 * 1);\n", 1);
            (broken, FilterReason::NoExecutions)
        }
        2 => {
            // Diverge on every input.
            let broken =
                src.replacen('{', "{\nlet zz1: int = 0;\nwhile (zz1 < 1) {\nzz1 *= 1;\n}\n", 1);
            (broken, FilterReason::Timeout)
        }
        _ => {
            // Trivially small.
            let name = src.split('(').next().unwrap_or("fn f").to_string();
            (format!("{name}() -> int {{\nreturn 0;\n}}"), FilterReason::TooSmall)
        }
    }
}

/// Runs the shared filter pipeline on one source string.
fn filter_one<R: Rng + ?Sized>(
    src: &str,
    config: &CorpusConfig,
    rng: &mut R,
) -> Result<(Program, Vec<PathGroup>), FilterReason> {
    let program = match minilang::parse(src).and_then(|p| minilang::typecheck(&p).map(|()| p)) {
        Ok(p) => p,
        Err(_) => return Err(FilterReason::DoesNotCompile),
    };
    if program.statements().len() < config.min_statements {
        return Err(FilterReason::TooSmall);
    }
    // Fatal lints prove the program crashes or diverges on every input, so
    // classify it without spending a single execution (provably-divergent
    // loops land in the paper's "take too long" bucket, everything else in
    // "no executions"). Warnings — dead code, unused defs — never gate:
    // the distractor engine injects those on purpose.
    let report = analysis::lint::run(&program);
    if report.has_fatal() {
        let divergent =
            report.fatal().any(|d| d.kind == analysis::LintKind::DivergentLoop);
        return Err(if divergent { FilterReason::Timeout } else { FilterReason::NoExecutions });
    }
    let (groups, stats) = generate_grouped(&program, &config.gen, rng);
    if groups.is_empty() {
        // Distinguish "everything timed out" from "everything crashed" by
        // re-running one input with generous fuel.
        let inputs = randgen::random_inputs(&program, &config.gen.inputs, rng);
        return match interp::run_with_fuel(&program, &inputs, config.gen.fuel * 8) {
            Err(interp::RuntimeError::OutOfFuel) => Err(FilterReason::Timeout),
            _ => Err(FilterReason::NoExecutions),
        };
    }
    debug_assert!(stats.kept > 0);
    Ok((program, groups))
}

fn record(stats: &mut FilterStats, reason: FilterReason) {
    match reason {
        FilterReason::DoesNotCompile => stats.no_compile += 1,
        FilterReason::NoExecutions => stats.no_exec += 1,
        FilterReason::Timeout => stats.timeout += 1,
        FilterReason::TooSmall => stats.too_small += 1,
    }
}

/// Generates the method-name corpus.
pub fn generate_method_corpus<R: Rng + ?Sized>(
    config: &CorpusConfig,
    rng: &mut R,
) -> MethodCorpus {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for behavior in Behavior::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let pool = behavior.name_pool();
            let name = pool[rng.random_range(0..pool.len())];
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src = crate::variation::with_distractors(
                &behavior.render_named(&knobs, name),
                distractors,
                rng,
            );
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one(&src, config, rng) {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(MethodSample {
                        name: name.to_string(),
                        behavior,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    MethodCorpus { samples, stats }
}

/// Generates the COSET-like corpus.
pub fn generate_coset_corpus<R: Rng + ?Sized>(config: &CorpusConfig, rng: &mut R) -> CosetCorpus {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for strategy in Strategy::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src =
                crate::variation::with_distractors(&strategy.render(&knobs), distractors, rng);
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one(&src, config, rng) {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(CosetSample {
                        label: strategy.label(),
                        strategy,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    CosetCorpus { samples, stats }
}

/// A train/validation/test split (by index, variants disjoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub valid: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Splits `n` samples into shuffled train/valid/test index sets with the
/// given fractions (test takes the remainder).
///
/// # Panics
///
/// Panics when the fractions exceed 1.
pub fn split_indices<R: Rng + ?Sized>(
    n: usize,
    train_frac: f64,
    valid_frac: f64,
    rng: &mut R,
) -> Split {
    assert!(train_frac + valid_frac <= 1.0, "fractions exceed 1");
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let train = idx[..n_train.min(n)].to_vec();
    let valid = idx[n_train.min(n)..(n_train + n_valid).min(n)].to_vec();
    let test = idx[(n_train + n_valid).min(n)..].to_vec();
    Split { train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            variants_per_family: 2,
            defect_prob: 0.3,
            gen: GenConfig {
                target_paths: 4,
                concrete_per_path: 3,
                max_attempts: 200,
                ..GenConfig::default()
            },
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn method_corpus_filters_and_keeps() {
        let mut rng = StdRng::seed_from_u64(500);
        let corpus = generate_method_corpus(&small_config(), &mut rng);
        assert_eq!(corpus.stats.original, Behavior::ALL.len() * 2);
        assert!(corpus.stats.kept > 0);
        assert_eq!(corpus.samples.len(), corpus.stats.kept);
        let dropped = corpus.stats.no_compile
            + corpus.stats.no_exec
            + corpus.stats.timeout
            + corpus.stats.too_small;
        assert_eq!(corpus.stats.original, corpus.stats.kept + dropped);
        // With defect_prob 0.3 over 54 programs some must be filtered.
        assert!(dropped > 0, "filter pipeline had nothing to do");
        // Every kept sample has traces.
        assert!(corpus.samples.iter().all(|s| !s.groups.is_empty()));
    }

    #[test]
    fn coset_corpus_labels_are_valid() {
        let mut rng = StdRng::seed_from_u64(501);
        let corpus = generate_coset_corpus(&small_config(), &mut rng);
        assert!(corpus.samples.iter().all(|s| s.label < Strategy::ALL.len()));
        assert!(corpus.stats.kept > 0);
    }

    #[test]
    fn statically_fatal_defects_classify_without_executing() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = small_config();
        let base = Behavior::SumArray.render(&Knobs::plain());
        // Corrupt case 1: unconditional division by zero → NoExecutions.
        let crash = base.replacen('{', "{\nlet zz0: int = 1 / (0 * 1);\n", 1);
        assert_eq!(
            filter_one(&crash, &config, &mut rng).unwrap_err(),
            FilterReason::NoExecutions
        );
        // Corrupt case 2: provably divergent loop → Timeout, decided by
        // the lint (constprop proves the guard stays true), not by fuel.
        let diverge =
            base.replacen('{', "{\nlet zz1: int = 0;\nwhile (zz1 < 1) {\nzz1 *= 1;\n}\n", 1);
        assert_eq!(
            filter_one(&diverge, &config, &mut rng).unwrap_err(),
            FilterReason::Timeout
        );
    }

    #[test]
    fn shipped_templates_are_lint_clean() {
        let knobs = Knobs::plain();
        for b in Behavior::ALL {
            let src = b.render(&knobs);
            let p = minilang::parse(&src).unwrap();
            minilang::typecheck(&p).unwrap();
            let report = analysis::lint::run(&p);
            assert!(report.is_clean(), "{b:?}:\n{}", report.render());
        }
        for s in Strategy::ALL {
            let src = s.render(&knobs);
            let p = minilang::parse(&src).unwrap();
            minilang::typecheck(&p).unwrap();
            let report = analysis::lint::run(&p);
            assert!(report.is_clean(), "{s:?}:\n{}", report.render());
        }
    }

    #[test]
    fn corrupt_produces_filterable_programs() {
        let mut rng = StdRng::seed_from_u64(502);
        let config = small_config();
        let base = Behavior::SumArray.render(&Knobs::plain());
        let mut seen_failure = false;
        for _ in 0..20 {
            let (src, _expected) = corrupt(&base, &mut rng);
            if filter_one(&src, &config, &mut rng).is_err() {
                seen_failure = true;
            }
        }
        assert!(seen_failure, "corruption never produced a filtered program");
    }

    #[test]
    fn split_partitions_all_indices() {
        let mut rng = StdRng::seed_from_u64(503);
        let split = split_indices(100, 0.7, 0.15, &mut rng);
        assert_eq!(split.train.len(), 70);
        assert_eq!(split.valid.len(), 15);
        assert_eq!(split.test.len(), 15);
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn overfull_split_panics() {
        let mut rng = StdRng::seed_from_u64(504);
        split_indices(10, 0.8, 0.4, &mut rng);
    }
}
