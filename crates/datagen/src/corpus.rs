//! Corpus assembly: generation, the Table 1 filtering pipeline, and
//! train/validation/test splits.
//!
//! The paper filters Java-med/Java-large down to methods that (1) compile,
//! (2) Randoop can execute, (3) finish within a timeout, and (4) are not
//! trivially small (Table 1). The raw generator here deliberately includes
//! defective programs (corrupted sources, crash-on-every-input bodies,
//! diverging bodies, trivially small bodies) so that the same pipeline has
//! real work to do.

use crate::coset::Strategy;
use crate::templates::Behavior;
use crate::variation::Knobs;
use minilang::Program;
use rand::{Rng, RngExt as _};
use randgen::{generate_grouped, GenConfig};
use trace::PathGroup;

/// Why a raw program was filtered out — the categories of Table 1's
/// "filtered" discussion (§6.1 Datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterReason {
    /// Does not parse or type-check ("some programs do not compile").
    DoesNotCompile,
    /// No input produced a successful execution ("Randoop does not have
    /// access" / everything crashes).
    NoExecutions,
    /// Exceeded the fuel budget on every attempt ("take too long").
    Timeout,
    /// Fewer statements than the minimum ("too small to be considered").
    TooSmall,
}

/// Aggregate statistics of one filtering run — the data behind Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Programs generated before filtering ("Original").
    pub original: usize,
    /// Programs surviving all filters ("Filtered").
    pub kept: usize,
    /// Dropped: compile failures.
    pub no_compile: usize,
    /// Dropped: no successful executions.
    pub no_exec: usize,
    /// Dropped: timeouts.
    pub timeout: usize,
    /// Dropped: too small.
    pub too_small: usize,
}

/// One usable sample of the method-name corpus.
#[derive(Debug, Clone)]
pub struct MethodSample {
    /// The ground-truth method name.
    pub name: String,
    /// The behaviour family ("project" for splitting purposes).
    pub behavior: Behavior,
    /// The parsed program.
    pub program: Program,
    /// Executions grouped by path, ready to blend.
    pub groups: Vec<PathGroup>,
}

/// One usable sample of the COSET-like corpus.
#[derive(Debug, Clone)]
pub struct CosetSample {
    /// The algorithm-strategy class label.
    pub label: usize,
    /// The strategy.
    pub strategy: Strategy,
    /// The parsed program.
    pub program: Program,
    /// Executions grouped by path.
    pub groups: Vec<PathGroup>,
}

/// Generation settings for both corpora.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Variants generated per behaviour/strategy (before filtering).
    pub variants_per_family: usize,
    /// Probability of a misleading accumulator name.
    pub misleading_prob: f64,
    /// Probability of injecting a defective variant (exercises Table 1's
    /// filter categories).
    pub defect_prob: f64,
    /// Maximum dead-code distractor statements per program (each variant
    /// draws uniformly from `0..=max_distractors`); distractors carry
    /// cross-family keywords to defeat keyword mining while leaving
    /// runtime behaviour untouched.
    pub max_distractors: usize,
    /// Trace generation settings (paths × concrete executions).
    pub gen: GenConfig,
    /// Minimum statement count (the "too small" filter).
    pub min_statements: usize,
    /// Base seed for the *store-aware* pipeline's per-program trace RNGs.
    /// Each program's executions are drawn from
    /// `splitmix64(content_hash ^ gen_seed)`, so a cache hit skips exactly
    /// the draws that program would have consumed — the shared corpus RNG
    /// stream never observes whether the store was warm.
    pub gen_seed: u64,
}

/// Default [`CorpusConfig::gen_seed`].
pub const DEFAULT_GEN_SEED: u64 = 0x4c49_4745_5253_3130; // "LIGERS10"

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            variants_per_family: 8,
            misleading_prob: 0.8,
            defect_prob: 0.08,
            max_distractors: 2,
            gen: GenConfig { target_paths: 12, concrete_per_path: 5, ..GenConfig::default() },
            min_statements: 3,
            gen_seed: DEFAULT_GEN_SEED,
        }
    }
}

/// A generated method-name corpus plus its filtering statistics.
#[derive(Debug, Clone)]
pub struct MethodCorpus {
    /// The surviving samples.
    pub samples: Vec<MethodSample>,
    /// Table 1 statistics.
    pub stats: FilterStats,
}

/// A generated COSET-like corpus plus its filtering statistics.
#[derive(Debug, Clone)]
pub struct CosetCorpus {
    /// The surviving samples.
    pub samples: Vec<CosetSample>,
    /// Table 1-style statistics.
    pub stats: FilterStats,
}

/// Injects a defect into a source string (for the filter pipeline tests).
fn corrupt<R: Rng + ?Sized>(src: &str, rng: &mut R) -> (String, FilterReason) {
    match rng.random_range(0..4) {
        0 => {
            // Undeclared variable → type error.
            (src.replacen("return", "return zz9 + 0 * ", 1), FilterReason::DoesNotCompile)
        }
        1 => {
            // Crash on every input.
            let broken = src.replacen('{', "{\nlet zz0: int = 1 / (0 * 1);\n", 1);
            (broken, FilterReason::NoExecutions)
        }
        2 => {
            // Diverge on every input.
            let broken =
                src.replacen('{', "{\nlet zz1: int = 0;\nwhile (zz1 < 1) {\nzz1 *= 1;\n}\n", 1);
            (broken, FilterReason::Timeout)
        }
        _ => {
            // Trivially small.
            let name = src.split('(').next().unwrap_or("fn f").to_string();
            (format!("{name}() -> int {{\nreturn 0;\n}}"), FilterReason::TooSmall)
        }
    }
}

/// Runs the shared filter pipeline on one source string.
fn filter_one<R: Rng + ?Sized>(
    src: &str,
    config: &CorpusConfig,
    rng: &mut R,
) -> Result<(Program, Vec<PathGroup>), FilterReason> {
    let program = match minilang::parse(src).and_then(|p| minilang::typecheck(&p).map(|()| p)) {
        Ok(p) => p,
        Err(_) => return Err(FilterReason::DoesNotCompile),
    };
    if program.statements().len() < config.min_statements {
        return Err(FilterReason::TooSmall);
    }
    // Fatal lints prove the program crashes or diverges on every input, so
    // classify it without spending a single execution (provably-divergent
    // loops land in the paper's "take too long" bucket, everything else in
    // "no executions"). Warnings — dead code, unused defs — never gate:
    // the distractor engine injects those on purpose.
    let report = analysis::lint::run(&program);
    if report.has_fatal() {
        let divergent =
            report.fatal().any(|d| d.kind == analysis::LintKind::DivergentLoop);
        return Err(if divergent { FilterReason::Timeout } else { FilterReason::NoExecutions });
    }
    let (groups, stats) = generate_grouped(&program, &config.gen, rng);
    if groups.is_empty() {
        // Distinguish "everything timed out" from "everything crashed" by
        // re-running one input with generous fuel.
        let inputs = randgen::random_inputs(&program, &config.gen.inputs, rng);
        return match interp::run_with_fuel(&program, &inputs, config.gen.fuel * 8) {
            Err(interp::RuntimeError::OutOfFuel) => Err(FilterReason::Timeout),
            _ => Err(FilterReason::NoExecutions),
        };
    }
    debug_assert!(stats.kept > 0);
    Ok((program, groups))
}

fn record(stats: &mut FilterStats, reason: FilterReason) {
    match reason {
        FilterReason::DoesNotCompile => stats.no_compile += 1,
        FilterReason::NoExecutions => stats.no_exec += 1,
        FilterReason::Timeout => stats.timeout += 1,
        FilterReason::TooSmall => stats.too_small += 1,
    }
}

/// Generates the method-name corpus.
pub fn generate_method_corpus<R: Rng + ?Sized>(
    config: &CorpusConfig,
    rng: &mut R,
) -> MethodCorpus {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for behavior in Behavior::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let pool = behavior.name_pool();
            let name = pool[rng.random_range(0..pool.len())];
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src = crate::variation::with_distractors(
                &behavior.render_named(&knobs, name),
                distractors,
                rng,
            );
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one(&src, config, rng) {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(MethodSample {
                        name: name.to_string(),
                        behavior,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    MethodCorpus { samples, stats }
}

/// Generates the COSET-like corpus.
pub fn generate_coset_corpus<R: Rng + ?Sized>(config: &CorpusConfig, rng: &mut R) -> CosetCorpus {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for strategy in Strategy::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src =
                crate::variation::with_distractors(&strategy.render(&knobs), distractors, rng);
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one(&src, config, rng) {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(CosetSample {
                        label: strategy.label(),
                        strategy,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    CosetCorpus { samples, stats }
}

// ---------------------------------------------------------------------------
// Store-aware pipeline: red-green incremental corpus generation.
// ---------------------------------------------------------------------------

/// Stable wire tags for [`FilterReason`].
const REASON_TAGS: [FilterReason; 4] = [
    FilterReason::DoesNotCompile,
    FilterReason::NoExecutions,
    FilterReason::Timeout,
    FilterReason::TooSmall,
];

/// Fingerprint stamped on cached corpus outcomes: every knob that can
/// change a program's filter verdict or its traces. A changed knob reads
/// every cached outcome as a miss instead of replaying stale traces.
#[must_use]
pub fn corpus_fingerprint(config: &CorpusConfig) -> String {
    let g = &config.gen;
    let alphabet: String = g.inputs.alphabet.iter().collect();
    format!(
        "corpus@1/s{:016x}/p{}/c{}/a{}/f{}/ib{}/al{}/sl{}/ab{}/scr{}/min{}",
        config.gen_seed,
        g.target_paths,
        g.concrete_per_path,
        g.max_attempts,
        g.fuel,
        g.inputs.int_bound,
        g.inputs.max_array_len,
        g.inputs.max_str_len,
        alphabet,
        u8::from(g.static_screen),
        config.min_statements,
    )
}

/// Serializes one filter outcome: `0 reason` for a rejection, `1 groups`
/// for an acceptance. The program itself never travels — it is reparsed
/// from the (locally regenerated) source on a hit, which `parse`'s
/// pre-order id assignment makes bitwise-faithful.
fn outcome_to_bytes(outcome: &Result<Vec<PathGroup>, FilterReason>) -> Vec<u8> {
    let mut w = store::ByteWriter::new();
    match outcome {
        Ok(groups) => {
            w.u8(1);
            trace::persist::write_groups(&mut w, groups);
        }
        Err(reason) => {
            w.u8(0);
            w.u8(REASON_TAGS.iter().position(|r| r == reason).expect("reason in wire table")
                as u8);
        }
    }
    w.into_bytes()
}

fn outcome_from_bytes(buf: &[u8]) -> Result<Result<Vec<PathGroup>, FilterReason>, store::StoreError> {
    let mut r = store::ByteReader::new(buf);
    let outcome = match r.u8()? {
        0 => {
            let tag = r.u8()? as usize;
            Err(*REASON_TAGS.get(tag).ok_or(store::StoreError::BadRecord)?)
        }
        1 => Ok(trace::persist::read_groups(&mut r)?),
        _ => return Err(store::StoreError::BadRecord),
    };
    r.finish()?;
    Ok(outcome)
}

/// [`filter_one`] with a per-program RNG and an optional artifact store.
///
/// The trace RNG is derived from the source's content hash, so the
/// verdict is a pure function of `(src, config)` — that is what makes
/// the cached outcome replayable. With a warm store the program is
/// neither executed nor traced; with `store == None` the verdict is
/// identical, just recomputed.
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached outcome is corrupt.
pub fn filter_one_stored(
    src: &str,
    config: &CorpusConfig,
    store: Option<&store::Store>,
) -> Result<Result<(Program, Vec<PathGroup>), FilterReason>, store::StoreError> {
    let key = store::hash::fnv1a_str(src);
    let fp = corpus_fingerprint(config);
    if let Some(store) = store {
        if let Some(payload) = store.get(store::ArtifactKind::CorpusOutcome, key, &fp)? {
            return match outcome_from_bytes(&payload)? {
                Ok(groups) => {
                    // An accepted entry proves the source compiled; a
                    // store that disagrees is handing back bytes for a
                    // different program.
                    let program = minilang::parse(src)
                        .ok()
                        .filter(|p| minilang::typecheck(p).is_ok())
                        .ok_or(store::StoreError::BadRecord)?;
                    Ok(Ok((program, groups)))
                }
                Err(reason) => Ok(Err(reason)),
            };
        }
    }
    let mut rng = derived_trace_rng(key, config.gen_seed);
    let outcome = filter_one(src, config, &mut rng);
    if let Some(store) = store {
        let cacheable = match &outcome {
            Ok((_, groups)) => Ok(groups.clone()),
            Err(reason) => Err(*reason),
        };
        store.put(store::ArtifactKind::CorpusOutcome, key, &fp, &outcome_to_bytes(&cacheable))?;
    }
    Ok(outcome)
}

/// The per-program trace RNG: mixing the content hash with the corpus
/// seed keeps sibling programs' streams independent even when sources
/// differ by one byte.
fn derived_trace_rng(key: u64, gen_seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(store::hash::splitmix64(key ^ gen_seed))
}

/// [`generate_method_corpus`] through the artifact store. Sources are
/// drawn from `rng` exactly as in the plain generator; tracing uses
/// per-program derived RNGs, so a warm store replays the identical
/// corpus without executing a single program.
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached outcome is corrupt.
pub fn generate_method_corpus_with_store<R: Rng + ?Sized>(
    config: &CorpusConfig,
    rng: &mut R,
    store: Option<&store::Store>,
) -> Result<MethodCorpus, store::StoreError> {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for behavior in Behavior::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let pool = behavior.name_pool();
            let name = pool[rng.random_range(0..pool.len())];
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src = crate::variation::with_distractors(
                &behavior.render_named(&knobs, name),
                distractors,
                rng,
            );
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one_stored(&src, config, store)? {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(MethodSample {
                        name: name.to_string(),
                        behavior,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    Ok(MethodCorpus { samples, stats })
}

/// [`generate_coset_corpus`] through the artifact store; see
/// [`generate_method_corpus_with_store`] for the replay contract.
///
/// # Errors
///
/// Typed [`store::StoreError`] when a cached outcome is corrupt.
pub fn generate_coset_corpus_with_store<R: Rng + ?Sized>(
    config: &CorpusConfig,
    rng: &mut R,
    store: Option<&store::Store>,
) -> Result<CosetCorpus, store::StoreError> {
    let mut samples = Vec::new();
    let mut stats = FilterStats::default();
    for strategy in Strategy::ALL {
        for _ in 0..config.variants_per_family {
            stats.original += 1;
            let knobs = Knobs::random(rng, config.misleading_prob);
            let distractors = rng.random_range(0..=config.max_distractors);
            let mut src =
                crate::variation::with_distractors(&strategy.render(&knobs), distractors, rng);
            if rng.random_bool(config.defect_prob) {
                src = corrupt(&src, rng).0;
            }
            match filter_one_stored(&src, config, store)? {
                Ok((program, groups)) => {
                    stats.kept += 1;
                    samples.push(CosetSample {
                        label: strategy.label(),
                        strategy,
                        program,
                        groups,
                    });
                }
                Err(reason) => record(&mut stats, reason),
            }
        }
    }
    Ok(CosetCorpus { samples, stats })
}

/// A train/validation/test split (by index, variants disjoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub valid: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Splits `n` samples into shuffled train/valid/test index sets with the
/// given fractions (test takes the remainder).
///
/// # Panics
///
/// Panics when the fractions exceed 1.
pub fn split_indices<R: Rng + ?Sized>(
    n: usize,
    train_frac: f64,
    valid_frac: f64,
    rng: &mut R,
) -> Split {
    assert!(train_frac + valid_frac <= 1.0, "fractions exceed 1");
    let mut idx: Vec<usize> = (0..n).collect();
    use rand::seq::SliceRandom;
    idx.shuffle(rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let train = idx[..n_train.min(n)].to_vec();
    let valid = idx[n_train.min(n)..(n_train + n_valid).min(n)].to_vec();
    let test = idx[(n_train + n_valid).min(n)..].to_vec();
    Split { train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            variants_per_family: 2,
            defect_prob: 0.3,
            gen: GenConfig {
                target_paths: 4,
                concrete_per_path: 3,
                max_attempts: 200,
                ..GenConfig::default()
            },
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn method_corpus_filters_and_keeps() {
        let mut rng = StdRng::seed_from_u64(500);
        let corpus = generate_method_corpus(&small_config(), &mut rng);
        assert_eq!(corpus.stats.original, Behavior::ALL.len() * 2);
        assert!(corpus.stats.kept > 0);
        assert_eq!(corpus.samples.len(), corpus.stats.kept);
        let dropped = corpus.stats.no_compile
            + corpus.stats.no_exec
            + corpus.stats.timeout
            + corpus.stats.too_small;
        assert_eq!(corpus.stats.original, corpus.stats.kept + dropped);
        // With defect_prob 0.3 over 54 programs some must be filtered.
        assert!(dropped > 0, "filter pipeline had nothing to do");
        // Every kept sample has traces.
        assert!(corpus.samples.iter().all(|s| !s.groups.is_empty()));
    }

    #[test]
    fn coset_corpus_labels_are_valid() {
        let mut rng = StdRng::seed_from_u64(501);
        let corpus = generate_coset_corpus(&small_config(), &mut rng);
        assert!(corpus.samples.iter().all(|s| s.label < Strategy::ALL.len()));
        assert!(corpus.stats.kept > 0);
    }

    #[test]
    fn statically_fatal_defects_classify_without_executing() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = small_config();
        let base = Behavior::SumArray.render(&Knobs::plain());
        // Corrupt case 1: unconditional division by zero → NoExecutions.
        let crash = base.replacen('{', "{\nlet zz0: int = 1 / (0 * 1);\n", 1);
        assert_eq!(
            filter_one(&crash, &config, &mut rng).unwrap_err(),
            FilterReason::NoExecutions
        );
        // Corrupt case 2: provably divergent loop → Timeout, decided by
        // the lint (constprop proves the guard stays true), not by fuel.
        let diverge =
            base.replacen('{', "{\nlet zz1: int = 0;\nwhile (zz1 < 1) {\nzz1 *= 1;\n}\n", 1);
        assert_eq!(
            filter_one(&diverge, &config, &mut rng).unwrap_err(),
            FilterReason::Timeout
        );
    }

    #[test]
    fn shipped_templates_are_lint_clean() {
        let knobs = Knobs::plain();
        for b in Behavior::ALL {
            let src = b.render(&knobs);
            let p = minilang::parse(&src).unwrap();
            minilang::typecheck(&p).unwrap();
            let report = analysis::lint::run(&p);
            assert!(report.is_clean(), "{b:?}:\n{}", report.render());
        }
        for s in Strategy::ALL {
            let src = s.render(&knobs);
            let p = minilang::parse(&src).unwrap();
            minilang::typecheck(&p).unwrap();
            let report = analysis::lint::run(&p);
            assert!(report.is_clean(), "{s:?}:\n{}", report.render());
        }
    }

    #[test]
    fn corrupt_produces_filterable_programs() {
        let mut rng = StdRng::seed_from_u64(502);
        let config = small_config();
        let base = Behavior::SumArray.render(&Knobs::plain());
        let mut seen_failure = false;
        for _ in 0..20 {
            let (src, _expected) = corrupt(&base, &mut rng);
            if filter_one(&src, &config, &mut rng).is_err() {
                seen_failure = true;
            }
        }
        assert!(seen_failure, "corruption never produced a filtered program");
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, store::Store) {
        let dir = std::env::temp_dir().join(format!("lgrs-datagen-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let st = store::Store::open(&dir).unwrap();
        (dir, st)
    }

    fn assert_same_method_corpus(a: &MethodCorpus, b: &MethodCorpus) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.behavior, y.behavior);
            assert_eq!(x.program, y.program);
            assert_eq!(x.groups, y.groups);
        }
    }

    #[test]
    fn warm_store_replays_the_identical_corpus() {
        let config = small_config();
        let (dir, st) = temp_store("warm");

        let mut rng = StdRng::seed_from_u64(500);
        let cold = generate_method_corpus_with_store(&config, &mut rng, Some(&st)).unwrap();
        assert!(cold.stats.kept > 0);

        let mut rng = StdRng::seed_from_u64(500);
        let warm = generate_method_corpus_with_store(&config, &mut rng, Some(&st)).unwrap();
        assert_same_method_corpus(&cold, &warm);

        // No store at all: same corpus, recomputed (derived trace RNGs
        // make the outcome a pure function of source + config).
        let mut rng = StdRng::seed_from_u64(500);
        let plain = generate_method_corpus_with_store(&config, &mut rng, None).unwrap();
        assert_same_method_corpus(&cold, &plain);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_knobs_read_as_misses_not_wrong_hits() {
        let config = small_config();
        let (dir, st) = temp_store("knobs");
        let mut rng = StdRng::seed_from_u64(500);
        let cold = generate_method_corpus_with_store(&config, &mut rng, Some(&st)).unwrap();

        // Same sources, different trace budget: fingerprint changes, so
        // the cached outcomes must NOT be replayed.
        let mut bigger = config.clone();
        bigger.gen.concrete_per_path += 1;
        assert_ne!(corpus_fingerprint(&config), corpus_fingerprint(&bigger));
        let mut rng = StdRng::seed_from_u64(500);
        let fresh = generate_method_corpus_with_store(&bigger, &mut rng, Some(&st)).unwrap();
        assert_eq!(cold.stats.original, fresh.stats.original);
        let more_traces: usize = fresh.samples.iter().flat_map(|s| &s.groups).map(|g| g.traces.len()).sum();
        let cold_traces: usize = cold.samples.iter().flat_map(|s| &s.groups).map(|g| g.traces.len()).sum();
        assert!(more_traces > cold_traces, "stale outcome replayed despite knob change");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn editing_one_program_invalidates_exactly_that_program() {
        let config = small_config();
        let (dir, st) = temp_store("redgreen");
        let src_a = Behavior::SumArray.render(&Knobs::plain());
        let src_b = Behavior::MaxArray.render(&Knobs::plain());
        let a = filter_one_stored(&src_a, &config, Some(&st)).unwrap().unwrap();
        let b = filter_one_stored(&src_b, &config, Some(&st)).unwrap().unwrap();

        // Edit program A: its artifact moves to a new key; B's stays put.
        let src_a2 = src_a.replace("return", "return 0 + ");
        let key_a = store::hash::fnv1a_str(&src_a);
        let key_a2 = store::hash::fnv1a_str(&src_a2);
        let key_b = store::hash::fnv1a_str(&src_b);
        assert_ne!(key_a, key_a2);
        let fp = corpus_fingerprint(&config);
        let _ = filter_one_stored(&src_a2, &config, Some(&st)).unwrap().unwrap();
        for key in [key_a, key_a2, key_b] {
            assert!(
                st.get(store::ArtifactKind::CorpusOutcome, key, &fp).unwrap().is_some(),
                "artifact for {key:#x} missing"
            );
        }
        // B replays bitwise from its untouched artifact.
        let b2 = filter_one_stored(&src_b, &config, Some(&st)).unwrap().unwrap();
        assert_eq!(b.0, b2.0);
        assert_eq!(b.1, b2.1);
        // A's new source replays from its own (new) artifact.
        let a2 = filter_one_stored(&src_a2, &config, Some(&st)).unwrap().unwrap();
        assert_eq!(a2.1.is_empty(), a.1.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_outcomes_are_cached_too() {
        let config = small_config();
        let (dir, st) = temp_store("reject");
        let src = "fn tiny() -> int {\nreturn 0;\n}";
        let cold = filter_one_stored(src, &config, Some(&st)).unwrap();
        assert_eq!(cold.unwrap_err(), FilterReason::TooSmall);
        let warm = filter_one_stored(src, &config, Some(&st)).unwrap();
        assert_eq!(warm.unwrap_err(), FilterReason::TooSmall);
        let key = store::hash::fnv1a_str(src);
        let payload = st
            .get(store::ArtifactKind::CorpusOutcome, key, &corpus_fingerprint(&config))
            .unwrap()
            .expect("rejection cached");
        assert_eq!(payload, vec![0u8, 3u8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_partitions_all_indices() {
        let mut rng = StdRng::seed_from_u64(503);
        let split = split_indices(100, 0.7, 0.15, &mut rng);
        assert_eq!(split.train.len(), 70);
        assert_eq!(split.valid.len(), 15);
        assert_eq!(split.test.len(), 15);
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn overfull_split_panics() {
        let mut rng = StdRng::seed_from_u64(504);
        split_indices(10, 0.8, 0.4, &mut rng);
    }
}
