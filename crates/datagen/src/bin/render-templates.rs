//! `render-templates` — writes every shipped program template to disk.
//!
//! Renders the 27 method-name behaviours and the 26 COSET strategies with
//! plain knobs (no renaming, no distractors) into the given directory, one
//! `.ml` file each. CI pipes the result through `liger-lint
//! --deny-warnings` to guarantee the shipped corpus is diagnostic-free.

use datagen::{Behavior, Knobs, Strategy};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [out_dir] = args.as_slice() else {
        eprintln!("usage: render-templates OUT_DIR");
        return ExitCode::from(2);
    };
    let out = Path::new(out_dir);
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("render-templates: cannot create {out_dir}: {e}");
        return ExitCode::from(2);
    }
    let knobs = Knobs::plain();
    let mut written = 0usize;
    let mut sources: Vec<(String, String)> = Vec::new();
    for b in Behavior::ALL {
        sources.push((format!("behavior_{b:?}"), b.render(&knobs)));
    }
    for s in Strategy::ALL {
        sources.push((format!("strategy_{s:?}"), s.render(&knobs)));
    }
    for (name, src) in sources {
        let path = out.join(format!("{}.ml", name.to_lowercase()));
        if let Err(e) = std::fs::write(&path, src) {
            eprintln!("render-templates: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        written += 1;
    }
    eprintln!("render-templates: wrote {written} template(s) to {out_dir}");
    ExitCode::SUCCESS
}
