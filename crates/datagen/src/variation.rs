//! The semantics-preserving variation engine.
//!
//! The paper's central phenomenon — static models read syntax, dynamic
//! models read semantics — is reproduced *by construction* (DESIGN.md §1):
//! every generated program is rendered through a set of knobs that change
//! its syntax without changing its behaviour:
//!
//! - identifier choice, including deliberately *misleading* names drawn
//!   from other behaviours' keyword pools (the paper's §6.1.1 remark:
//!   "replacing keywords with less informative names for variable
//!   identifiers sways code2seq's previous correct predictions"),
//! - loop form (`for` vs. `while`),
//! - increment spelling (`i += 1` vs. `i = i + 1`),
//! - doubling spelling (`x *= 2` vs. `x += x`, the §3 motivating pair),
//! - comparison form (`i < n` vs. `i <= n - 1`).

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt as _};

/// Loop rendering style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStyle {
    /// `for (let i: int = a; i < b; i += 1) { .. }`
    For,
    /// `let i: int = a; while (i < b) { .. i += 1; }`
    While,
}

/// Increment rendering style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrStyle {
    /// `i += 1`
    Compound,
    /// `i = i + 1`
    Plain,
}

/// How upper-bound comparisons are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpStyle {
    /// `i < n`
    Lt,
    /// `i <= n - 1`
    LePred,
}

/// The full knob set for one rendered variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// Loop form.
    pub loop_style: LoopStyle,
    /// Increment spelling.
    pub incr: IncrStyle,
    /// Upper-bound comparison spelling.
    pub cmp: CmpStyle,
    /// Spell doubling as `x += x` instead of `x *= 2`.
    pub double_as_add: bool,
    /// Identifiers by role (accumulator, index, …).
    pub names: NameAssignment,
}

/// Identifier assignment by role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAssignment {
    /// The main array/string parameter.
    pub arr: String,
    /// The scalar parameter.
    pub n: String,
    /// Loop index.
    pub idx: String,
    /// Secondary loop index.
    pub jdx: String,
    /// Accumulator / result.
    pub acc: String,
    /// Scratch variable.
    pub tmp: String,
    /// Secondary scratch.
    pub aux: String,
}

/// Neutral identifier pools per role.
const ARR_NAMES: &[&str] = &["a", "arr", "data", "items", "xs", "buf"];
const N_NAMES: &[&str] = &["n", "x", "num", "v", "k0"];
const IDX_NAMES: &[&str] = &["i", "p", "pos", "k"];
const JDX_NAMES: &[&str] = &["j", "q", "w"];
const ACC_NAMES: &[&str] = &["s", "r", "res", "out", "acc"];
const TMP_NAMES: &[&str] = &["t", "tmp", "h"];
const AUX_NAMES: &[&str] = &["u", "b2", "g"];

/// Misleading names: keywords of *other* behaviours, used to confuse
/// keyword-mining static models.
const MISLEADING: &[&str] = &["sum", "count", "best", "sorted", "found", "total", "prod"];
const MISLEADING_AUX: &[&str] = &["minimum", "digits", "factor", "reversed", "sign"];
const MISLEADING_ARR: &[&str] = &["sums", "counts", "sortedArr", "results", "maxes"];

impl Knobs {
    /// Draws a random knob set. With probability `misleading_prob` the
    /// accumulator gets a name borrowed from an unrelated behaviour's
    /// keyword pool.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, misleading_prob: f64) -> Knobs {
        let pick = |pool: &[&str], rng: &mut R| -> String {
            (*pool.choose(rng).expect("pools are non-empty")).to_string()
        };
        let mut names = NameAssignment {
            arr: pick(ARR_NAMES, rng),
            n: pick(N_NAMES, rng),
            idx: pick(IDX_NAMES, rng),
            jdx: pick(JDX_NAMES, rng),
            acc: pick(ACC_NAMES, rng),
            tmp: pick(TMP_NAMES, rng),
            aux: pick(AUX_NAMES, rng),
        };
        if rng.random_bool(misleading_prob) {
            names.acc = pick(MISLEADING, rng);
        }
        if rng.random_bool(misleading_prob) {
            names.tmp = pick(MISLEADING_AUX, rng);
        }
        if rng.random_bool(misleading_prob) {
            names.arr = pick(MISLEADING_ARR, rng);
        }
        Knobs {
            loop_style: if rng.random::<bool>() { LoopStyle::For } else { LoopStyle::While },
            incr: if rng.random::<bool>() { IncrStyle::Compound } else { IncrStyle::Plain },
            cmp: if rng.random::<bool>() { CmpStyle::Lt } else { CmpStyle::LePred },
            double_as_add: rng.random::<bool>(),
            names,
        }
    }

    /// A fixed, readable knob set (used by examples and tests).
    pub fn plain() -> Knobs {
        Knobs {
            loop_style: LoopStyle::For,
            incr: IncrStyle::Compound,
            cmp: CmpStyle::Lt,
            double_as_add: false,
            names: NameAssignment {
                arr: "a".into(),
                n: "n".into(),
                idx: "i".into(),
                jdx: "j".into(),
                acc: "s".into(),
                tmp: "tmp".into(),
                aux: "u".into(),
            },
        }
    }

    /// Renders `i += 1` or `i = i + 1` per the increment knob.
    pub fn incr_stmt(&self, var: &str) -> String {
        match self.incr {
            IncrStyle::Compound => format!("{var} += 1"),
            IncrStyle::Plain => format!("{var} = {var} + 1"),
        }
    }

    /// Renders the upper-bound comparison per the comparison knob.
    pub fn lt(&self, lhs: &str, rhs: &str) -> String {
        match self.cmp {
            CmpStyle::Lt => format!("{lhs} < {rhs}"),
            CmpStyle::LePred => format!("{lhs} <= {rhs} - 1"),
        }
    }

    /// Renders a doubling statement per the §3 knob.
    pub fn double_stmt(&self, var: &str) -> String {
        if self.double_as_add {
            format!("{var} += {var}")
        } else {
            format!("{var} *= 2")
        }
    }

    /// Renders a counted loop over `[lo, hi)` with the given body lines.
    /// `hi` must be a simple expression (it is re-evaluated per iteration
    /// in the `while` form, so it must be loop-invariant).
    pub fn counted_loop(&self, idx: &str, lo: &str, hi: &str, body: &str) -> String {
        let cond = self.lt(idx, hi);
        match self.loop_style {
            LoopStyle::For => format!(
                "for (let {idx}: int = {lo}; {cond}; {incr}) {{\n{body}\n}}",
                incr = self.incr_stmt(idx)
            ),
            LoopStyle::While => format!(
                "let {idx}: int = {lo};\nwhile ({cond}) {{\n{body}\n{incr};\n}}",
                incr = self.incr_stmt(idx)
            ),
        }
    }
}

/// Statement templates for dead-code distractors. Each declares and
/// (possibly) dead-branches over a fresh variable whose name pattern-
/// matches a *different* behaviour family — statically it smells like the
/// wrong family, dynamically its state never changes, so trace-reading
/// models see through it. This reproduces, in miniature, why real method
/// bodies defeat keyword mining (§6.1.1's code2seq remarks).
const DISTRACTOR_VARS: &[(&str, &str)] = &[
    ("sortedCount", "0"),
    ("sumOfMax", "1"),
    ("foundIndex", "0 - 1"),
    ("prodTotal", "1"),
    ("reversedSign", "0"),
    ("digitBest", "0"),
];

/// Renders `count` dead-code distractor statements (declarations plus a
/// dead conditional), deterministic in `rng`. The produced code never
/// changes observable behaviour: the variables are fresh and the branch
/// conditions are constant-false over the declared initial values.
pub fn distractor_preamble<R: Rng + ?Sized>(count: usize, rng: &mut R) -> String {
    let mut out = String::new();
    let mut used: Vec<usize> = (0..DISTRACTOR_VARS.len()).collect();
    for k in 0..count.min(DISTRACTOR_VARS.len()) {
        let pick = rng.random_range(0..used.len());
        let (name, init) = DISTRACTOR_VARS[used.swap_remove(pick)];
        out.push_str(&format!("let {name}: int = {init};\n"));
        if k == 0 && rng.random::<bool>() {
            // A dead branch: `init` values never exceed 100.
            out.push_str(&format!(
                "if ({name} > 100) {{\n{name} = 0;\n}}\n"
            ));
        }
    }
    out
}

/// Injects an *opaque* dead branch guarded by an input-derived condition
/// that is false on every execution — `min(x, 0) > 0` for an int
/// parameter, `len(a) < 0` for an array or string parameter. Unlike the
/// constant-initialized [`distractor_preamble`] branches, these guards
/// stay symbolic under naive constant folding (they mention an input), so
/// pruning them requires genuine range reasoning (`analysis::interval`).
/// Returns `src` unchanged when no parameter has a suitable type. The
/// chosen builtins (`min`, `len`) are total, so behaviour is preserved on
/// every input.
pub fn with_opaque_distractor<R: Rng + ?Sized>(src: &str, rng: &mut R) -> String {
    let Ok(program) = minilang::parse(src) else { return src.to_string() };
    let candidates: Vec<String> = program
        .function
        .params
        .iter()
        .filter_map(|p| match p.ty {
            minilang::Type::Int => Some(format!("min({}, 0) > 0", p.name)),
            minilang::Type::IntArray | minilang::Type::Str => {
                Some(format!("len({}) < 0", p.name))
            }
            minilang::Type::Bool => None,
        })
        .collect();
    let Some(guard) = candidates.choose(rng) else { return src.to_string() };
    let preamble = format!("let zzOpaque: int = 0;\nif ({guard}) {{\nzzOpaque = 1;\n}}\n");
    match src.find('{') {
        Some(pos) => {
            let mut out = String::with_capacity(src.len() + preamble.len() + 1);
            out.push_str(&src[..=pos]);
            out.push('\n');
            out.push_str(&preamble);
            out.push_str(&src[pos + 1..]);
            out
        }
        None => src.to_string(),
    }
}

/// Inserts a distractor preamble at the top of a rendered function body.
pub fn with_distractors<R: Rng + ?Sized>(src: &str, count: usize, rng: &mut R) -> String {
    if count == 0 {
        return src.to_string();
    }
    let preamble = distractor_preamble(count, rng);
    match src.find('{') {
        Some(pos) => {
            let mut out = String::with_capacity(src.len() + preamble.len() + 1);
            out.push_str(&src[..=pos]);
            out.push('\n');
            out.push_str(&preamble);
            out.push_str(&src[pos + 1..]);
            out
        }
        None => src.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distractors_preserve_behavior() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = "fn f(x: int) -> int {\nlet s: int = 0;\ns += x;\nreturn s;\n}";
        for count in 0..=3 {
            let noisy = with_distractors(base, count, &mut rng);
            let p0 = minilang::parse(base).unwrap();
            let p1 = minilang::parse(&noisy).unwrap();
            minilang::typecheck(&p1).unwrap();
            let a = interp::run(&p0, &[interp::Value::Int(7)]).unwrap().return_value;
            let b = interp::run(&p1, &[interp::Value::Int(7)]).unwrap().return_value;
            assert_eq!(a, b, "distractors changed behaviour:\n{noisy}");
        }
    }

    #[test]
    fn opaque_distractor_is_dead_but_needs_range_reasoning() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = "fn f(a: array<int>, x: int) -> int {\nlet s: int = 0;\ns += x;\nreturn s;\n}";
        let noisy = with_opaque_distractor(base, &mut rng);
        assert_ne!(noisy, base);
        let p0 = minilang::parse(base).unwrap();
        let p1 = minilang::parse(&noisy).unwrap();
        minilang::typecheck(&p1).unwrap();
        // The injected guard is statically decided (false): the branch is
        // provably dead even though its condition mentions an input.
        let facts = analysis::program_facts(&p1);
        assert!(facts.decided.values().any(|&b| !b), "guard not decided:\n{noisy}");
        // Behaviour is preserved.
        for x in [-3i64, 0, 7] {
            let inputs = [interp::Value::Array(vec![1, 2]), interp::Value::Int(x)];
            let a = interp::run(&p0, &inputs).unwrap().return_value;
            let b = interp::run(&p1, &inputs).unwrap().return_value;
            assert_eq!(a, b, "opaque distractor changed behaviour:\n{noisy}");
        }
        // A program with only bool parameters is returned unchanged.
        let boolsrc = "fn g(b: bool) -> int { return 0; }";
        assert_eq!(with_opaque_distractor(boolsrc, &mut rng), boolsrc);
    }

    #[test]
    fn distractor_names_are_cross_family_keywords() {
        let mut rng = StdRng::seed_from_u64(10);
        let pre = distractor_preamble(3, &mut rng);
        assert!(pre.lines().count() >= 3);
        // Each distractor name mixes two families' keywords.
        assert!(pre.contains("let "));
    }

    #[test]
    fn random_knobs_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let k = Knobs::random(&mut rng, 0.3);
            assert!(!k.names.arr.is_empty());
            // Roles draw from disjoint pools except deliberate misleading
            // accumulators, so arr/idx never collide.
            assert_ne!(k.names.arr, k.names.idx);
            assert_ne!(k.names.idx, k.names.jdx);
        }
    }

    #[test]
    fn counted_loop_renders_both_styles() {
        let mut k = Knobs::plain();
        let f = k.counted_loop("i", "0", "n", "s += i;");
        assert!(f.starts_with("for ("));
        k.loop_style = LoopStyle::While;
        let w = k.counted_loop("i", "0", "n", "s += i;");
        assert!(w.contains("while ("));
        assert!(w.contains("i += 1;"));
    }

    #[test]
    fn loop_styles_are_semantically_equal() {
        let mut k = Knobs::plain();
        let run = |knobs: &Knobs| {
            let src = format!(
                "fn f(n: int) -> int {{\nlet s: int = 0;\n{}\nreturn s;\n}}",
                knobs.counted_loop("i", "0", "n", "s += i;")
            );
            let p = minilang::parse(&src).unwrap();
            minilang::typecheck(&p).unwrap();
            interp::run(&p, &[interp::Value::Int(6)]).unwrap().return_value
        };
        let for_result = run(&k);
        k.loop_style = LoopStyle::While;
        k.incr = IncrStyle::Plain;
        k.cmp = CmpStyle::LePred;
        assert_eq!(for_result, run(&k));
    }

    #[test]
    fn double_stmt_variants_agree() {
        for double_as_add in [false, true] {
            let k = Knobs { double_as_add, ..Knobs::plain() };
            let src = format!(
                "fn f(x: int) -> int {{\n{};\nreturn x;\n}}",
                k.double_stmt("x")
            );
            let p = minilang::parse(&src).unwrap();
            let out = interp::run(&p, &[interp::Value::Int(21)]).unwrap().return_value;
            assert_eq!(out, interp::Value::Int(42));
        }
    }
}
