//! # par — deterministic data-parallel execution
//!
//! The training and evaluation hot paths are embarrassingly parallel:
//! one computation graph per example, no shared mutable state until the
//! gradient/metric reduction. This crate provides the single primitive
//! they need, [`par_map_ordered`], built on `std::thread::scope` — no
//! external dependencies.
//!
//! ## Determinism contract (see DESIGN.md)
//!
//! Results are **bitwise identical for every thread count**:
//!
//! - work is split by *fixed index ranges* (chunk boundaries depend only
//!   on `items.len()` and the worker count, never on scheduling),
//! - each item is mapped independently by a pure function of the item,
//! - the output `Vec` is assembled *in index order*, so any fold the
//!   caller runs over it reproduces the serial reduction order exactly.
//!
//! `LIGER_THREADS=1` (or [`set_threads`]`(1)`) recovers the fully serial
//! path: the closure runs inline on the calling thread with no pool at
//! all.
//!
//! ## Thread-count resolution
//!
//! [`threads`] resolves, in order: the programmatic [`set_threads`]
//! override (used by benches and the determinism property tests), the
//! `LIGER_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatically pins the worker count (`Some(n)`) or clears the pin
/// (`None`), taking precedence over `LIGER_THREADS`. Intended for tests
/// and benches that sweep thread counts inside one process.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count [`par_map_ordered`] will use: the [`set_threads`]
/// override, else `LIGER_THREADS`, else available parallelism (min 1).
pub fn threads() -> usize {
    let pinned = OVERRIDE.load(Ordering::SeqCst);
    if pinned > 0 {
        return pinned;
    }
    if let Ok(v) = std::env::var("LIGER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The machine's actual parallelism (min 1), ignoring both the
/// [`set_threads`] override and `LIGER_THREADS`. Used for sizing things
/// that scale with physical cores rather than the configured pool —
/// e.g. the serve front end's default inference shard count.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The fixed chunk boundaries for `len` items over `workers` workers:
/// worker `w` owns `[start, end)`. The first `len % workers` chunks get
/// one extra item, so boundaries are a pure function of `(len, workers)`.
fn chunk_bounds(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let start = w * base + w.min(extra);
    let end = start + base + usize::from(w < extra);
    (start, end)
}

/// Maps `f` over `items`, fanning out across the worker pool, and
/// returns the results **in index order**. `f(i, &items[i])` must be a
/// pure function of its arguments for the determinism contract to hold.
///
/// With one worker (or one item) the closure runs inline on the calling
/// thread — exactly the serial loop it replaces.
pub fn par_map_ordered<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let mut scratch: Vec<()> = Vec::new();
    par_map_ordered_with(items, &mut scratch, || (), |(), i, t| f(i, t))
}

/// [`par_map_ordered`] with **persistent per-worker scratch state**: worker
/// `w` receives `&mut scratches[w]` for every item in its chunk, and the
/// scratch vector outlives the call, so state built up in one batch (arena
/// capacity, buffer pools, memo tables) carries over to the next.
///
/// `scratches` is grown with `init` to the resolved worker count; extra
/// entries from an earlier, wider batch are kept but idle. Callers must
/// keep the determinism contract in mind: `f(scratch, i, &items[i])` must
/// return a value that is a pure function of `(i, items[i])` — scratch may
/// only affect *how* the result is computed (allocation reuse), never
/// *what* it is.
///
/// With one worker (or one item) the closure runs inline on the calling
/// thread against `scratches[0]`.
pub fn par_map_ordered_with<T, U, S, F, I>(
    items: &[T],
    scratches: &mut Vec<S>,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    S: Send,
    I: FnMut() -> S,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    par_map_ordered_with_cap(items, scratches, init, f, usize::MAX)
}

/// [`par_map_ordered_with`] with an additional **worker cap**: at most
/// `cap` logical workers regardless of the configured thread count.
/// Callers that run several pools side by side (the serve front end's
/// inference shards) use it to hand each pool only its slice of the
/// machine, so N shards together never oversubscribe [`threads`].
///
/// The cap participates in chunking, so it is part of the determinism
/// input: a given `(len, min(threads, cap))` always produces the same
/// chunk boundaries. Results remain bitwise identical for every cap
/// because `f` must already be a pure function of `(i, items[i])`.
pub fn par_map_ordered_with_cap<T, U, S, F, I>(
    items: &[T],
    scratches: &mut Vec<S>,
    init: I,
    f: F,
    cap: usize,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    S: Send,
    I: FnMut() -> S,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let workers = threads().min(cap).min(items.len()).max(1);
    if scratches.len() < workers {
        scratches.resize_with(workers, init);
    }
    let _span = obs::span!("par.batch");
    if workers <= 1 {
        let scratch = &mut scratches[0];
        return items.iter().enumerate().map(|(i, t)| f(scratch, i, t)).collect();
    }

    let mut results: Vec<Option<U>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    // Hand each logical worker its fixed slice of the output buffer.
    // Chunk boundaries (and scratch assignment) depend only on the
    // *configured* worker count — never on how many OS threads run them —
    // so the determinism contract is untouched by the scheduling below.
    let mut slots: &mut [Option<U>] = &mut results;
    let mut chunks: Vec<(usize, &mut [Option<U>])> = Vec::with_capacity(workers);
    let mut consumed = 0;
    for w in 0..workers {
        let (start, end) = chunk_bounds(items.len(), workers, w);
        let (head, tail) = slots.split_at_mut(end - consumed);
        slots = tail;
        consumed = end;
        chunks.push((start, head));
    }

    // Cap OS threads at the hardware parallelism: spawning more threads
    // than cores buys nothing and the per-thread setup (stack allocation,
    // scheduler churn) used to make throughput *drop* as the configured
    // worker count rose on small hosts (the BENCH_parallel regression).
    // Chunks are dealt round-robin so every chunk keeps its own scratch.
    let os_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(workers);

    let f = &f;
    let run_chunk = |scratch: &mut S, start: usize, out: &mut [Option<U>]| {
        for (offset, slot) in out.iter_mut().enumerate() {
            let i = start + offset;
            *slot = Some(f(scratch, i, &items[i]));
        }
    };

    if os_threads <= 1 {
        // One core: run every chunk inline, in chunk order, against its
        // own scratch — identical results without a single spawn.
        for ((start, out), scratch) in chunks.into_iter().zip(scratches.iter_mut()) {
            run_chunk(scratch, start, out);
        }
    } else {
        type ChunkTask<'t, U, S> = (usize, &'t mut [Option<U>], &'t mut S);
        let mut buckets: Vec<Vec<ChunkTask<'_, U, S>>> =
            (0..os_threads).map(|_| Vec::new()).collect();
        for (w, ((start, out), scratch)) in
            chunks.into_iter().zip(scratches.iter_mut()).enumerate()
        {
            buckets[w % os_threads].push((start, out, scratch));
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    // One span per OS thread (not per chunk): it shows up
                    // as a per-thread root in the trace timeline and the
                    // setup is amortized over all chunks the thread owns.
                    let _span = obs::span!("par.worker");
                    for (start, out, scratch) in bucket {
                        run_chunk(scratch, start, out);
                    }
                });
            }
        });
    }

    results.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn chunks_partition_the_range() {
        for len in 0..40 {
            for workers in 1..9 {
                let mut covered = Vec::new();
                for w in 0..workers {
                    let (s, e) = chunk_bounds(len, workers, w);
                    covered.extend(s..e);
                }
                assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn map_is_ordered_and_thread_count_invariant() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..101).collect();
        let mut reference = None;
        for n in [1usize, 2, 3, 8] {
            set_threads(Some(n));
            let out = par_map_ordered(&items, |i, &x| x * 3 + i as u64);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "thread count {n} changed results"),
            }
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(4));
        let empty: Vec<i32> = Vec::new();
        assert!(par_map_ordered(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map_ordered(&[7], |i, &x| x + i as i32), vec![7]);
        set_threads(None);
    }

    #[test]
    fn scratch_state_persists_across_batches() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        let items: Vec<u32> = (0..30).collect();
        let mut scratches: Vec<u64> = Vec::new();
        // Each worker counts the items it processed; counts must survive
        // into the second batch and the result stay order-correct.
        let out = par_map_ordered_with(&items, &mut scratches, || 0, |seen, i, &x| {
            *seen += 1;
            x * 2 + i as u32
        });
        assert_eq!(out, items.iter().enumerate().map(|(i, x)| x * 2 + i as u32).collect::<Vec<_>>());
        assert_eq!(scratches.len(), 3);
        assert_eq!(scratches.iter().sum::<u64>(), 30);
        let _ = par_map_ordered_with(&items, &mut scratches, || 0, |seen, _, &x| {
            *seen += 1;
            x
        });
        assert_eq!(scratches.iter().sum::<u64>(), 60, "scratch reset between batches");
        // A narrower batch keeps the extra scratch idle but intact.
        set_threads(Some(1));
        let _ = par_map_ordered_with(&items[..4], &mut scratches, || 0, |seen, _, &x| {
            *seen += 1;
            x
        });
        assert_eq!(scratches.len(), 3);
        assert_eq!(scratches.iter().sum::<u64>(), 64);
        set_threads(None);
    }

    #[test]
    fn cap_limits_workers_without_changing_results() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(8));
        let items: Vec<u64> = (0..53).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 7 + i as u64).collect();
        for cap in [1usize, 2, 3, usize::MAX] {
            let mut scratches: Vec<()> = Vec::new();
            let out = par_map_ordered_with_cap(
                &items,
                &mut scratches,
                || (),
                |(), i, &x| x * 7 + i as u64,
                cap,
            );
            assert_eq!(out, expect, "cap {cap} changed results");
            assert_eq!(scratches.len(), cap.min(8), "cap {cap} grew too many scratches");
        }
        set_threads(None);
    }

    #[test]
    fn hardware_threads_ignores_overrides() {
        let _guard = LOCK.lock().unwrap();
        let actual = hardware_threads();
        assert!(actual >= 1);
        set_threads(Some(99));
        assert_eq!(hardware_threads(), actual);
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }
}
