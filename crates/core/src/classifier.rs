//! The semantics-classification head (§6.2).
//!
//! "Since LIGER is presented with a classification problem in this
//! setting, we remove decoder from its architecture, and directly feed the
//! learned program embedding to a linear transformation layer. Then, we
//! add a one layer softmax regression to serve the prediction task."

use crate::encode::EncodedProgram;
use crate::model::{LigerModel, Workspace};
use nn::Linear;
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// LIGER with a classification head instead of the decoder.
#[derive(Debug, Clone, Copy)]
pub struct LigerClassifier {
    /// The shared encoder.
    pub model: LigerModel,
    pub(crate) head: Linear,
    /// Number of classes.
    pub num_classes: usize,
}

impl LigerClassifier {
    /// Registers the head for an existing encoder.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        model: LigerModel,
        num_classes: usize,
        rng: &mut R,
    ) -> LigerClassifier {
        let head = Linear::new(store, "cls.head", model.cfg.hidden, num_classes, rng);
        LigerClassifier { model, head, num_classes }
    }

    /// All parameter ids (encoder + head).
    pub fn params(&self) -> Vec<ParamId> {
        let mut out = self.model.params();
        out.push(self.head.w);
        out.push(self.head.b);
        out
    }

    /// Class logits for a program.
    pub fn logits(&self, g: &mut Graph, store: &ParamStore, prog: &EncodedProgram) -> VarId {
        let enc = self.model.encode(g, store, prog);
        self.head.forward(g, store, enc.program)
    }

    /// Cross-entropy training loss against `label`.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        prog: &EncodedProgram,
        label: usize,
    ) -> VarId {
        assert!(label < self.num_classes, "label {label} out of {} classes", self.num_classes);
        let logits = self.logits(g, store, prog);
        g.cross_entropy(logits, label)
    }

    /// Greedy prediction: the argmax class.
    pub fn predict(&self, store: &ParamStore, prog: &EncodedProgram) -> usize {
        let mut ws = Workspace::new();
        self.predict_in(&mut ws, store, prog)
    }

    /// [`LigerClassifier::logits`] with embedding memoization against a
    /// reusable [`Workspace`] (resets the workspace first).
    pub fn logits_memo(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> VarId {
        let enc = self.model.encode_memo(ws, store, prog);
        self.head.forward(&mut ws.graph, store, enc.program)
    }

    /// [`LigerClassifier::loss`] against a reusable [`Workspace`].
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn loss_memo(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
        label: usize,
    ) -> VarId {
        assert!(label < self.num_classes, "label {label} out of {} classes", self.num_classes);
        let logits = self.logits_memo(ws, store, prog);
        ws.graph.cross_entropy(logits, label)
    }

    /// [`LigerClassifier::predict`] against a reusable [`Workspace`]
    /// (resets the workspace first) — the arena-reuse path for bulk
    /// evaluation.
    pub fn predict_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> usize {
        ws.reset();
        let logits = self.logits_memo(ws, store, prog);
        argmax(ws.graph.value(logits).data())
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(data: &[f32]) -> usize {
    assert!(!data.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in data.iter().enumerate().skip(1) {
        if v > data[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use crate::model::LigerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![EncStep {
                tree: EncTree { token, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
            }],
        }])
    }

    fn setup() -> (ParamStore, LigerClassifier) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
        let cls = LigerClassifier::new(&mut store, model, 3, &mut rng);
        (store, cls)
    }

    #[test]
    fn logits_have_class_count() {
        let (store, cls) = setup();
        let mut g = Graph::new();
        let l = cls.logits(&mut g, &store, &prog(1));
        assert_eq!(g.value(l).rows(), 3);
    }

    #[test]
    fn learns_to_separate_two_programs() {
        let (mut store, cls) = setup();
        let a = prog(1);
        let b = prog(5);
        let mut adam = nn::Adam::new(0.05);
        for _ in 0..60 {
            for (p, label) in [(&a, 0usize), (&b, 2usize)] {
                let mut g = Graph::new();
                let loss = cls.loss(&mut g, &store, p, label);
                g.backward(loss, &mut store);
                adam.step(&mut store);
            }
        }
        assert_eq!(cls.predict(&store, &a), 0);
        assert_eq!(cls.predict(&store, &b), 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_label_panics() {
        let (store, cls) = setup();
        let mut g = Graph::new();
        cls.loss(&mut g, &store, &prog(1), 9);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
