//! Vocabularies: the shared input vocabulary 𝒟ₛ ∪ 𝒟_d and the output
//! (method-name sub-token) vocabulary.
//!
//! §6.1 Implementation: "Our vocabulary has 9,641 unique tokens (for both
//! static and dynamic feature dimensions), each of which is embedded into
//! a 100-dimensional vector" — one index space serves both feature
//! dimensions, which is what lets identical concrete values teach the
//! model that differently-spelled statements agree (§3).

use std::collections::HashMap;

/// Index of a token in a [`Vocab`].
pub type TokenId = usize;

/// A frozen token → index mapping with an `<UNK>` fallback at index 0.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    index: HashMap<String, TokenId>,
    tokens: Vec<String>,
}

/// The reserved unknown-token spelling.
pub const UNK: &str = "<UNK>";

impl Vocab {
    /// An empty vocabulary containing only `<UNK>`.
    pub fn new() -> Vocab {
        let mut v = Vocab { index: HashMap::new(), tokens: Vec::new() };
        v.add(UNK);
        v
    }

    /// Inserts `token` if absent; returns its id.
    pub fn add(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.index.get(token) {
            return id;
        }
        let id = self.tokens.len();
        self.index.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Inserts every token of an iterator.
    pub fn add_all<'a>(&mut self, tokens: impl IntoIterator<Item = &'a str>) {
        for t in tokens {
            self.add(t);
        }
    }

    /// The id of `token`, or the `<UNK>` id when absent.
    pub fn get(&self, token: &str) -> TokenId {
        self.index.get(token).copied().unwrap_or(0)
    }

    /// The spelling of `id`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range ids.
    pub fn token(&self, id: TokenId) -> &str {
        &self.tokens[id]
    }

    /// Number of tokens (including `<UNK>`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only `<UNK>` is present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 1
    }

    /// True when `token` is present (not counting the `<UNK>` fallback).
    pub fn contains(&self, token: &str) -> bool {
        self.index.contains_key(token)
    }
}

/// The output vocabulary for method-name generation: sub-tokens plus the
/// reserved `<SOS>`/`<EOS>` markers ("The decoder also receives a special
/// token to begin, and emits another to end the generation", §5.1.2).
#[derive(Debug, Clone, Default)]
pub struct OutVocab {
    inner: Vocab,
}

/// Reserved id of the start-of-sequence marker.
pub const SOS: TokenId = 1;
/// Reserved id of the end-of-sequence marker.
pub const EOS: TokenId = 2;

impl OutVocab {
    /// An output vocabulary containing `<UNK>`, `<SOS>`, `<EOS>`.
    pub fn new() -> OutVocab {
        let mut inner = Vocab::new();
        let sos = inner.add("<SOS>");
        let eos = inner.add("<EOS>");
        debug_assert_eq!(sos, SOS);
        debug_assert_eq!(eos, EOS);
        OutVocab { inner }
    }

    /// Inserts a sub-token if absent; returns its id.
    pub fn add(&mut self, token: &str) -> TokenId {
        self.inner.add(token)
    }

    /// The id of `token`, or `<UNK>`'s id when absent.
    pub fn get(&self, token: &str) -> TokenId {
        self.inner.get(token)
    }

    /// The spelling of `id`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range ids.
    pub fn token(&self, id: TokenId) -> &str {
        self.inner.token(id)
    }

    /// Number of tokens, including the three reserved entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when only the reserved tokens exist.
    pub fn is_empty(&self) -> bool {
        self.inner.len() <= 3
    }

    /// Encodes a method name as sub-token ids terminated by `<EOS>`.
    pub fn encode_name(&self, name: &str) -> Vec<TokenId> {
        let mut out: Vec<TokenId> =
            minilang::subtokens(name).iter().map(|t| self.get(t)).collect();
        out.push(EOS);
        out
    }

    /// Decodes predicted ids (stopping at `<EOS>`) back to sub-tokens,
    /// skipping reserved entries.
    pub fn decode_name(&self, ids: &[TokenId]) -> Vec<String> {
        let mut out = Vec::new();
        for &id in ids {
            if id == EOS {
                break;
            }
            if id == SOS || id == 0 {
                continue;
            }
            out.push(self.token(id).to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unk_is_index_zero() {
        let v = Vocab::new();
        assert_eq!(v.get("never-seen"), 0);
        assert_eq!(v.token(0), UNK);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("x");
        let b = v.add("x");
        assert_eq!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn out_vocab_reserved_ids() {
        let v = OutVocab::new();
        assert_eq!(v.token(SOS), "<SOS>");
        assert_eq!(v.token(EOS), "<EOS>");
    }

    #[test]
    fn encode_decode_name_roundtrip() {
        let mut v = OutVocab::new();
        v.add("find");
        v.add("max");
        let ids = v.encode_name("findMax");
        assert_eq!(ids.len(), 3);
        assert_eq!(*ids.last().unwrap(), EOS);
        assert_eq!(v.decode_name(&ids), vec!["find", "max"]);
    }

    #[test]
    fn unknown_subtokens_map_to_unk() {
        let v = OutVocab::new();
        let ids = v.encode_name("mystery");
        assert_eq!(ids, vec![0, EOS]);
    }
}
