//! The method-name decoder (§5.1.2).
//!
//! "Given the encoder outputs 𝓗_P and {{Hᵉ_{i,j}}}, we use another RNN to
//! decode the method names. For initialization, we provide the decoder
//! with the program embedding 𝓗_P. The decoder also receives a special
//! token to begin, and emits another to end the generation." The decoder
//! attends (a₂) over the flow of all blended traces to build a context
//! vector per generated word.

use crate::model::EncoderOutput;
use crate::vocab::{TokenId, EOS, SOS};
use nn::{AttentionScorer, Embedding, Linear, RnnCell};
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// The attentive sub-token decoder.
#[derive(Debug, Clone, Copy)]
pub struct NameDecoder {
    pub(crate) out_emb: Embedding,
    pub(crate) rnn: RnnCell,
    pub(crate) a2: AttentionScorer,
    pub(crate) out: Linear,
    /// Output vocabulary size.
    pub out_vocab: usize,
}

impl NameDecoder {
    /// Registers all decoder parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        out_vocab: usize,
        hidden: usize,
        attn: usize,
        rng: &mut R,
    ) -> NameDecoder {
        NameDecoder {
            out_emb: Embedding::new(store, "dec.emb", out_vocab, hidden, rng),
            rnn: RnnCell::new(store, "dec.rnn", hidden, hidden, rng),
            a2: AttentionScorer::new(store, "dec.a2", hidden, hidden, attn, rng),
            out: Linear::new(store, "dec.out", 2 * hidden, out_vocab, rng),
            out_vocab,
        }
    }

    /// All decoder parameter ids.
    pub fn params(&self) -> Vec<ParamId> {
        let mut out = vec![self.out_emb.param()];
        out.extend(self.rnn.params());
        out.extend(self.a2.params());
        out.push(self.out.w);
        out.push(self.out.b);
        out
    }

    fn step_logits(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        memory: &[VarId],
        prev_token: TokenId,
        h: VarId,
    ) -> (VarId, VarId) {
        let x = self.out_emb.lookup(g, store, prev_token);
        let h_next = self.rnn.step(g, store, x, h);
        let ctx = if memory.is_empty() {
            let hidden = g.value(h_next).rows();
            g.zeros(hidden, 1)
        } else {
            let (ctx, _) = self.a2.attend(g, store, h_next, memory, None);
            ctx
        };
        let cat = g.concat(&[h_next, ctx]);
        let logits = self.out.forward(g, store, cat);
        (logits, h_next)
    }

    /// Teacher-forced training loss: mean cross-entropy of generating
    /// `target` (sub-token ids already terminated by `<EOS>`).
    ///
    /// # Panics
    ///
    /// Panics when `target` is empty.
    pub fn loss(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        enc: &EncoderOutput,
        target: &[TokenId],
    ) -> VarId {
        assert!(!target.is_empty(), "decoder target must at least contain <EOS>");
        let memory = enc.all_flow_states();
        let mut h = enc.program;
        let mut prev = SOS;
        let mut terms = Vec::with_capacity(target.len());
        for &t in target {
            let (logits, h_next) = self.step_logits(g, store, &memory, prev, h);
            terms.push(g.cross_entropy(logits, t));
            h = h_next;
            prev = t;
        }
        let stacked = g.stack_scalars(&terms);
        g.mean(stacked)
    }

    /// Beam-search decoding: keeps the `width` highest log-probability
    /// hypotheses per step, returning the best finished (or longest)
    /// hypothesis without its `<EOS>`. `width = 1` coincides with
    /// [`NameDecoder::greedy`] up to tie-breaking.
    ///
    /// # Panics
    ///
    /// Panics when `width == 0`.
    pub fn beam(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        enc: &EncoderOutput,
        max_len: usize,
        width: usize,
    ) -> Vec<TokenId> {
        assert!(width > 0, "beam width must be positive");
        let memory = enc.all_flow_states();
        struct Hyp {
            tokens: Vec<TokenId>,
            score: f64,
            h: VarId,
            prev: TokenId,
            done: bool,
        }
        let mut beam = vec![Hyp {
            tokens: Vec::new(),
            score: 0.0,
            h: enc.program,
            prev: SOS,
            done: false,
        }];
        for _ in 0..max_len {
            if beam.iter().all(|h| h.done) {
                break;
            }
            let mut candidates: Vec<Hyp> = Vec::new();
            for hyp in &beam {
                if hyp.done {
                    candidates.push(Hyp {
                        tokens: hyp.tokens.clone(),
                        score: hyp.score,
                        h: hyp.h,
                        prev: hyp.prev,
                        done: true,
                    });
                    continue;
                }
                let (logits, h_next) = self.step_logits(g, store, &memory, hyp.prev, hyp.h);
                let log_probs = log_softmax(g.value(logits).data());
                // Expand with the `width` best continuations (skipping the
                // reserved <UNK>/<SOS> tokens).
                let mut ranked: Vec<(usize, f64)> = log_probs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != 0 && *i != SOS)
                    .map(|(i, &lp)| (i, lp))
                    .collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite log-probs"));
                for &(token, lp) in ranked.iter().take(width) {
                    let mut tokens = hyp.tokens.clone();
                    let done = token == EOS;
                    if !done {
                        tokens.push(token);
                    }
                    candidates.push(Hyp {
                        tokens,
                        score: hyp.score + lp,
                        h: h_next,
                        prev: token,
                        done,
                    });
                }
            }
            candidates.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
            candidates.truncate(width);
            beam = candidates;
        }
        beam.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        beam.into_iter().next().map(|h| h.tokens).unwrap_or_default()
    }

    /// Greedy decoding: emits sub-token ids until `<EOS>` or `max_len`.
    pub fn greedy(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        enc: &EncoderOutput,
        max_len: usize,
    ) -> Vec<TokenId> {
        let memory = enc.all_flow_states();
        let mut h = enc.program;
        let mut prev = SOS;
        let mut out = Vec::new();
        for _ in 0..max_len {
            let (logits, h_next) = self.step_logits(g, store, &memory, prev, h);
            let data = g.value(logits).data();
            let (best, _) = data
                .iter()
                .enumerate()
                // Never emit <UNK> (0) or <SOS> (1).
                .filter(|(i, _)| *i != 0 && *i != SOS)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
                .expect("output vocabulary is non-empty");
            if best == EOS {
                break;
            }
            out.push(best);
            h = h_next;
            prev = best;
        }
        out
    }
}

/// Numerically-stable log-softmax over a slice (plain CPU math; decoding
/// needs no gradients).
fn log_softmax(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let log_sum: f64 =
        logits.iter().map(|&v| ((v as f64) - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&v| v as f64 - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
    use crate::model::{LigerConfig, LigerModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, LigerModel, NameDecoder, EncodedProgram) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
        let dec = NameDecoder::new(&mut store, 8, 6, 6, &mut rng);
        let prog = EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![EncStep {
                tree: EncTree { token: 1, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(2)] }],
            }],
        }]);
        (store, model, dec, prog)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (mut store, model, dec, prog) = setup();
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &prog);
        let loss = dec.loss(&mut g, &store, &enc, &[4, 5, EOS]);
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn greedy_respects_max_len_and_reserved_tokens() {
        let (store, model, dec, prog) = setup();
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &prog);
        let ids = dec.greedy(&mut g, &store, &enc, 4);
        assert!(ids.len() <= 4);
        assert!(ids.iter().all(|&i| i != 0 && i != SOS && i != EOS));
    }

    #[test]
    fn training_teaches_a_constant_name() {
        // Over-fit a single sample: the decoder should learn to emit the
        // fixed target sequence.
        let (mut store, model, dec, prog) = setup();
        let target = vec![4, 5, EOS];
        let mut adam = nn::Adam::new(0.05);
        for _ in 0..80 {
            let mut g = Graph::new();
            let enc = model.encode(&mut g, &store, &prog);
            let loss = dec.loss(&mut g, &store, &enc, &target);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &prog);
        let ids = dec.greedy(&mut g, &store, &enc, 6);
        assert_eq!(ids, vec![4, 5], "decoder failed to over-fit one sample");
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        let (store, model, dec, prog) = setup();
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &prog);
        let greedy = dec.greedy(&mut g, &store, &enc, 5);
        let beam = dec.beam(&mut g, &store, &enc, 5, 1);
        assert_eq!(greedy, beam);
    }

    #[test]
    fn wider_beam_never_scores_worse_on_trained_model() {
        // After over-fitting, both beams find the target.
        let (mut store, model, dec, prog) = setup();
        let target = vec![4, 5, EOS];
        let mut adam = nn::Adam::new(0.05);
        for _ in 0..80 {
            let mut g = Graph::new();
            let enc = model.encode(&mut g, &store, &prog);
            let loss = dec.loss(&mut g, &store, &enc, &target);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &prog);
        assert_eq!(dec.beam(&mut g, &store, &enc, 6, 3), vec![4, 5]);
    }

    #[test]
    fn log_softmax_is_normalized() {
        let lp = log_softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = lp.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(lp.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn decodes_from_empty_memory() {
        let (store, model, dec, _) = setup();
        let mut g = Graph::new();
        let enc = model.encode(&mut g, &store, &EncodedProgram::default());
        let ids = dec.greedy(&mut g, &store, &enc, 3);
        assert!(ids.len() <= 3);
    }
}
