//! Single-shot inference: query a trained model without constructing a
//! trainer.
//!
//! Training code owns the `ParamStore` mutably and drives epochs; the
//! serving path ([`crate::bundle::ModelBundle`] → [`LigerTask`] /
//! [`Inferencer`]) only ever *reads* parameters. This module is the thin
//! read-only surface the `liger-serve` service and the examples build on:
//!
//! - [`ExtractOptions`] / [`extract_encoded`] — MiniLang source →
//!   [`EncodedProgram`], running the feedback-directed generator with a
//!   fixed seed so the same source always produces the same blended
//!   traces (and therefore a bit-reproducible embedding);
//! - [`LigerTask`] — a trained encoder plus its task head (namer or
//!   classifier), with `*_in` methods that run one forward pass on a
//!   caller-provided [`Workspace`] (the per-worker arena-reuse pattern
//!   from DESIGN.md §2b);
//! - [`Inferencer`] — the batteries-included owner of task + parameters +
//!   workspace for sequential callers.
//!
//! Every entry point uses the memoized encoder ([`LigerModel::encode_memo`]),
//! so served results are bitwise identical to the offline
//! `EncodeMode::Memoized` path — and, by the §2b equivalence guarantees,
//! to the uncached reference as well.

use crate::bundle::{BundleError, ModelBundle};
use crate::encode::{encode_program, EncodeOptions, EncodedProgram};
use crate::model::{LigerModel, Workspace};
use crate::qencode::QuantEngine;
use crate::train::LigerNamer;
use crate::vocab::{OutVocab, Vocab};
use crate::LigerClassifier;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::ParamStore;

/// How MiniLang source is turned into blended traces at inference time.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractOptions {
    /// Target number of distinct program paths to collect.
    pub target_paths: usize,
    /// Concrete executions kept per path.
    pub concrete_per_path: usize,
    /// Maximum concrete traces blended per path.
    pub max_concrete: usize,
    /// Encoding bounds (steps/traces kept).
    pub encode: EncodeOptions,
    /// Seed of the feedback-directed generator. Fixed by default so a
    /// given source string always produces the same encoded program.
    pub seed: u64,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            target_paths: 6,
            concrete_per_path: 3,
            max_concrete: 3,
            encode: EncodeOptions::default(),
            seed: 0x11_6e7,
        }
    }
}

/// Why a source program could not be turned into an encoded program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The source failed to parse or type-check.
    Frontend(String),
    /// No input produced a successful execution, so there is nothing to
    /// blend (the paper's "Randoop does not have access" category).
    NoTraces,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::Frontend(msg) => write!(f, "{msg}"),
            ExtractError::NoTraces => write!(f, "no successful executions to blend"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// MiniLang source → model-ready [`EncodedProgram`], deterministically.
///
/// Parses, type-checks, collects concrete executions with the
/// feedback-directed generator (seeded from `opts.seed`), groups them by
/// path, blends, and encodes against `vocab`.
///
/// # Errors
///
/// Returns [`ExtractError`] when the frontend rejects the source or no
/// execution succeeds.
pub fn extract_encoded(
    source: &str,
    vocab: &Vocab,
    opts: &ExtractOptions,
) -> Result<EncodedProgram, ExtractError> {
    let (program, blended) = blended_traces(source, opts)?;
    Ok(encode_program(&program, &blended, vocab, &opts.encode))
}

/// Builds an input vocabulary covering `sources` by tracing each one the
/// same way [`extract_encoded`] will. Used to bootstrap a model for a
/// known corpus (e.g. the `liger-serve --demo` trainer).
///
/// # Errors
///
/// Returns [`ExtractError`] for the first source that cannot be traced.
pub fn vocab_from_sources<S: AsRef<str>>(
    sources: &[S],
    opts: &ExtractOptions,
) -> Result<Vocab, ExtractError> {
    let mut vocab = Vocab::new();
    for source in sources {
        let (program, blended) = blended_traces(source.as_ref(), opts)?;
        crate::encode::program_into_vocab(&program, &blended, &mut vocab, &opts.encode);
    }
    Ok(vocab)
}

/// Shared frontend + tracing pipeline: parse, type-check, generate
/// concrete executions, group by path, blend.
fn blended_traces(
    source: &str,
    opts: &ExtractOptions,
) -> Result<(minilang::Program, Vec<trace::BlendedTrace>), ExtractError> {
    let program =
        minilang::parse(source).map_err(|e| ExtractError::Frontend(e.to_string()))?;
    minilang::typecheck(&program).map_err(|e| ExtractError::Frontend(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let gen = randgen::GenConfig {
        target_paths: opts.target_paths,
        concrete_per_path: opts.concrete_per_path,
        ..randgen::GenConfig::default()
    };
    let (groups, _stats) = randgen::generate_grouped(&program, &gen, &mut rng);
    let blended: Vec<trace::BlendedTrace> =
        groups.iter().filter_map(|g| g.blend(opts.max_concrete).ok()).collect();
    if blended.is_empty() {
        return Err(ExtractError::NoTraces);
    }
    Ok((program, blended))
}

/// A trained encoder plus its task head, detached from any store: the
/// read-only model object inference workers share.
#[derive(Debug, Clone)]
pub enum LigerTask {
    /// Method-name prediction (encoder + attentive decoder).
    Namer {
        /// The trained namer.
        namer: LigerNamer,
        /// The output (sub-token) vocabulary.
        out: OutVocab,
    },
    /// Semantics classification (encoder + linear head).
    Classifier {
        /// The trained classifier.
        cls: LigerClassifier,
        /// Class-label display names (index = class id).
        labels: Vec<String>,
    },
}

impl LigerTask {
    /// The shared encoder.
    pub fn model(&self) -> &LigerModel {
        match self {
            LigerTask::Namer { namer, .. } => &namer.model,
            LigerTask::Classifier { cls, .. } => &cls.model,
        }
    }

    /// The program embedding 𝓗_P for one program (resets `ws` first).
    /// Bitwise identical to the offline memoized encoder.
    pub fn embed_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> Vec<f32> {
        ws.reset();
        let enc = self.model().encode_memo(ws, store, prog);
        ws.graph.value(enc.program).data().to_vec()
    }

    /// Program embeddings for a whole minibatch in one graph, through the
    /// batch-major fused-GEMM encoder (resets `ws` first). Each embedding
    /// is bitwise identical to its [`LigerTask::embed_in`] result; the
    /// batched tape just reaches them with panel matmuls instead of
    /// per-program matvecs.
    pub fn embed_batch_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        progs: &[&EncodedProgram],
    ) -> Vec<Vec<f32>> {
        ws.reset();
        let outs = self.model().encode_batch(ws, store, progs);
        outs.iter().map(|o| ws.graph.value(o.program).data().to_vec()).collect()
    }

    /// Predicted method-name sub-tokens; `None` for classifier bundles.
    pub fn name_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> Option<Vec<String>> {
        match self {
            LigerTask::Namer { namer, out } => {
                Some(out.decode_name(&namer.predict_in(ws, store, prog)))
            }
            LigerTask::Classifier { .. } => None,
        }
    }

    /// Predicted class id and display label; `None` for namer bundles.
    pub fn classify_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> Option<(usize, String)> {
        match self {
            LigerTask::Namer { .. } => None,
            LigerTask::Classifier { cls, labels } => {
                let class = cls.predict_in(ws, store, prog);
                let label = labels
                    .get(class)
                    .cloned()
                    .unwrap_or_else(|| format!("class{class}"));
                Some((class, label))
            }
        }
    }
}

/// Owns everything one sequential caller needs to query a trained model:
/// the task, the trained parameters, the input vocabulary, and a
/// persistent [`Workspace`] reused across calls.
#[derive(Debug)]
pub struct Inferencer {
    /// The trained model + head.
    pub task: LigerTask,
    /// The input vocabulary the model was trained against.
    pub vocab: Vocab,
    /// The trained parameter values (dequantized for quantized bundles).
    pub store: ParamStore,
    /// The int8 engine, present when built from a quantized (`qparams`)
    /// bundle: embed/name/classify then run dequantize-free.
    pub engine: Option<QuantEngine>,
    ws: Workspace,
}

impl Inferencer {
    /// Builds an inferencer from a checkpoint bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError`] when the bundle's parameters do not match
    /// its declared architecture.
    pub fn from_bundle(bundle: &ModelBundle) -> Result<Inferencer, BundleError> {
        let (task, store) = bundle.instantiate()?;
        let engine = bundle.qstore.clone().map(QuantEngine::from_store);
        Ok(Inferencer { task, vocab: bundle.vocab.clone(), store, engine, ws: Workspace::new() })
    }

    /// Encodes MiniLang source against this model's vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError`] when the source cannot be executed.
    pub fn encode_source(
        &self,
        source: &str,
        opts: &ExtractOptions,
    ) -> Result<EncodedProgram, ExtractError> {
        extract_encoded(source, &self.vocab, opts)
    }

    /// The program embedding 𝓗_P (int8 path when quantized).
    pub fn embed(&mut self, prog: &EncodedProgram) -> Vec<f32> {
        match &mut self.engine {
            Some(engine) => engine.embed(self.task.model(), prog),
            None => self.task.embed_in(&mut self.ws, &self.store, prog),
        }
    }

    /// Program embeddings for a minibatch: the fused batch-major encoder
    /// for f32 models, the int8 engine per program when quantized.
    pub fn embed_batch(&mut self, progs: &[&EncodedProgram]) -> Vec<Vec<f32>> {
        match &mut self.engine {
            Some(engine) => {
                let model = self.task.model();
                progs.iter().map(|p| engine.embed(model, p)).collect()
            }
            None => self.task.embed_batch_in(&mut self.ws, &self.store, progs),
        }
    }

    /// Predicted method-name sub-tokens; `None` for classifier bundles.
    pub fn name(&mut self, prog: &EncodedProgram) -> Option<Vec<String>> {
        if let Some(engine) = &mut self.engine {
            return match &self.task {
                LigerTask::Namer { namer, out } => {
                    Some(out.decode_name(&engine.name(namer, prog)))
                }
                LigerTask::Classifier { .. } => None,
            };
        }
        self.task.name_in(&mut self.ws, &self.store, prog)
    }

    /// Predicted class id and label; `None` for namer bundles.
    pub fn classify(&mut self, prog: &EncodedProgram) -> Option<(usize, String)> {
        if let Some(engine) = &mut self.engine {
            return match &self.task {
                LigerTask::Namer { .. } => None,
                LigerTask::Classifier { cls, labels } => {
                    let class = engine.classify(cls, prog);
                    let label = labels
                        .get(class)
                        .cloned()
                        .unwrap_or_else(|| format!("class{class}"));
                    Some((class, label))
                }
            };
        }
        self.task.classify_in(&mut self.ws, &self.store, prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use crate::model::LigerConfig;
    use crate::train::{train_namer, NameSample, TrainConfig};
    use crate::vocab::EOS;
    use tensor::Graph;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![EncStep {
                tree: EncTree { token, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
            }],
        }])
    }

    #[test]
    fn extract_is_deterministic_and_validates_source() {
        let vocab = Vocab::new();
        let opts = ExtractOptions::default();
        let src = "fn addOne(x: int) -> int { return x + 1; }";
        let a = extract_encoded(src, &vocab, &opts).unwrap();
        let b = extract_encoded(src, &vocab, &opts).unwrap();
        assert_eq!(a, b, "same source + seed must encode identically");
        assert!(a.total_steps() > 0);

        assert!(matches!(
            extract_encoded("fn broken(", &vocab, &opts),
            Err(ExtractError::Frontend(_))
        ));
        assert!(matches!(
            extract_encoded("fn bad(x: int) -> int { return y; }", &vocab, &opts),
            Err(ExtractError::Frontend(_))
        ));
    }

    #[test]
    fn task_embedding_matches_offline_memoized_encoder() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let mut out = OutVocab::new();
        for t in ["get", "set", "max", "min", "sum"] {
            out.add(t);
        }
        let namer = LigerNamer::new(&mut store, 12, out.len(), cfg, &mut rng);
        let samples = vec![NameSample { program: prog(1), target: vec![4, EOS] }];
        train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 3, lr: 0.02, batch_size: 1 },
            &mut rng,
        );

        let task = LigerTask::Namer { namer, out };
        let mut ws = Workspace::new();
        // Two calls on the same workspace: both must equal the reference.
        for _ in 0..2 {
            let served = task.embed_in(&mut ws, &store, &prog(1));
            let mut g = Graph::new();
            let reference = namer.model.encode(&mut g, &store, &prog(1));
            let ref_bits: Vec<u32> =
                g.value(reference.program).data().iter().map(|v| v.to_bits()).collect();
            let served_bits: Vec<u32> = served.iter().map(|v| v.to_bits()).collect();
            assert_eq!(served_bits, ref_bits);
        }
        assert!(task.name_in(&mut ws, &store, &prog(1)).is_some());
        assert!(task.classify_in(&mut ws, &store, &prog(1)).is_none());
    }
}
