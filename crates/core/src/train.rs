//! Training loops for the two downstream tasks.
//!
//! The paper trains with Adam (§6.1 Implementation) in mini-batches; here
//! gradients are accumulated over each mini-batch of per-example graphs
//! before one optimizer step — numerically the same thing at reproduction
//! scale.
//!
//! Mini-batches are data-parallel: each example's forward/backward runs as
//! an independent task over a shared `&ParamStore`, fanned out with
//! [`par::par_map_ordered_with`]. The main thread then folds losses and
//! gradients back **in example order** before the single Adam step, so the
//! trained parameters are bitwise identical for any `LIGER_THREADS`
//! setting — see DESIGN.md's determinism contract.
//!
//! Each worker owns a persistent [`Workspace`] that survives across
//! batches and epochs: the graph arena and its buffer pool are recycled
//! via `Workspace::reset`, and repeated statement/state embeddings are
//! served by span replay ([`EncodeMode::Memoized`], the default). The
//! memoized path is bitwise identical to [`EncodeMode::Uncached`] — the
//! fresh-graph-per-example reference implementation kept for the
//! equivalence proptests.

use crate::decoder::NameDecoder;
use crate::encode::EncodedProgram;
use crate::model::{LigerConfig, LigerModel, Workspace};
use crate::vocab::TokenId;
use crate::LigerClassifier;
use nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::{Graph, ParamGrads, ParamStore};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Examples per optimizer step.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 8, lr: 0.01, batch_size: 8 }
    }
}

/// How training encodes each example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodeMode {
    /// Reusable per-worker arenas + embedding memoization (the fast
    /// path; bitwise identical to `Uncached`).
    #[default]
    Memoized,
    /// A fresh graph per example, no memo — the reference implementation
    /// the equivalence tests compare against.
    Uncached,
}

/// A labelled method-name example.
#[derive(Debug, Clone)]
pub struct NameSample {
    /// The encoded program.
    pub program: EncodedProgram,
    /// Target sub-token ids terminated by `<EOS>`.
    pub target: Vec<TokenId>,
}

/// A labelled classification example.
#[derive(Debug, Clone)]
pub struct ClassSample {
    /// The encoded program.
    pub program: EncodedProgram,
    /// Class label.
    pub label: usize,
}

/// LIGER configured for method-name prediction: the encoder plus the
/// attentive decoder.
#[derive(Debug, Clone, Copy)]
pub struct LigerNamer {
    /// The encoder.
    pub model: LigerModel,
    /// The decoder.
    pub decoder: NameDecoder,
}

impl LigerNamer {
    /// Registers encoder and decoder parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        out_vocab_size: usize,
        cfg: LigerConfig,
        rng: &mut R,
    ) -> LigerNamer {
        let model = LigerModel::new(store, vocab_size, cfg, rng);
        let decoder = NameDecoder::new(store, out_vocab_size, cfg.hidden, cfg.attn, rng);
        LigerNamer { model, decoder }
    }

    /// Predicts a method name (sub-token ids, no `<EOS>`).
    pub fn predict(&self, store: &ParamStore, prog: &EncodedProgram) -> Vec<TokenId> {
        let mut ws = Workspace::new();
        self.predict_in(&mut ws, store, prog)
    }

    /// [`LigerNamer::predict`] against a reusable [`Workspace`] (resets
    /// the workspace first) — the arena-reuse path for bulk evaluation.
    pub fn predict_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> Vec<TokenId> {
        ws.reset();
        let enc = self.model.encode_memo(ws, store, prog);
        self.decoder.greedy(&mut ws.graph, store, &enc, self.model.cfg.max_name_len)
    }

    /// Mean fusion attention on the static feature for one program, at the
    /// current parameters (§6.1.2's measurement).
    pub fn static_attention(&self, store: &ParamStore, prog: &EncodedProgram) -> Option<f32> {
        let mut ws = Workspace::new();
        self.static_attention_in(&mut ws, store, prog)
    }

    /// [`LigerNamer::static_attention`] against a reusable [`Workspace`]
    /// (resets the workspace first).
    pub fn static_attention_in(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> Option<f32> {
        ws.reset();
        let enc = self.model.encode_memo(ws, store, prog);
        enc.mean_static_attention()
    }
}

/// One example's contribution: (loss value, detached gradients).
type ExampleResult = (f32, ParamGrads);

/// Forward+backward for one namer example on a reusable workspace.
fn namer_example_memo(
    namer: &LigerNamer,
    ws: &mut Workspace,
    store: &ParamStore,
    sample: &NameSample,
) -> ExampleResult {
    ws.reset();
    let enc = namer.model.encode_memo(ws, store, &sample.program);
    let loss = namer.decoder.loss(&mut ws.graph, store, &enc, &sample.target);
    let loss_val = ws.graph.value(loss).item();
    let grads = ws.graph.backward_into(loss, store);
    (loss_val, grads)
}

/// Forward+backward for one namer example on a fresh graph (reference).
fn namer_example_uncached(
    namer: &LigerNamer,
    store: &ParamStore,
    sample: &NameSample,
) -> ExampleResult {
    let mut g = Graph::new();
    let enc = namer.model.encode(&mut g, store, &sample.program);
    let loss = namer.decoder.loss(&mut g, store, &enc, &sample.target);
    let loss_val = g.value(loss).item();
    let (_, grads) = g.backward_grads(loss, store);
    (loss_val, grads)
}

/// Trains a namer; returns mean training loss per epoch. Uses the
/// memoized arena-reuse path ([`EncodeMode::Memoized`]).
pub fn train_namer<R: Rng + ?Sized>(
    namer: &LigerNamer,
    store: &mut ParamStore,
    samples: &[NameSample],
    cfg: &TrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_namer_with(namer, store, samples, cfg, rng, EncodeMode::Memoized)
}

/// [`train_namer`] with an explicit [`EncodeMode`]. Both modes produce
/// bitwise-identical parameters (asserted by
/// `tests/autodiff_properties.rs`); `Uncached` exists as the reference.
pub fn train_namer_with<R: Rng + ?Sized>(
    namer: &LigerNamer,
    store: &mut ParamStore,
    samples: &[NameSample],
    cfg: &TrainConfig,
    rng: &mut R,
    mode: EncodeMode,
) -> Vec<f32> {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    // One workspace per par worker, persistent across batches and epochs:
    // after the first batch every arena take is a pool hit.
    let mut workspaces: Vec<Workspace> = Vec::new();
    for _ in 0..cfg.epochs {
        let _epoch_span = obs::span!("train.epoch");
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let _batch_span = obs::span!("train.batch");
            let batch: Vec<&NameSample> = chunk
                .iter()
                .map(|&i| &samples[i])
                .filter(|s| !s.program.traces.is_empty() && !s.target.is_empty())
                .collect();
            let shared: &ParamStore = store;
            let results = match mode {
                EncodeMode::Memoized => par::par_map_ordered_with(
                    &batch,
                    &mut workspaces,
                    Workspace::new,
                    |ws, _, sample| namer_example_memo(namer, ws, shared, sample),
                ),
                EncodeMode::Uncached => par::par_map_ordered(&batch, |_, sample| {
                    namer_example_uncached(namer, shared, sample)
                }),
            };
            for (loss_val, grads) in &results {
                total += loss_val;
                count += 1;
                store.accumulate_grads(grads);
            }
            adam.step(store);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    epoch_losses
}

/// Forward+backward for one classifier example on a reusable workspace.
fn classifier_example_memo(
    cls: &LigerClassifier,
    ws: &mut Workspace,
    store: &ParamStore,
    sample: &ClassSample,
) -> ExampleResult {
    ws.reset();
    let loss = cls.loss_memo(ws, store, &sample.program, sample.label);
    let loss_val = ws.graph.value(loss).item();
    let grads = ws.graph.backward_into(loss, store);
    (loss_val, grads)
}

/// Trains a classifier; returns mean training loss per epoch. Uses the
/// memoized arena-reuse path ([`EncodeMode::Memoized`]).
pub fn train_classifier<R: Rng + ?Sized>(
    cls: &LigerClassifier,
    store: &mut ParamStore,
    samples: &[ClassSample],
    cfg: &TrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    train_classifier_with(cls, store, samples, cfg, rng, EncodeMode::Memoized)
}

/// [`train_classifier`] with an explicit [`EncodeMode`].
pub fn train_classifier_with<R: Rng + ?Sized>(
    cls: &LigerClassifier,
    store: &mut ParamStore,
    samples: &[ClassSample],
    cfg: &TrainConfig,
    rng: &mut R,
    mode: EncodeMode,
) -> Vec<f32> {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut workspaces: Vec<Workspace> = Vec::new();
    for _ in 0..cfg.epochs {
        let _epoch_span = obs::span!("train.epoch");
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let _batch_span = obs::span!("train.batch");
            let batch: Vec<&ClassSample> = chunk
                .iter()
                .map(|&i| &samples[i])
                .filter(|s| !s.program.traces.is_empty())
                .collect();
            let shared: &ParamStore = store;
            let results = match mode {
                EncodeMode::Memoized => par::par_map_ordered_with(
                    &batch,
                    &mut workspaces,
                    Workspace::new,
                    |ws, _, sample| classifier_example_memo(cls, ws, shared, sample),
                ),
                EncodeMode::Uncached => par::par_map_ordered(&batch, |_, sample| {
                    let mut g = Graph::new();
                    let loss = cls.loss(&mut g, shared, &sample.program, sample.label);
                    let loss_val = g.value(loss).item();
                    let (_, grads) = g.backward_grads(loss, shared);
                    (loss_val, grads)
                }),
            };
            for (loss_val, grads) in &results {
                total += loss_val;
                count += 1;
                store.accumulate_grads(grads);
            }
            adam.step(store);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use crate::vocab::EOS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![EncStep {
                tree: EncTree { token, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
            }],
        }])
    }

    #[test]
    fn namer_loss_decreases() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(20);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 12, 8, cfg, &mut rng);
        let samples = vec![
            NameSample { program: prog(1), target: vec![4, EOS] },
            NameSample { program: prog(5), target: vec![5, EOS] },
        ];
        let tc = TrainConfig { epochs: 30, lr: 0.03, batch_size: 2 };
        let losses = train_namer(&namer, &mut store, &samples, &tc, &mut rng);
        assert!(losses.last().unwrap() < &losses[0], "loss did not decrease: {losses:?}");
        // Learned predictions distinguish the two programs.
        assert_eq!(namer.predict(&store, &samples[0].program), vec![4]);
        assert_eq!(namer.predict(&store, &samples[1].program), vec![5]);
    }

    #[test]
    fn classifier_loss_decreases() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
        let cls = LigerClassifier::new(&mut store, model, 2, &mut rng);
        let samples = vec![
            ClassSample { program: prog(1), label: 0 },
            ClassSample { program: prog(6), label: 1 },
        ];
        let tc = TrainConfig { epochs: 30, lr: 0.03, batch_size: 2 };
        let losses = train_classifier(&cls, &mut store, &samples, &tc, &mut rng);
        assert!(losses.last().unwrap() < &losses[0]);
        assert_eq!(cls.predict(&store, &samples[0].program), 0);
        assert_eq!(cls.predict(&store, &samples[1].program), 1);
    }

    #[test]
    fn memoized_and_uncached_training_are_bitwise_identical() {
        let build = || {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(31);
            let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
            let namer = LigerNamer::new(&mut store, 12, 8, cfg, &mut rng);
            (store, namer)
        };
        let samples = vec![
            NameSample { program: prog(1), target: vec![4, EOS] },
            NameSample { program: prog(5), target: vec![5, EOS] },
            NameSample { program: prog(2), target: vec![6, EOS] },
        ];
        let tc = TrainConfig { epochs: 3, lr: 0.02, batch_size: 2 };
        let bits = |store: &ParamStore| -> Vec<u32> {
            store.iter().flat_map(|p| p.value.data().iter().map(|v| v.to_bits())).collect()
        };

        let (mut store_m, namer) = build();
        let mut rng = StdRng::seed_from_u64(7);
        let losses_m =
            train_namer_with(&namer, &mut store_m, &samples, &tc, &mut rng, EncodeMode::Memoized);

        let (mut store_u, _) = build();
        let mut rng = StdRng::seed_from_u64(7);
        let losses_u =
            train_namer_with(&namer, &mut store_u, &samples, &tc, &mut rng, EncodeMode::Uncached);

        assert_eq!(
            losses_m.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            losses_u.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(bits(&store_m), bits(&store_u), "memoized training diverged");
    }

    #[test]
    fn empty_programs_are_skipped_not_fatal() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 12, 8, cfg, &mut rng);
        let samples = vec![NameSample { program: EncodedProgram::default(), target: vec![EOS] }];
        let losses = train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 2, lr: 0.01, batch_size: 1 },
            &mut rng,
        );
        assert_eq!(losses, vec![0.0, 0.0]);
    }
}
