//! Training loops for the two downstream tasks.
//!
//! The paper trains with Adam (§6.1 Implementation) in mini-batches; here
//! gradients are accumulated over each mini-batch of per-example graphs
//! before one optimizer step — numerically the same thing at reproduction
//! scale.
//!
//! Mini-batches are data-parallel: each example's forward/backward runs as
//! an independent task over a shared `&ParamStore` (via
//! [`Graph::backward_grads`], which returns a detached
//! [`tensor::ParamGrads`] instead of mutating the store), fanned out with
//! [`par::par_map_ordered`]. The main thread then folds losses and
//! gradients back **in example order** before the single Adam step, so the
//! trained parameters are bitwise identical for any `LIGER_THREADS`
//! setting — see DESIGN.md's determinism contract.

use crate::decoder::NameDecoder;
use crate::encode::EncodedProgram;
use crate::model::{LigerConfig, LigerModel};
use crate::vocab::TokenId;
use crate::LigerClassifier;
use nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::{Graph, ParamStore};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Examples per optimizer step.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 8, lr: 0.01, batch_size: 8 }
    }
}

/// A labelled method-name example.
#[derive(Debug, Clone)]
pub struct NameSample {
    /// The encoded program.
    pub program: EncodedProgram,
    /// Target sub-token ids terminated by `<EOS>`.
    pub target: Vec<TokenId>,
}

/// A labelled classification example.
#[derive(Debug, Clone)]
pub struct ClassSample {
    /// The encoded program.
    pub program: EncodedProgram,
    /// Class label.
    pub label: usize,
}

/// LIGER configured for method-name prediction: the encoder plus the
/// attentive decoder.
#[derive(Debug, Clone, Copy)]
pub struct LigerNamer {
    /// The encoder.
    pub model: LigerModel,
    /// The decoder.
    pub decoder: NameDecoder,
}

impl LigerNamer {
    /// Registers encoder and decoder parameters.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        out_vocab_size: usize,
        cfg: LigerConfig,
        rng: &mut R,
    ) -> LigerNamer {
        let model = LigerModel::new(store, vocab_size, cfg, rng);
        let decoder = NameDecoder::new(store, out_vocab_size, cfg.hidden, cfg.attn, rng);
        LigerNamer { model, decoder }
    }

    /// Predicts a method name (sub-token ids, no `<EOS>`).
    pub fn predict(&self, store: &ParamStore, prog: &EncodedProgram) -> Vec<TokenId> {
        let mut g = Graph::new();
        let enc = self.model.encode(&mut g, store, prog);
        self.decoder.greedy(&mut g, store, &enc, self.model.cfg.max_name_len)
    }

    /// Mean fusion attention on the static feature for one program, at the
    /// current parameters (§6.1.2's measurement).
    pub fn static_attention(&self, store: &ParamStore, prog: &EncodedProgram) -> Option<f32> {
        let mut g = Graph::new();
        let enc = self.model.encode(&mut g, store, prog);
        enc.mean_static_attention()
    }
}

/// Trains a namer; returns mean training loss per epoch.
pub fn train_namer<R: Rng + ?Sized>(
    namer: &LigerNamer,
    store: &mut ParamStore,
    samples: &[NameSample],
    cfg: &TrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let batch: Vec<&NameSample> = chunk
                .iter()
                .map(|&i| &samples[i])
                .filter(|s| !s.program.traces.is_empty() && !s.target.is_empty())
                .collect();
            let shared: &ParamStore = store;
            let results = par::par_map_ordered(&batch, |_, sample| {
                let mut g = Graph::new();
                let enc = namer.model.encode(&mut g, shared, &sample.program);
                let loss = namer.decoder.loss(&mut g, shared, &enc, &sample.target);
                let loss_val = g.value(loss).item();
                let (_, grads) = g.backward_grads(loss, shared);
                (loss_val, grads)
            });
            for (loss_val, grads) in &results {
                total += loss_val;
                count += 1;
                store.accumulate_grads(grads);
            }
            adam.step(store);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    epoch_losses
}

/// Trains a classifier; returns mean training loss per epoch.
pub fn train_classifier<R: Rng + ?Sized>(
    cls: &LigerClassifier,
    store: &mut ParamStore,
    samples: &[ClassSample],
    cfg: &TrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let batch: Vec<&ClassSample> = chunk
                .iter()
                .map(|&i| &samples[i])
                .filter(|s| !s.program.traces.is_empty())
                .collect();
            let shared: &ParamStore = store;
            let results = par::par_map_ordered(&batch, |_, sample| {
                let mut g = Graph::new();
                let loss = cls.loss(&mut g, shared, &sample.program, sample.label);
                let loss_val = g.value(loss).item();
                let (_, grads) = g.backward_grads(loss, shared);
                (loss_val, grads)
            });
            for (loss_val, grads) in &results {
                total += loss_val;
                count += 1;
                store.accumulate_grads(grads);
            }
            adam.step(store);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use crate::vocab::EOS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram {
            traces: vec![EncBlended {
                steps: vec![EncStep {
                    tree: EncTree { token, children: vec![] },
                    states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
                }],
            }],
        }
    }

    #[test]
    fn namer_loss_decreases() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(20);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 12, 8, cfg, &mut rng);
        let samples = vec![
            NameSample { program: prog(1), target: vec![4, EOS] },
            NameSample { program: prog(5), target: vec![5, EOS] },
        ];
        let tc = TrainConfig { epochs: 30, lr: 0.03, batch_size: 2 };
        let losses = train_namer(&namer, &mut store, &samples, &tc, &mut rng);
        assert!(losses.last().unwrap() < &losses[0], "loss did not decrease: {losses:?}");
        // Learned predictions distinguish the two programs.
        assert_eq!(namer.predict(&store, &samples[0].program), vec![4]);
        assert_eq!(namer.predict(&store, &samples[1].program), vec![5]);
    }

    #[test]
    fn classifier_loss_decreases() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
        let cls = LigerClassifier::new(&mut store, model, 2, &mut rng);
        let samples = vec![
            ClassSample { program: prog(1), label: 0 },
            ClassSample { program: prog(6), label: 1 },
        ];
        let tc = TrainConfig { epochs: 30, lr: 0.03, batch_size: 2 };
        let losses = train_classifier(&cls, &mut store, &samples, &tc, &mut rng);
        assert!(losses.last().unwrap() < &losses[0]);
        assert_eq!(cls.predict(&store, &samples[0].program), 0);
        assert_eq!(cls.predict(&store, &samples[1].program), 1);
    }

    #[test]
    fn empty_programs_are_skipped_not_fatal() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 12, 8, cfg, &mut rng);
        let samples = vec![NameSample { program: EncodedProgram::default(), target: vec![EOS] }];
        let losses = train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 2, lr: 0.01, batch_size: 1 },
            &mut rng,
        );
        assert_eq!(losses, vec![0.0, 0.0]);
    }
}
