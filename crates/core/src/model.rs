//! The LIGER encoder (Figure 5, §5.1.1).
//!
//! Four layers, exactly as the paper describes:
//!
//! 1. **Vocabulary embedding** — every token of 𝒟ₛ ∪ 𝒟_d has a vector.
//! 2. **Fusion** — per ordered pair θⱼ = ⟨eⱼ, Sⱼ⟩: a Child-Sum TreeLSTM
//!    embeds the statement AST (h_sta); each program state is embedded by
//!    an RNN over its variables (f₂), with object values pre-embedded by a
//!    value RNN (f₁, Equation 3); an attention network a₁ (queried by the
//!    running trace embedding Hᵉ_{j−1}) allocates weights across the
//!    feature vectors, which are combined into one step embedding h_j.
//!    At the first ordered pair weights are distributed evenly, as in the
//!    paper.
//! 3. **Executions embedding** — a third RNN (f₃) models the flow of the
//!    blended trace: Hᵉ_j = f₃(Hᵉ_{j−1}, h_j).
//! 4. **Programs embedding** — max-pooling over the per-trace embeddings
//!    Hᵉ₁ … Hᵉ_U yields the program embedding 𝓗_P.
//!
//! The ablation switches of §6.3 (no static / no dynamic / no attention)
//! are first-class configuration.

use crate::encode::{EncState, EncTree, EncVar, EncodedProgram};
use nn::{AttentionScorer, ChildSumTreeLstm, Embedding, RnnCell};
use rand::Rng;
use tensor::{Graph, ParamId, ParamStore, Tensor, VarId};

/// Which fusion-layer component to ablate (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ablation {
    /// The full blended model.
    #[default]
    Full,
    /// §6.3.1 — remove the symbolic (static) feature dimension.
    NoStatic,
    /// §6.3.2 — remove the concrete (dynamic) feature dimension.
    NoDynamic,
    /// §6.3.3 — remove the attention mechanism (uniform fusion weights).
    NoAttention,
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LigerConfig {
    /// Hidden size of every RNN and of the embeddings (the paper uses
    /// 100; the reproduction defaults to a laptop-friendly 24).
    pub hidden: usize,
    /// Internal width of the attention scorers.
    pub attn: usize,
    /// Maximum sub-tokens generated per method name.
    pub max_name_len: usize,
    /// Fusion ablation switch.
    pub ablation: Ablation,
}

impl Default for LigerConfig {
    fn default() -> Self {
        LigerConfig { hidden: 24, attn: 24, max_name_len: 6, ablation: Ablation::Full }
    }
}

/// The outputs of the encoder for one program.
#[derive(Debug, Clone)]
pub struct EncoderOutput {
    /// The program embedding 𝓗_P.
    pub program: VarId,
    /// The flow states Hᵉ_{i,j} for every trace i and step j — the
    /// decoder's attention memory.
    pub flow: Vec<Vec<VarId>>,
    /// The fusion attention weight given to the static feature at each
    /// step (empty under `NoStatic`/`NoDynamic`); feeds the §6.1.2
    /// attention-weight analysis.
    pub static_attention: Vec<f32>,
}

impl EncoderOutput {
    /// All flow states flattened (what the decoder attends over).
    pub fn all_flow_states(&self) -> Vec<VarId> {
        self.flow.iter().flatten().copied().collect()
    }

    /// Mean fusion attention on the static dimension, if measured.
    pub fn mean_static_attention(&self) -> Option<f32> {
        if self.static_attention.is_empty() {
            None
        } else {
            Some(self.static_attention.iter().sum::<f32>() / self.static_attention.len() as f32)
        }
    }
}

/// The LIGER encoder.
#[derive(Debug, Clone, Copy)]
pub struct LigerModel {
    /// Hyperparameters.
    pub cfg: LigerConfig,
    emb: Embedding,
    tree: ChildSumTreeLstm,
    f1: RnnCell,
    f2: RnnCell,
    f3: RnnCell,
    a1: AttentionScorer,
}

impl LigerModel {
    /// Registers all encoder parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        cfg: LigerConfig,
        rng: &mut R,
    ) -> LigerModel {
        let h = cfg.hidden;
        LigerModel {
            cfg,
            emb: Embedding::new(store, "liger.emb", vocab_size, h, rng),
            tree: ChildSumTreeLstm::new(store, "liger.tree", h, h, rng),
            f1: RnnCell::new(store, "liger.f1", h, h, rng),
            f2: RnnCell::new(store, "liger.f2", h, h, rng),
            f3: RnnCell::new(store, "liger.f3", h, h, rng),
            a1: AttentionScorer::new(store, "liger.a1", h, h, cfg.attn, rng),
        }
    }

    /// The token-embedding table (shared by tests and introspection).
    pub fn embedding(&self) -> &Embedding {
        &self.emb
    }

    /// All encoder parameter ids.
    pub fn params(&self) -> Vec<ParamId> {
        let mut out = vec![self.emb.param()];
        out.extend(self.tree.params());
        out.extend(self.f1.params());
        out.extend(self.f2.params());
        out.extend(self.f3.params());
        out.extend(self.a1.params());
        out
    }

    /// Embeds a statement AST with the TreeLSTM, returning the root's
    /// hidden state h_sta.
    pub fn embed_tree(&self, g: &mut Graph, store: &ParamStore, tree: &EncTree) -> VarId {
        let state = self.embed_tree_rec(g, store, tree);
        state.h
    }

    fn embed_tree_rec(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        tree: &EncTree,
    ) -> nn::LstmState {
        let children: Vec<nn::LstmState> =
            tree.children.iter().map(|c| self.embed_tree_rec(g, store, c)).collect();
        let x = self.emb.lookup(g, store, tree.token);
        self.tree.node(g, store, x, &children)
    }

    /// Embeds one program state: per-variable embeddings (f₁ for objects,
    /// direct for primitives) threaded through the state RNN f₂.
    pub fn embed_state(&self, g: &mut Graph, store: &ParamStore, state: &EncState) -> VarId {
        let var_vecs: Vec<VarId> = state
            .vars
            .iter()
            .map(|v| match v {
                EncVar::Primitive(t) => self.emb.lookup(g, store, *t),
                EncVar::Object(ts) => {
                    let xs = self.emb.lookup_seq(g, store, ts);
                    self.f1.encode(g, store, &xs)
                }
            })
            .collect();
        self.f2.encode(g, store, &var_vecs)
    }

    /// Encodes a whole program (all blended traces) per Figure 5.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, prog: &EncodedProgram) -> EncoderOutput {
        let mut flow: Vec<Vec<VarId>> = Vec::new();
        let mut trace_embeddings: Vec<VarId> = Vec::new();
        let mut static_attention: Vec<f32> = Vec::new();

        for blended in &prog.traces {
            if blended.steps.is_empty() {
                continue;
            }
            let mut h_prev = self.f3.zero_state(g);
            let mut states = Vec::with_capacity(blended.steps.len());
            for (j, step) in blended.steps.iter().enumerate() {
                let mut features: Vec<VarId> = Vec::new();
                let has_static = self.cfg.ablation != Ablation::NoStatic;
                if has_static {
                    features.push(self.embed_tree(g, store, &step.tree));
                }
                if self.cfg.ablation != Ablation::NoDynamic {
                    for s in &step.states {
                        features.push(self.embed_state(g, store, s));
                    }
                }
                debug_assert!(!features.is_empty(), "fusion layer needs at least one feature");

                let h_j = if features.len() == 1 {
                    if has_static && self.cfg.ablation != Ablation::NoDynamic {
                        static_attention.push(1.0);
                    }
                    features[0]
                } else if j == 0 || self.cfg.ablation == Ablation::NoAttention {
                    // Even weights: first ordered pair (paper §5.1.1) or the
                    // no-attention ablation (§6.3.3).
                    let w = 1.0 / features.len() as f32;
                    let sum = g.sum_vecs(&features);
                    if has_static {
                        static_attention.push(w);
                    }
                    g.scale(sum, w)
                } else {
                    let (ctx, weights) =
                        self.a1.attend(g, store, h_prev, &features, None);
                    if has_static {
                        static_attention.push(g.value(weights).data()[0]);
                    }
                    ctx
                };
                h_prev = self.f3.step(g, store, h_j, h_prev);
                states.push(h_prev);
            }
            trace_embeddings
                .push(*states.last().expect("non-empty trace has a final state"));
            flow.push(states);
        }

        let program = if trace_embeddings.is_empty() {
            g.input(Tensor::zeros(self.cfg.hidden, 1))
        } else {
            g.max_pool(&trace_embeddings)
        };
        EncoderOutput { program, flow, static_attention }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncStep};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn leaf(token: usize) -> EncTree {
        EncTree { token, children: Vec::new() }
    }

    fn tiny_program(n_traces: usize, n_steps: usize, n_states: usize) -> EncodedProgram {
        let step = EncStep {
            tree: EncTree { token: 1, children: vec![leaf(2), leaf(3)] },
            states: (0..n_states)
                .map(|k| EncState {
                    vars: vec![EncVar::Primitive(4 + k), EncVar::Object(vec![2, 3])],
                })
                .collect(),
        };
        EncodedProgram {
            traces: (0..n_traces)
                .map(|_| EncBlended { steps: vec![step.clone(); n_steps] })
                .collect(),
        }
    }

    fn model(ablation: Ablation) -> (ParamStore, LigerModel) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = LigerConfig { hidden: 6, attn: 6, ablation, ..LigerConfig::default() };
        let m = LigerModel::new(&mut store, 10, cfg, &mut rng);
        (store, m)
    }

    #[test]
    fn encode_shapes() {
        let (store, m) = model(Ablation::Full);
        let prog = tiny_program(3, 4, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert_eq!(g.value(out.program).rows(), 6);
        assert_eq!(out.flow.len(), 3);
        assert_eq!(out.flow[0].len(), 4);
        assert_eq!(out.all_flow_states().len(), 12);
        // Static attention measured for steps 2..4 of each trace (step 1
        // uses even weights but still reports it) = 4 per trace.
        assert_eq!(out.static_attention.len(), 12);
    }

    #[test]
    fn fusion_weights_are_probabilities() {
        let (store, m) = model(Ablation::Full);
        let prog = tiny_program(1, 5, 3);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        for &w in &out.static_attention {
            assert!((0.0..=1.0).contains(&w), "weight {w} out of range");
        }
        assert!(out.mean_static_attention().is_some());
    }

    #[test]
    fn no_static_reports_no_static_attention() {
        let (store, m) = model(Ablation::NoStatic);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert!(out.static_attention.is_empty());
        assert!(out.mean_static_attention().is_none());
    }

    #[test]
    fn no_dynamic_uses_full_static_weight() {
        let (store, m) = model(Ablation::NoDynamic);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        // Single feature per step: no attention weights recorded.
        assert!(out.static_attention.is_empty());
        assert_eq!(g.value(out.program).rows(), 6);
    }

    #[test]
    fn no_attention_uses_uniform_weights() {
        let (store, m) = model(Ablation::NoAttention);
        let prog = tiny_program(1, 4, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        // 3 features per step (1 static + 2 dynamic) → weight 1/3 always.
        for &w in &out.static_attention {
            assert!((w - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_program_encodes_to_zero() {
        let (store, m) = model(Ablation::Full);
        let prog = EncodedProgram::default();
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert_eq!(g.value(out.program).data(), &[0.0; 6]);
        assert!(out.all_flow_states().is_empty());
    }

    #[test]
    fn gradients_flow_through_full_encoder() {
        let (mut store, m) = model(Ablation::Full);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        let loss = g.cross_entropy(out.program, 0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0, "no gradient reached the parameters");
    }
}
