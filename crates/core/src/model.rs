//! The LIGER encoder (Figure 5, §5.1.1).
//!
//! Four layers, exactly as the paper describes:
//!
//! 1. **Vocabulary embedding** — every token of 𝒟ₛ ∪ 𝒟_d has a vector.
//! 2. **Fusion** — per ordered pair θⱼ = ⟨eⱼ, Sⱼ⟩: a Child-Sum TreeLSTM
//!    embeds the statement AST (h_sta); each program state is embedded by
//!    an RNN over its variables (f₂), with object values pre-embedded by a
//!    value RNN (f₁, Equation 3); an attention network a₁ (queried by the
//!    running trace embedding Hᵉ_{j−1}) allocates weights across the
//!    feature vectors, which are combined into one step embedding h_j.
//!    At the first ordered pair weights are distributed evenly, as in the
//!    paper.
//! 3. **Executions embedding** — a third RNN (f₃) models the flow of the
//!    blended trace: Hᵉ_j = f₃(Hᵉ_{j−1}, h_j).
//! 4. **Programs embedding** — max-pooling over the per-trace embeddings
//!    Hᵉ₁ … Hᵉ_U yields the program embedding 𝓗_P.
//!
//! The ablation switches of §6.3 (no static / no dynamic / no attention)
//! are first-class configuration.
//!
//! ## Embedding memoization
//!
//! Within one forward pass the same interned statement tree is embedded
//! once per blended trace (U times) and recurring states once per
//! occurrence. [`LigerModel::encode_memo`] eliminates that recomputation:
//! the first occurrence of an interned id runs normally, the second runs
//! normally while its graph-node span is recorded, and every later
//! occurrence replays the recorded span via `Graph::replay_span` — a
//! memcpy of ops and values instead of TreeLSTM/RNN kernel evaluations.
//! Because the replayed span is node-for-node the tape an uncached pass
//! would have pushed, forward values, gradient flow, and parameter
//! updates are **bitwise identical** to [`LigerModel::encode`]
//! (DESIGN.md §2b; proven by the equivalence tests below and the training
//! proptest in `tests/autodiff_properties.rs`).

use crate::encode::{EncPool, EncStepRef, EncodedProgram, PoolVar, StateId, TreeId};
use nn::{AttentionScorer, ChildSumTreeLstm, Embedding, RnnCell};
use rand::Rng;
use std::collections::HashMap;
use tensor::{Graph, ParamId, ParamStore, VarId};

/// Which fusion-layer component to ablate (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ablation {
    /// The full blended model.
    #[default]
    Full,
    /// §6.3.1 — remove the symbolic (static) feature dimension.
    NoStatic,
    /// §6.3.2 — remove the concrete (dynamic) feature dimension.
    NoDynamic,
    /// §6.3.3 — remove the attention mechanism (uniform fusion weights).
    NoAttention,
}

impl Ablation {
    /// Stable serialization name (used by checkpoint bundles).
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Full => "full",
            Ablation::NoStatic => "no-static",
            Ablation::NoDynamic => "no-dynamic",
            Ablation::NoAttention => "no-attention",
        }
    }

    /// Inverse of [`Ablation::name`].
    pub fn from_name(name: &str) -> Option<Ablation> {
        match name {
            "full" => Some(Ablation::Full),
            "no-static" => Some(Ablation::NoStatic),
            "no-dynamic" => Some(Ablation::NoDynamic),
            "no-attention" => Some(Ablation::NoAttention),
            _ => None,
        }
    }
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LigerConfig {
    /// Hidden size of every RNN and of the embeddings (the paper uses
    /// 100; the reproduction defaults to a laptop-friendly 24).
    pub hidden: usize,
    /// Internal width of the attention scorers.
    pub attn: usize,
    /// Maximum sub-tokens generated per method name.
    pub max_name_len: usize,
    /// Fusion ablation switch.
    pub ablation: Ablation,
}

impl Default for LigerConfig {
    fn default() -> Self {
        LigerConfig { hidden: 24, attn: 24, max_name_len: 6, ablation: Ablation::Full }
    }
}

/// The outputs of the encoder for one program.
#[derive(Debug, Clone)]
pub struct EncoderOutput {
    /// The program embedding 𝓗_P.
    pub program: VarId,
    /// The flow states Hᵉ_{i,j} for every trace i and step j — the
    /// decoder's attention memory.
    pub flow: Vec<Vec<VarId>>,
    /// The fusion attention weight given to the static feature at each
    /// step (empty under `NoStatic`/`NoDynamic`); feeds the §6.1.2
    /// attention-weight analysis.
    pub static_attention: Vec<f32>,
}

impl EncoderOutput {
    /// All flow states flattened (what the decoder attends over).
    pub fn all_flow_states(&self) -> Vec<VarId> {
        self.flow.iter().flatten().copied().collect()
    }

    /// Mean fusion attention on the static dimension, if measured.
    pub fn mean_static_attention(&self) -> Option<f32> {
        if self.static_attention.is_empty() {
            None
        } else {
            Some(self.static_attention.iter().sum::<f32>() / self.static_attention.len() as f32)
        }
    }
}

/// The LIGER encoder.
#[derive(Debug, Clone, Copy)]
pub struct LigerModel {
    /// Hyperparameters.
    pub cfg: LigerConfig,
    pub(crate) emb: Embedding,
    pub(crate) tree: ChildSumTreeLstm,
    pub(crate) f1: RnnCell,
    pub(crate) f2: RnnCell,
    pub(crate) f3: RnnCell,
    pub(crate) a1: AttentionScorer,
}

impl LigerModel {
    /// Registers all encoder parameters in `store`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        vocab_size: usize,
        cfg: LigerConfig,
        rng: &mut R,
    ) -> LigerModel {
        let h = cfg.hidden;
        LigerModel {
            cfg,
            emb: Embedding::new(store, "liger.emb", vocab_size, h, rng),
            tree: ChildSumTreeLstm::new(store, "liger.tree", h, h, rng),
            f1: RnnCell::new(store, "liger.f1", h, h, rng),
            f2: RnnCell::new(store, "liger.f2", h, h, rng),
            f3: RnnCell::new(store, "liger.f3", h, h, rng),
            a1: AttentionScorer::new(store, "liger.a1", h, h, cfg.attn, rng),
        }
    }

    /// The token-embedding table (shared by tests and introspection).
    pub fn embedding(&self) -> &Embedding {
        &self.emb
    }

    /// All encoder parameter ids.
    pub fn params(&self) -> Vec<ParamId> {
        let mut out = vec![self.emb.param()];
        out.extend(self.tree.params());
        out.extend(self.f1.params());
        out.extend(self.f2.params());
        out.extend(self.f3.params());
        out.extend(self.a1.params());
        out
    }

    /// Embeds a statement AST with the TreeLSTM, returning the root's
    /// hidden state h_sta.
    pub fn embed_tree(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        id: TreeId,
    ) -> VarId {
        let state = self.embed_tree_rec(g, store, pool, id);
        state.h
    }

    fn embed_tree_rec(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        id: TreeId,
    ) -> nn::LstmState {
        let node = pool.tree(id);
        let children: Vec<nn::LstmState> =
            node.children.iter().map(|&c| self.embed_tree_rec(g, store, pool, c)).collect();
        let x = self.emb.lookup(g, store, node.token);
        self.tree.node(g, store, x, &children)
    }

    /// Embeds one program state: per-variable embeddings (f₁ for objects,
    /// direct for primitives) threaded through the state RNN f₂.
    pub fn embed_state(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        id: StateId,
    ) -> VarId {
        let node = pool.state(id);
        let var_vecs: Vec<VarId> = node
            .vars
            .iter()
            .map(|v| match v {
                PoolVar::Primitive(t) => self.emb.lookup(g, store, *t),
                PoolVar::Object(o) => {
                    let xs = self.emb.lookup_seq(g, store, pool.object(*o));
                    self.f1.encode(g, store, &xs)
                }
            })
            .collect();
        self.f2.encode(g, store, &var_vecs)
    }

    /// Memoized [`LigerModel::embed_tree`]: occurrence 1 of an interned id
    /// computes normally, occurrence 2 computes normally while recording
    /// its node span, occurrence 3+ replays the span. Recording the
    /// *second* occurrence guarantees the span contains no
    /// first-occurrence `param_row` leaves (occurrence 1 filled the row
    /// cache), which is exactly the `Graph::replay_span` precondition —
    /// and it makes the memoized tape node-for-node identical to the
    /// uncached one.
    fn embed_tree_memo(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        id: TreeId,
        memo: Option<&mut EmbedMemo>,
    ) -> VarId {
        let _span = obs::span!("encode.tree");
        let Some(memo) = memo else {
            return self.embed_tree(g, store, pool, id);
        };
        match memo.trees.get(&id).copied() {
            Some(MemoEntry::Ready { start, len, result_rel }) => {
                obs::counter!("encode.tree_hits").inc();
                memo.replays += 1;
                let new_start = g.replay_span(start, len);
                g.var(new_start + result_rel)
            }
            Some(MemoEntry::Once) => {
                obs::counter!("encode.tree_misses").inc();
                let start = g.len();
                let h = self.embed_tree(g, store, pool, id);
                let entry = MemoEntry::Ready {
                    start,
                    len: g.len() - start,
                    result_rel: h.index() - start,
                };
                memo.trees.insert(id, entry);
                h
            }
            None => {
                obs::counter!("encode.tree_misses").inc();
                memo.trees.insert(id, MemoEntry::Once);
                self.embed_tree(g, store, pool, id)
            }
        }
    }

    /// Memoized [`LigerModel::embed_state`] (same protocol as
    /// [`LigerModel::embed_tree_memo`]).
    fn embed_state_memo(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        id: StateId,
        memo: Option<&mut EmbedMemo>,
    ) -> VarId {
        let _span = obs::span!("encode.state");
        let Some(memo) = memo else {
            return self.embed_state(g, store, pool, id);
        };
        match memo.states.get(&id).copied() {
            Some(MemoEntry::Ready { start, len, result_rel }) => {
                obs::counter!("encode.state_hits").inc();
                memo.replays += 1;
                let new_start = g.replay_span(start, len);
                g.var(new_start + result_rel)
            }
            Some(MemoEntry::Once) => {
                obs::counter!("encode.state_misses").inc();
                let start = g.len();
                let h = self.embed_state(g, store, pool, id);
                let entry = MemoEntry::Ready {
                    start,
                    len: g.len() - start,
                    result_rel: h.index() - start,
                };
                memo.states.insert(id, entry);
                h
            }
            None => {
                obs::counter!("encode.state_misses").inc();
                memo.states.insert(id, MemoEntry::Once);
                self.embed_state(g, store, pool, id)
            }
        }
    }

    /// Encodes a whole program (all blended traces) per Figure 5.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, prog: &EncodedProgram) -> EncoderOutput {
        self.encode_impl(g, store, prog, None)
    }

    /// [`LigerModel::encode`] with per-pass embedding memoization against
    /// a reusable [`Workspace`]. Produces a bitwise-identical tape — same
    /// values, same gradients — while skipping every repeated
    /// statement/state embedding. Call [`Workspace::reset`] between
    /// examples.
    pub fn encode_memo(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        prog: &EncodedProgram,
    ) -> EncoderOutput {
        let Workspace { graph, memo } = ws;
        self.encode_impl(graph, store, prog, Some(memo))
    }

    fn encode_impl(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        prog: &EncodedProgram,
        mut memo: Option<&mut EmbedMemo>,
    ) -> EncoderOutput {
        let _span = obs::span!("encode.program");
        obs::counter!("encode.programs").inc();
        let mut flow: Vec<Vec<VarId>> = Vec::new();
        let mut trace_embeddings: Vec<VarId> = Vec::new();
        let mut static_attention: Vec<f32> = Vec::new();

        for blended in &prog.traces {
            if blended.steps.is_empty() {
                continue;
            }
            let mut h_prev = self.f3.zero_state(g);
            let mut states = Vec::with_capacity(blended.steps.len());
            for (j, step) in blended.steps.iter().enumerate() {
                let h_j = self.fuse_step(
                    g,
                    store,
                    &prog.pool,
                    step,
                    h_prev,
                    j,
                    memo.as_deref_mut(),
                    &mut static_attention,
                );
                h_prev = self.f3.step(g, store, h_j, h_prev);
                states.push(h_prev);
            }
            trace_embeddings
                .push(*states.last().expect("non-empty trace has a final state"));
            flow.push(states);
        }

        let program = if trace_embeddings.is_empty() {
            g.zeros(self.cfg.hidden, 1)
        } else {
            g.max_pool(&trace_embeddings)
        };
        EncoderOutput { program, flow, static_attention }
    }

    /// The fusion layer for one ordered pair (step `j` of a blended
    /// trace): statement/state feature embeddings combined under a₁
    /// attention weights (even at `j == 0` or under ablations). Shared
    /// verbatim by the per-program and batch-major encode paths.
    #[allow(clippy::too_many_arguments)]
    fn fuse_step(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        pool: &EncPool,
        step: &EncStepRef,
        h_prev: VarId,
        j: usize,
        mut memo: Option<&mut EmbedMemo>,
        static_attention: &mut Vec<f32>,
    ) -> VarId {
        let mut features: Vec<VarId> = Vec::new();
        let has_static = self.cfg.ablation != Ablation::NoStatic;
        if has_static {
            features.push(self.embed_tree_memo(g, store, pool, step.tree, memo.as_deref_mut()));
        }
        if self.cfg.ablation != Ablation::NoDynamic {
            for &s in &step.states {
                features.push(self.embed_state_memo(g, store, pool, s, memo.as_deref_mut()));
            }
        }
        debug_assert!(!features.is_empty(), "fusion layer needs at least one feature");

        if features.len() == 1 {
            if has_static && self.cfg.ablation != Ablation::NoDynamic {
                static_attention.push(1.0);
            }
            features[0]
        } else if j == 0 || self.cfg.ablation == Ablation::NoAttention {
            // Even weights: first ordered pair (paper §5.1.1) or the
            // no-attention ablation (§6.3.3).
            let w = 1.0 / features.len() as f32;
            let sum = g.sum_vecs(&features);
            if has_static {
                static_attention.push(w);
            }
            g.scale(sum, w)
        } else {
            let (ctx, weights) = self.a1.attend(g, store, h_prev, &features, None);
            if has_static {
                static_attention.push(g.value(weights).data()[0]);
            }
            ctx
        }
    }

    /// Batch-major [`LigerModel::encode`]: encodes a whole minibatch of
    /// programs in one graph, advancing every blended trace in lockstep so
    /// that each flow step `j` runs the f₃ recurrence for *all* active
    /// traces as two fused GEMM panels (`W·X` and `V·H`) instead of
    /// per-trace matvecs.
    ///
    /// Each output row of the batched step is `tanh((W·x + V·h) + b)`
    /// with the exact per-element operation order of the fused
    /// [`RnnCell::step`] gate, so every program's embedding, flow states,
    /// and attention record are **bitwise identical** to a sequence of
    /// per-program [`LigerModel::encode_memo`] calls (forward values; the
    /// proptest in `tests/kernel_properties.rs` pins this down). Gradient
    /// accumulation order across programs *would* differ, so the batched
    /// path is forward-only: serving, eval, and benches use it; trainers
    /// keep the per-program tape.
    pub fn encode_batch(
        &self,
        ws: &mut Workspace,
        store: &ParamStore,
        progs: &[&EncodedProgram],
    ) -> Vec<EncoderOutput> {
        let _span = obs::span!("encode.batch");
        obs::counter!("encode.programs").add(progs.len() as u64);
        let g = &mut ws.graph;

        // Merge every program's pool into one batch-level pool: identical
        // statements/states across programs collapse onto one interned id,
        // so the single shared memo below replays an embedding computed
        // for program A when program B needs the same structure. The
        // replayed span is the exact tape a fresh computation would push
        // (embeddings depend only on structure + parameters), so this
        // keeps the bitwise contract while cutting cross-program
        // recomputation the per-program encoder cannot see.
        let mut pool = EncPool::new();
        let mut memo = EmbedMemo::default();

        struct Lane {
            prog: usize,
            steps: Vec<EncStepRef>,
            h: VarId,
            states: Vec<VarId>,
            attn: Vec<f32>,
        }
        let mut lanes: Vec<Lane> = Vec::new();
        for (pi, prog) in progs.iter().enumerate() {
            let (tree_map, state_map) = pool.absorb(&prog.pool);
            for blended in &prog.traces {
                if !blended.steps.is_empty() {
                    let steps = blended
                        .steps
                        .iter()
                        .map(|s| EncStepRef {
                            tree: tree_map[s.tree.0 as usize],
                            states: s.states.iter().map(|st| state_map[st.0 as usize]).collect(),
                        })
                        .collect();
                    lanes.push(Lane {
                        prog: pi,
                        steps,
                        h: self.f3.zero_state(g),
                        states: Vec::new(),
                        attn: Vec::new(),
                    });
                }
            }
        }

        let w = g.param(store, self.f3.w);
        let v = g.param(store, self.f3.v);
        let b = g.param(store, self.f3.b);
        let max_len = lanes.iter().map(|l| l.steps.len()).max().unwrap_or(0);
        let mut xs: Vec<VarId> = Vec::with_capacity(lanes.len());
        let mut hs: Vec<VarId> = Vec::with_capacity(lanes.len());
        let mut active: Vec<usize> = Vec::with_capacity(lanes.len());
        for j in 0..max_len {
            xs.clear();
            hs.clear();
            active.clear();
            for (li, lane) in lanes.iter_mut().enumerate() {
                if j >= lane.steps.len() {
                    continue;
                }
                let h_prev = lane.h;
                let step = lane.steps[j].clone();
                let h_j = self.fuse_step(
                    g,
                    store,
                    &pool,
                    &step,
                    h_prev,
                    j,
                    Some(&mut memo),
                    &mut lane.attn,
                );
                xs.push(h_j);
                hs.push(h_prev);
                active.push(li);
            }
            if active.is_empty() {
                break;
            }
            let xp = g.pack(&xs);
            let hp = g.pack(&hs);
            let wx = g.affine_batch(w, xp, None);
            let vh = g.affine_batch(v, hp, None);
            let s = g.add(wx, vh);
            let sb = g.add_rows(s, b);
            let t = g.tanh(sb);
            for (row, &li) in active.iter().enumerate() {
                let h_new = g.batch_item(t, row);
                lanes[li].h = h_new;
                lanes[li].states.push(h_new);
            }
        }

        // Reassemble per-program outputs in trace order so flow states and
        // the attention record match the per-program encode exactly.
        let mut outs: Vec<EncoderOutput> = Vec::with_capacity(progs.len());
        for pi in 0..progs.len() {
            let mut flow: Vec<Vec<VarId>> = Vec::new();
            let mut finals: Vec<VarId> = Vec::new();
            let mut static_attention: Vec<f32> = Vec::new();
            for lane in lanes.iter_mut().filter(|l| l.prog == pi) {
                finals.push(*lane.states.last().expect("non-empty lane has a final state"));
                flow.push(std::mem::take(&mut lane.states));
                static_attention.append(&mut lane.attn);
            }
            let program = if finals.is_empty() {
                g.zeros(self.cfg.hidden, 1)
            } else {
                g.max_pool(&finals)
            };
            outs.push(EncoderOutput { program, flow, static_attention });
        }
        outs
    }
}

/// One occurrence-tracking entry of an [`EmbedMemo`].
#[derive(Debug, Clone, Copy)]
enum MemoEntry {
    /// Seen once; computed normally, not yet recorded.
    Once,
    /// Seen at least twice; the recorded graph-node span of the second
    /// occurrence, ready for `Graph::replay_span`.
    Ready { start: usize, len: usize, result_rel: usize },
}

/// The per-pass embedding memo: interned-id → recorded span. Valid only
/// for the graph it was built against; [`Workspace::reset`] clears both
/// together.
#[derive(Debug, Default)]
struct EmbedMemo {
    trees: HashMap<TreeId, MemoEntry>,
    states: HashMap<StateId, MemoEntry>,
    replays: u64,
}

/// A reusable per-worker encoding arena: one long-lived [`Graph`] (whose
/// buffer pool serves each example's tensors from recycled storage) plus
/// the embedding memo keyed on interned ids. Hold one per `par` worker
/// and [`Workspace::reset`] it between examples.
#[derive(Debug, Default)]
pub struct Workspace {
    /// The graph arena; exposed so callers can read values and run
    /// backward on it.
    pub graph: Graph,
    memo: EmbedMemo,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Clears the graph (retaining arena capacity) and the embedding memo
    /// — the memo's recorded spans are positions in the cleared tape, so
    /// the two must never be reset separately.
    pub fn reset(&mut self) {
        self.graph.reset();
        self.memo.trees.clear();
        self.memo.states.clear();
    }

    /// Number of span replays served by the memo since construction (a
    /// diagnostic: each one is a skipped statement/state re-embedding).
    pub fn replays(&self) -> u64 {
        self.memo.replays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn leaf(token: usize) -> EncTree {
        EncTree { token, children: Vec::new() }
    }

    fn tiny_program(n_traces: usize, n_steps: usize, n_states: usize) -> EncodedProgram {
        let step = EncStep {
            tree: EncTree { token: 1, children: vec![leaf(2), leaf(3)] },
            states: (0..n_states)
                .map(|k| EncState {
                    vars: vec![EncVar::Primitive(4 + k), EncVar::Object(vec![2, 3])],
                })
                .collect(),
        };
        EncodedProgram::from_traces(
            (0..n_traces).map(|_| EncBlended { steps: vec![step.clone(); n_steps] }).collect(),
        )
    }

    fn model(ablation: Ablation) -> (ParamStore, LigerModel) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = LigerConfig { hidden: 6, attn: 6, ablation, ..LigerConfig::default() };
        let m = LigerModel::new(&mut store, 10, cfg, &mut rng);
        (store, m)
    }

    #[test]
    fn encode_shapes() {
        let (store, m) = model(Ablation::Full);
        let prog = tiny_program(3, 4, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert_eq!(g.value(out.program).rows(), 6);
        assert_eq!(out.flow.len(), 3);
        assert_eq!(out.flow[0].len(), 4);
        assert_eq!(out.all_flow_states().len(), 12);
        // Static attention measured for steps 2..4 of each trace (step 1
        // uses even weights but still reports it) = 4 per trace.
        assert_eq!(out.static_attention.len(), 12);
    }

    #[test]
    fn fusion_weights_are_probabilities() {
        let (store, m) = model(Ablation::Full);
        let prog = tiny_program(1, 5, 3);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        for &w in &out.static_attention {
            assert!((0.0..=1.0).contains(&w), "weight {w} out of range");
        }
        assert!(out.mean_static_attention().is_some());
    }

    #[test]
    fn no_static_reports_no_static_attention() {
        let (store, m) = model(Ablation::NoStatic);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert!(out.static_attention.is_empty());
        assert!(out.mean_static_attention().is_none());
    }

    #[test]
    fn no_dynamic_uses_full_static_weight() {
        let (store, m) = model(Ablation::NoDynamic);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        // Single feature per step: no attention weights recorded.
        assert!(out.static_attention.is_empty());
        assert_eq!(g.value(out.program).rows(), 6);
    }

    #[test]
    fn no_attention_uses_uniform_weights() {
        let (store, m) = model(Ablation::NoAttention);
        let prog = tiny_program(1, 4, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        // 3 features per step (1 static + 2 dynamic) → weight 1/3 always.
        for &w in &out.static_attention {
            assert!((w - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_program_encodes_to_zero() {
        let (store, m) = model(Ablation::Full);
        let prog = EncodedProgram::default();
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        assert_eq!(g.value(out.program).data(), &[0.0; 6]);
        assert!(out.all_flow_states().is_empty());
    }

    #[test]
    fn gradients_flow_through_full_encoder() {
        let (mut store, m) = model(Ablation::Full);
        let prog = tiny_program(2, 3, 2);
        let mut g = Graph::new();
        let out = m.encode(&mut g, &store, &prog);
        let loss = g.cross_entropy(out.program, 0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0, "no gradient reached the parameters");
    }

    #[test]
    fn memoized_encode_is_bitwise_identical_to_uncached() {
        for ablation in
            [Ablation::Full, Ablation::NoStatic, Ablation::NoDynamic, Ablation::NoAttention]
        {
            let (store, m) = model(ablation);
            // Repeated trees (3 traces of the same steps) and repeated
            // states — the memo's whole purpose.
            let prog = tiny_program(3, 4, 2);

            let mut g = Graph::new();
            let plain = m.encode(&mut g, &store, &prog);
            let plain_len = g.len();
            let (_, plain_grads) = {
                let loss = g.cross_entropy(plain.program, 0);
                g.backward_grads(loss, &store)
            };

            let mut ws = Workspace::new();
            // Two passes through the same workspace: the second exercises
            // reset() + warm arena.
            for pass in 0..2 {
                ws.reset();
                let memo = m.encode_memo(&mut ws, &store, &prog);
                assert_eq!(
                    ws.graph.len(),
                    plain_len,
                    "{ablation:?} pass {pass}: memoized tape must be node-for-node identical"
                );
                let bits = |t: &tensor::Tensor| {
                    t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                };
                assert_eq!(
                    bits(ws.graph.value(memo.program)),
                    bits(g.value(plain.program)),
                    "{ablation:?} pass {pass}: program embedding diverged"
                );
                assert_eq!(memo.static_attention, plain.static_attention);
                assert_eq!(memo.flow.len(), plain.flow.len());
                let loss = ws.graph.cross_entropy(memo.program, 0);
                let memo_grads = ws.graph.backward_into(loss, &store);
                let grad_bits = |pg: &tensor::ParamGrads| -> Vec<(usize, Vec<u32>)> {
                    pg.iter()
                        .map(|(id, t)| (id.0, t.data().iter().map(|v| v.to_bits()).collect()))
                        .collect()
                };
                assert_eq!(
                    grad_bits(&plain_grads),
                    grad_bits(&memo_grads),
                    "{ablation:?} pass {pass}: gradients diverged"
                );
            }
            // Any program with this much repetition must hit the memo.
            assert!(ws.replays() > 0, "{ablation:?}: memo never replayed");
        }
    }

    #[test]
    fn batched_encode_is_bitwise_identical_to_per_program() {
        for ablation in
            [Ablation::Full, Ablation::NoStatic, Ablation::NoDynamic, Ablation::NoAttention]
        {
            let (store, m) = model(ablation);
            // Ragged lane lengths (and one empty program) on purpose: the
            // lockstep active set shrinks as short traces finish.
            let progs = vec![
                tiny_program(3, 4, 2),
                tiny_program(1, 2, 1),
                EncodedProgram::default(),
                tiny_program(2, 6, 3),
            ];
            let bits = |t: &tensor::Tensor| {
                t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };

            let mut ws = Workspace::new();
            let mut want = Vec::new();
            for p in &progs {
                ws.reset();
                let out = m.encode_memo(&mut ws, &store, p);
                let flow_bits: Vec<Vec<Vec<u32>>> = out
                    .flow
                    .iter()
                    .map(|tr| tr.iter().map(|&h| bits(ws.graph.value(h))).collect())
                    .collect();
                want.push((
                    bits(ws.graph.value(out.program)),
                    flow_bits,
                    out.static_attention,
                ));
            }

            let mut wsb = Workspace::new();
            let refs: Vec<&EncodedProgram> = progs.iter().collect();
            let outs = m.encode_batch(&mut wsb, &store, &refs);
            assert_eq!(outs.len(), progs.len());
            for (pi, (out, (emb, flow, attn))) in outs.iter().zip(&want).enumerate() {
                assert_eq!(
                    &bits(wsb.graph.value(out.program)),
                    emb,
                    "{ablation:?} prog {pi}: program embedding diverged"
                );
                assert_eq!(&out.static_attention, attn, "{ablation:?} prog {pi}");
                let got_flow: Vec<Vec<Vec<u32>>> = out
                    .flow
                    .iter()
                    .map(|tr| tr.iter().map(|&h| bits(wsb.graph.value(h))).collect())
                    .collect();
                assert_eq!(&got_flow, flow, "{ablation:?} prog {pi}: flow states diverged");
            }
        }
    }
}
