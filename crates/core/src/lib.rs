//! # liger — blended, precise semantic program embeddings
//!
//! The primary contribution of *Blended, Precise Semantic Program
//! Embeddings* (Wang & Su, PLDI 2020), reproduced in Rust: a deep neural
//! network that learns program representations from **blended traces** —
//! symbolic traces (the statements along a program path) paired with the
//! concrete program states several executions of that path produce.
//!
//! The crate implements the full Figure 5 architecture:
//!
//! - [`Vocab`] / [`OutVocab`] — the shared input vocabulary 𝒟ₛ ∪ 𝒟_d and
//!   the method-name sub-token vocabulary,
//! - [`encode_program`] — turning [`trace::BlendedTrace`]s into the
//!   model-ready structured input,
//! - [`LigerModel`] — the four-layer encoder (vocabulary embedding →
//!   attention fusion → executions embedding → max-pooled program
//!   embedding), with the §6.3 ablation switches,
//! - [`NameDecoder`] / [`LigerNamer`] — the attentive decoder for method
//!   name prediction (§6.1),
//! - [`LigerClassifier`] — the classification head for COSET-style
//!   semantics classification (§6.2),
//! - [`train_namer`] / [`train_classifier`] — Adam training loops.
//!
//! # Examples
//!
//! Train LIGER to name a method from its traces:
//!
//! ```
//! use liger::{
//!     encode_program, program_into_vocab, EncodeOptions, LigerConfig, LigerNamer,
//!     NameSample, OutVocab, TrainConfig, Vocab,
//! };
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = minilang::parse(
//!     "fn doubleIt(x: int) -> int { x *= 2; return x; }",
//! )?;
//! // Collect traces (here: two concrete runs of the single path).
//! let traces: Vec<trace::ExecutionTrace> = [2, 9]
//!     .into_iter()
//!     .map(|x| {
//!         let inputs = vec![interp::Value::Int(x)];
//!         let run = interp::run(&program, &inputs)?;
//!         Ok(trace::ExecutionTrace::from_run(inputs, run))
//!     })
//!     .collect::<Result<_, interp::RuntimeError>>()?;
//! let blended: Vec<trace::BlendedTrace> = trace::group_by_path(traces)
//!     .iter()
//!     .map(|g| g.blend(5))
//!     .collect::<Result<_, _>>()?;
//!
//! // Build vocabularies and the model-ready encoding.
//! let opts = EncodeOptions::default();
//! let mut vocab = Vocab::new();
//! program_into_vocab(&program, &blended, &mut vocab, &opts);
//! let mut out_vocab = OutVocab::new();
//! out_vocab.add("double");
//! out_vocab.add("it");
//! let encoded = encode_program(&program, &blended, &vocab, &opts);
//!
//! // Train.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = tensor::ParamStore::new();
//! let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
//! let namer = LigerNamer::new(&mut store, vocab.len(), out_vocab.len(), cfg, &mut rng);
//! let samples = vec![NameSample {
//!     program: encoded.clone(),
//!     target: out_vocab.encode_name("doubleIt"),
//! }];
//! let tc = TrainConfig { epochs: 25, lr: 0.05, batch_size: 1 };
//! liger::train_namer(&namer, &mut store, &samples, &tc, &mut rng);
//!
//! let predicted = out_vocab.decode_name(&namer.predict(&store, &encoded));
//! assert_eq!(predicted, vec!["double", "it"]);
//! # Ok(())
//! # }
//! ```

pub mod bundle;
pub mod canon_memo;
pub mod classifier;
pub mod decoder;
pub mod encode;
pub mod infer;
pub mod model;
pub mod qencode;
pub mod train;
pub mod vocab;

pub use bundle::{BundleError, BundleHead, ModelBundle};
pub use canon_memo::{canon_key, CanonEncoded, CanonEncoder, CanonKey};
pub use classifier::{argmax, LigerClassifier};
pub use decoder::NameDecoder;
pub use encode::{
    encode_program, encode_tree, encode_tree_in, program_into_vocab, tree_into_vocab,
    tree_into_vocab_in, EncBlended, EncBlendedRef, EncPool, EncState, EncStep, EncStepRef,
    EncTree, EncVar, EncodeOptions, EncodedProgram, ObjId, PoolVar, StateId, StateNode,
    TreeId, TreeNode,
};
pub use infer::{
    extract_encoded, vocab_from_sources, ExtractError, ExtractOptions, Inferencer, LigerTask,
};
pub use model::{Ablation, EncoderOutput, LigerConfig, LigerModel, Workspace};
pub use qencode::{cosine, FloatEngine, QuantEncoding, QuantEngine};
pub use train::{
    train_classifier, train_classifier_with, train_namer, train_namer_with, ClassSample,
    EncodeMode, LigerNamer, NameSample, TrainConfig,
};
pub use vocab::{OutVocab, TokenId, Vocab, EOS, SOS, UNK};
