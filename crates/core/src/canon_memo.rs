//! Canonical-key memoization: the semantic second key tier for the
//! encoder.
//!
//! [`extract_encoded`](crate::infer::extract_encoded) is deterministic in
//! the *source text*, so two syntactic variants of the same routine (a
//! `for` vs. its `while` desugaring, `x + x` vs. `x * 2`, renamed
//! locals…) each pay the full trace-collection + encoding cost and land
//! on different cache keys. The analysis-driven canonicalizer
//! ([`analysis::canonicalize`]) collapses exactly those variants, so its
//! stable `canon_hash` is a safe memo key: programs with equal hashes
//! have identical canonical forms, hence identical canonical source,
//! hence — by the fixed-seed determinism of the extractor — bitwise
//! identical [`EncodedProgram`]s.
//!
//! Gradients are unaffected (DESIGN.md §2i): the memo only swaps the
//! *input encoding* for a bitwise-equal one; every downstream forward or
//! backward pass sees exactly the bytes it would have seen without the
//! cache.

use crate::encode::EncodedProgram;
use crate::infer::{extract_encoded, ExtractError, ExtractOptions};
use crate::vocab::Vocab;
use std::collections::HashMap;

/// The canonical identity of one MiniLang source: the stable semantic
/// hash plus the pretty-printed canonical form it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonKey {
    /// Stable structural hash of the canonical program
    /// ([`analysis::canon_hash`]).
    pub hash: u64,
    /// Pretty-printed canonical source; re-parses to the canonical tree.
    pub source: String,
    /// Rewrites the fixpoint applied to reach the canonical form.
    pub rewrites: u64,
}

/// Parses, type-checks, and canonicalizes `source`.
///
/// # Errors
///
/// Returns [`ExtractError::Frontend`] when the source fails to parse or
/// type-check.
pub fn canon_key(source: &str) -> Result<CanonKey, ExtractError> {
    let program =
        minilang::parse(source).map_err(|e| ExtractError::Frontend(e.to_string()))?;
    minilang::typecheck(&program).map_err(|e| ExtractError::Frontend(e.to_string()))?;
    let canon = analysis::canonicalize(&program);
    Ok(CanonKey {
        hash: canon.hash,
        source: minilang::print_program(&canon.program),
        rewrites: canon.rewrites,
    })
}

/// One [`CanonEncoder::encode`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonEncoded {
    /// The canonical identity of the input source.
    pub key: CanonKey,
    /// The encoding of the *canonical* form.
    pub encoded: EncodedProgram,
    /// True when the encoding was served from the memo (a previously seen
    /// source collapsed to the same `canon_hash`).
    pub collapsed: bool,
}

/// Memoizing encoder keyed by `canon_hash`.
///
/// Each miss canonicalizes, encodes the canonical source once, and
/// stores the result; every later syntactic variant of the same routine
/// is a pure map lookup. Hits bump the `canon.hash_collapsed` counter.
#[derive(Debug, Default)]
pub struct CanonEncoder {
    cache: HashMap<u64, EncodedProgram>,
    /// Memo hits (sources that collapsed onto an already-encoded hash).
    pub hits: u64,
    /// Memo misses (distinct canonical forms encoded).
    pub misses: u64,
}

impl CanonEncoder {
    /// An empty memo.
    pub fn new() -> CanonEncoder {
        CanonEncoder::default()
    }

    /// Number of distinct canonical forms cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Canonicalizes `source` and returns the (memoized) encoding of its
    /// canonical form.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError`] when the source fails the frontend or the
    /// canonical form yields no successful executions to blend.
    pub fn encode(
        &mut self,
        source: &str,
        vocab: &Vocab,
        opts: &ExtractOptions,
    ) -> Result<CanonEncoded, ExtractError> {
        let key = canon_key(source)?;
        if let Some(encoded) = self.cache.get(&key.hash) {
            self.hits += 1;
            obs::counter!("canon.hash_collapsed").add(1);
            return Ok(CanonEncoded { encoded: encoded.clone(), key, collapsed: true });
        }
        let encoded = extract_encoded(&key.source, vocab, opts)?;
        self.misses += 1;
        self.cache.insert(key.hash, encoded.clone());
        Ok(CanonEncoded { encoded, key, collapsed: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOR_SUM: &str = "fn sumTo(n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i += 1) { s += i; }
        return s;
    }";
    const WHILE_SUM: &str = "fn total(limit: int) -> int {
        let acc: int = 0;
        let j: int = 0;
        while (j < limit) { acc += j; j += 1; }
        return acc;
    }";

    #[test]
    fn variants_share_key_and_encoding() {
        let vocab = Vocab::new();
        let opts = ExtractOptions::default();
        let mut memo = CanonEncoder::new();
        let a = memo.encode(FOR_SUM, &vocab, &opts).unwrap();
        let b = memo.encode(WHILE_SUM, &vocab, &opts).unwrap();
        assert_eq!(a.key.hash, b.key.hash, "variants must collapse");
        assert!(!a.collapsed);
        assert!(b.collapsed, "second variant must be a memo hit");
        assert_eq!(a.encoded, b.encoded, "memoized encoding must be identical");
        assert_eq!(memo.len(), 1);
        assert_eq!((memo.hits, memo.misses), (1, 1));
    }

    #[test]
    fn memoized_encoding_matches_direct_canonical_encode() {
        let vocab = Vocab::new();
        let opts = ExtractOptions::default();
        let mut memo = CanonEncoder::new();
        let got = memo.encode(FOR_SUM, &vocab, &opts).unwrap();
        let direct = extract_encoded(&got.key.source, &vocab, &opts).unwrap();
        assert_eq!(got.encoded, direct);
    }

    #[test]
    fn frontend_errors_pass_through() {
        let vocab = Vocab::new();
        let opts = ExtractOptions::default();
        let mut memo = CanonEncoder::new();
        assert!(matches!(
            memo.encode("fn broken(", &vocab, &opts),
            Err(ExtractError::Frontend(_))
        ));
        assert!(memo.is_empty());
    }

    #[test]
    fn distinct_semantics_get_distinct_entries() {
        let vocab = Vocab::new();
        let opts = ExtractOptions::default();
        let mut memo = CanonEncoder::new();
        let a = memo.encode(FOR_SUM, &vocab, &opts).unwrap();
        let b = memo
            .encode(
                "fn prodTo(n: int) -> int {
                    let s: int = 1;
                    for (let i: int = 1; i < n; i += 1) { s *= i; }
                    return s;
                }",
                &vocab,
                &opts,
            )
            .unwrap();
        assert_ne!(a.key.hash, b.key.hash);
        assert!(!b.collapsed);
        assert_eq!(memo.len(), 2);
    }
}
