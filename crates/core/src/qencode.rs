//! Tape-free inference engines: the f32 batch-major fast path and the
//! int8 runtime behind `--quantize` checkpoints (DESIGN.md §2f).
//!
//! Training needs the autodiff tape; inference does not. This module
//! mirrors the Figure 5 forward pass — TreeLSTM statement embeddings,
//! f₁/f₂ state embeddings, a₁ fusion attention, the f₃ flow recurrence,
//! max-pooling, plus the decoder/classifier heads — over plain `Vec<f32>`
//! activations. The pass is written once, generic over how weights are
//! read ([`EngineWeights`]), and instantiated twice:
//!
//! * [`FloatEngine`] reads f32 parameters and dispatches every weight
//!   product to the same blocked kernel as the tape
//!   ([`tensor::Tensor::matvec_slice`]), with the same per-element
//!   combine order at every step — so its outputs are **bitwise
//!   identical** to `LigerModel::encode` on the tape, with none of the
//!   tape's node/arena bookkeeping. [`FloatEngine::encode_batch`] runs
//!   the f₃ flow recurrence batch-major: one [`tensor::gemm_batch`]
//!   panel per weight matrix per lockstep across every live trace in
//!   the minibatch (each output row bitwise identical to the
//!   per-program matvec — the `gemm_batch` reduction-order contract).
//!
//! * [`QuantEngine`] dispatches every weight-matrix product to
//!   [`QuantMat::matvec_quant`]: the int8 codes are consumed directly
//!   (per-row absmax scales, exact i32 accumulation), never dequantized
//!   to a f32 matrix. Biases and probe vectors are f16-stored f32. Its
//!   arithmetic is *not* bitwise-equal to the f32 path — quantization is
//!   lossy by design. The contract, enforced by tests here and the
//!   quickstart accuracy gate in `scripts/ci.sh`, is behavioural: served
//!   embeddings stay within a cosine-similarity bound of f32 and task
//!   accuracy stays within one point.
//!
//! [`QuantMat::matvec_quant`]: tensor::tensor::QuantMat::matvec_quant

use crate::classifier::{argmax, LigerClassifier};
use crate::encode::{EncPool, EncStepRef, EncodedProgram, PoolVar, StateId, TreeId};
use crate::model::{Ablation, LigerModel};
use crate::train::LigerNamer;
use crate::vocab::{TokenId, EOS, SOS};
use nn::{AttentionScorer, RnnCell};
use std::collections::HashMap;
use tensor::{ParamId, ParamStore, QuantStore};

/// The encoder outputs of a tape-free engine (plain activations instead
/// of tape [`tensor::VarId`]s).
#[derive(Debug, Clone)]
pub struct QuantEncoding {
    /// The program embedding 𝓗_P.
    pub program: Vec<f32>,
    /// The flow states Hᵉ_{i,j} per trace and step (decoder memory).
    pub flow: Vec<Vec<Vec<f32>>>,
}

impl QuantEncoding {
    /// All flow states flattened, in trace order.
    pub fn all_flow_states(&self) -> Vec<Vec<f32>> {
        self.flow.iter().flatten().cloned().collect()
    }
}

/// Memo of statement/state embeddings keyed by interned pool ids. Spans
/// one engine call (or one merged minibatch pool in
/// [`FloatEngine::encode_batch`], where structurally identical trees
/// across *different* programs intern to the same id and hit).
#[derive(Default)]
struct EngineMemo {
    trees: HashMap<TreeId, (Vec<f32>, Vec<f32>)>,
    states: HashMap<StateId, Vec<f32>>,
}

/// How an engine reads model weights: the only seam between the f32 and
/// int8 instantiations of the shared forward pass.
pub trait EngineWeights {
    /// One weight product `W·x (+ b)` with this representation's kernel.
    fn matvec(&mut self, w: ParamId, x: &[f32], bias: Option<ParamId>) -> Vec<f32>;

    /// A stored vector parameter (bias or attention probe) as f32.
    fn vecf(&self, id: ParamId) -> &[f32];

    /// One embedding-table row into `out`.
    fn row(&self, table: ParamId, token: usize, out: &mut [f32]);

    /// Bumps this engine's per-program dispatch counter.
    fn count_program(&self);
}

/// f32 weights read straight from the training [`ParamStore`]; every
/// product runs the tape's blocked kernel, so the engine is bitwise
/// identical to the tape forward pass.
#[derive(Debug, Clone, Copy)]
pub struct FloatWeights<'a> {
    store: &'a ParamStore,
}

impl EngineWeights for FloatWeights<'_> {
    fn matvec(&mut self, w: ParamId, x: &[f32], bias: Option<ParamId>) -> Vec<f32> {
        obs::counter!("tensor.gemm.dispatch_f32").inc();
        let m = &self.store.get(w).value;
        let mut out = vec![0.0; m.rows()];
        m.matvec_slice(x, bias.map(|id| self.store.get(id).value.data()), &mut out);
        out
    }

    fn vecf(&self, id: ParamId) -> &[f32] {
        self.store.get(id).value.data()
    }

    fn row(&self, table: ParamId, token: usize, out: &mut [f32]) {
        let t = &self.store.get(table).value;
        let cols = t.cols();
        out.copy_from_slice(&t.data()[token * cols..(token + 1) * cols]);
    }

    fn count_program(&self) {
        obs::counter!("encode.f32_programs").inc();
    }
}

/// Quantized parameters (int8 matrices + f16-stored vectors) plus the
/// reusable input-quantization scratch.
#[derive(Debug, Clone)]
pub struct QuantWeights {
    /// Quantized parameters, indexed by the source store's [`ParamId`]s.
    pub qs: QuantStore,
    xq: Vec<i8>,
}

impl EngineWeights for QuantWeights {
    fn matvec(&mut self, w: ParamId, x: &[f32], bias: Option<ParamId>) -> Vec<f32> {
        obs::counter!("tensor.gemm.dispatch_int8").inc();
        let m = self.qs.mat(w);
        let mut out = vec![0.0; m.rows()];
        let b = bias.map(|id| self.qs.vecf(id));
        m.matvec_quant(x, &mut self.xq, b, &mut out);
        out
    }

    fn vecf(&self, id: ParamId) -> &[f32] {
        self.qs.vecf(id)
    }

    fn row(&self, table: ParamId, token: usize, out: &mut [f32]) {
        self.qs.row(table, token, out);
    }

    fn count_program(&self) {
        obs::counter!("encode.quant_programs").inc();
    }
}

/// A tape-free inference engine over some weight representation.
#[derive(Debug, Clone)]
pub struct Engine<W> {
    weights: W,
}

/// The int8 inference engine (see module docs).
pub type QuantEngine = Engine<QuantWeights>;

/// The bitwise-exact f32 inference engine (see module docs).
pub type FloatEngine<'a> = Engine<FloatWeights<'a>>;

impl QuantEngine {
    /// Quantizes a trained f32 store (quantize-at-save; the on-disk form
    /// is [`tensor::save_store_quantized`]).
    pub fn new(store: &ParamStore) -> QuantEngine {
        QuantEngine::from_store(QuantStore::quantize(store))
    }

    /// Wraps an already-loaded quantized store.
    pub fn from_store(qs: QuantStore) -> QuantEngine {
        Engine { weights: QuantWeights { qs, xq: Vec::new() } }
    }

    /// The quantized parameters this engine runs on.
    pub fn qs(&self) -> &QuantStore {
        &self.weights.qs
    }
}

impl<'a> FloatEngine<'a> {
    /// Wraps a borrowed f32 parameter store (no copies are made).
    pub fn new(store: &'a ParamStore) -> FloatEngine<'a> {
        Engine { weights: FloatWeights { store } }
    }

    /// Batch-major [`Engine::encode`] over a whole minibatch: every
    /// program's pool is merged into one (so structurally identical
    /// statements/states memoize *across* programs), every blended trace
    /// becomes a lane, and the f₃ flow recurrence advances all live lanes
    /// in lockstep — two [`tensor::gemm_batch`] panels (`W·X` and `V·H`)
    /// per step instead of per-lane matvecs. Each panel row is bitwise
    /// identical to the per-program matvec, and the combine
    /// `tanh((wx + vh) + b)` matches the fused gate's per-element order,
    /// so every returned encoding is bitwise identical to a sequence of
    /// [`Engine::encode`] (and therefore tape `encode`) calls.
    pub fn encode_batch(
        &mut self,
        model: &LigerModel,
        progs: &[&EncodedProgram],
    ) -> Vec<QuantEncoding> {
        let _span = obs::span!("encode.f32_batch");
        let hidden = model.cfg.hidden;

        struct Lane {
            prog: usize,
            steps: Vec<EncStepRef>,
            h: Vec<f32>,
            states: Vec<Vec<f32>>,
        }

        let mut pool = EncPool::new();
        let mut memo = EngineMemo::default();
        let mut lanes: Vec<Lane> = Vec::new();
        for (pi, prog) in progs.iter().enumerate() {
            self.weights.count_program();
            let (tree_map, state_map) = pool.absorb(&prog.pool);
            for trace in &prog.traces {
                if trace.steps.is_empty() {
                    continue;
                }
                let steps = trace
                    .steps
                    .iter()
                    .map(|s| EncStepRef {
                        tree: tree_map[s.tree.0 as usize],
                        states: s.states.iter().map(|st| state_map[st.0 as usize]).collect(),
                    })
                    .collect();
                lanes.push(Lane { prog: pi, steps, h: vec![0.0; hidden], states: Vec::new() });
            }
        }

        let max_len = lanes.iter().map(|l| l.steps.len()).max().unwrap_or(0);
        // Cloned out of the store so the panels below don't hold a borrow
        // of `self` across the `&mut self` fusion calls (hidden² floats).
        let w = self.weights.store.get(model.f3.w).value.clone();
        let v = self.weights.store.get(model.f3.v).value.clone();
        let b = self.weights.store.get(model.f3.b).value.data().to_vec();
        let (mut xs, mut hs) = (Vec::new(), Vec::new());
        let (mut wx, mut vh) = (Vec::new(), Vec::new());
        for j in 0..max_len {
            let live: Vec<usize> =
                (0..lanes.len()).filter(|&li| j < lanes[li].steps.len()).collect();
            // Fusion layer per lane (memoized against the merged pool),
            // packed as the rows of the step's input panel.
            xs.clear();
            hs.clear();
            for &li in &live {
                let step = lanes[li].steps[j].clone();
                let h_prev = lanes[li].h.clone();
                let h_j = self.fuse_step(model, &pool, &step, &h_prev, j, &mut memo);
                xs.extend_from_slice(&h_j);
                hs.extend_from_slice(&h_prev);
            }
            // The batched f₃ step: one fused GEMM per weight matrix for
            // every live lane at once.
            let k = live.len();
            let _gspan = obs::span!("tensor.gemm");
            obs::counter!("tensor.gemm.dispatch_f32").add(2);
            obs::counter!("tensor.gemm.batched_rows").add(2 * k as u64);
            wx.resize(k * hidden, 0.0);
            vh.resize(k * hidden, 0.0);
            tensor::gemm_batch(w.data(), hidden, hidden, &xs, k, None, &mut wx);
            tensor::gemm_batch(v.data(), hidden, hidden, &hs, k, None, &mut vh);
            for (r, &li) in live.iter().enumerate() {
                let lane = &mut lanes[li];
                for (i, hv) in lane.h.iter_mut().enumerate() {
                    *hv = ((wx[r * hidden + i] + vh[r * hidden + i]) + b[i]).tanh();
                }
                lane.states.push(lane.h.clone());
            }
        }

        // Reassemble per program: flow states per trace, program embedding
        // as the elementwise max over its traces' final states (the same
        // fold as the tape's max_pool).
        let mut out: Vec<QuantEncoding> = progs
            .iter()
            .map(|_| QuantEncoding { program: Vec::new(), flow: Vec::new() })
            .collect();
        for lane in lanes {
            let enc = &mut out[lane.prog];
            let h_final = lane.states.last().expect("non-empty lane has a final state");
            if enc.program.is_empty() {
                enc.program = h_final.clone();
            } else {
                for (o, &x) in enc.program.iter_mut().zip(h_final) {
                    if x > *o {
                        *o = x;
                    }
                }
            }
            enc.flow.push(lane.states);
        }
        for enc in &mut out {
            if enc.program.is_empty() {
                enc.program = vec![0.0; hidden];
            }
        }
        out
    }
}

impl<W: EngineWeights> Engine<W> {
    /// One weight product `W·x (+ b)`; the only way weights are read on
    /// the per-program path.
    fn matvec(&mut self, w: ParamId, x: &[f32], bias: Option<ParamId>) -> Vec<f32> {
        self.weights.matvec(w, x, bias)
    }

    /// `act(W·x + V·h + b)` — the tape-free analogue of the fused gate
    /// node, with the same per-element combine order `(wx + vh) + b`.
    fn gate(&mut self, w: ParamId, x: &[f32], v: ParamId, h: &[f32], b: ParamId, act: Act) -> Vec<f32> {
        let mut wx = self.matvec(w, x, None);
        let vh = self.matvec(v, h, None);
        let bias = self.weights.vecf(b);
        for ((o, &vhv), &bv) in wx.iter_mut().zip(&vh).zip(bias) {
            *o = act.apply((*o + vhv) + bv);
        }
        wx
    }

    /// Runs `cell` over `xs`, returning the final hidden state (zeros for
    /// an empty sequence).
    fn rnn_encode(&mut self, cell: &RnnCell, xs: &[Vec<f32>]) -> Vec<f32> {
        let mut h = vec![0.0; cell.hidden];
        for x in xs {
            h = self.gate(cell.w, x, cell.v, &h, cell.b, Act::Tanh);
        }
        h
    }

    /// Additive attention: softmax-normalised scores of `keys` against
    /// `query`, returning (context, weights). Mirrors the tape's batched
    /// `attend` kernel-for-kernel: per-key affine (bias folded into the
    /// accumulator like `gemm_batch`), tanh·probe reduction in index
    /// order, max-subtracted softmax with a division, and the weighted
    /// sum accumulated key-ascending from zeros.
    fn attend(&mut self, attn: &AttentionScorer, query: &[f32], keys: &[Vec<f32>]) -> (Vec<f32>, Vec<f32>) {
        let mut scores = Vec::with_capacity(keys.len());
        let mut cat = Vec::with_capacity(keys[0].len() + query.len());
        for k in keys {
            cat.clear();
            cat.extend_from_slice(k);
            cat.extend_from_slice(query);
            let t = self.matvec(attn.proj.w, &cat, Some(attn.proj.b));
            let probe = self.weights.vecf(attn.v);
            scores.push(t.iter().zip(probe).map(|(a, b)| a.tanh() * b).sum::<f32>());
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let mut weights: Vec<f32> = scores
            .iter()
            .map(|&s| {
                let e = (s - max).exp();
                sum += e;
                e
            })
            .collect();
        weights.iter_mut().for_each(|w| *w /= sum);
        let mut ctx = vec![0.0; keys[0].len()];
        for (w, k) in weights.iter().zip(keys) {
            for (c, &kv) in ctx.iter_mut().zip(k) {
                *c += w * kv;
            }
        }
        (ctx, weights)
    }

    /// One embedding-table row.
    fn emb_row(&self, table: ParamId, token: usize, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0; hidden];
        self.weights.row(table, token, &mut x);
        x
    }

    /// Child-Sum TreeLSTM over one interned statement AST. The child-h
    /// sum starts from the first child (like the tape's `sum_vecs`) and
    /// the cell update accumulates `c += f_k ⊙ c_k` child-ascending (like
    /// `fma_rows`), keeping the fold order bitwise-aligned with the tape.
    fn tree_rec(
        &mut self,
        model: &LigerModel,
        pool: &EncPool,
        id: TreeId,
        memo: &mut EngineMemo,
    ) -> (Vec<f32>, Vec<f32>) {
        if let Some(hc) = memo.trees.get(&id) {
            return hc.clone();
        }
        let node = pool.tree(id);
        let children: Vec<(Vec<f32>, Vec<f32>)> =
            node.children.iter().map(|&c| self.tree_rec(model, pool, c, memo)).collect();
        let x = self.emb_row(model.emb.param(), node.token, model.cfg.hidden);
        let h_sum = match children.split_first() {
            None => vec![0.0; model.cfg.hidden],
            Some(((h0, _), rest)) => {
                let mut s = h0.clone();
                for (hk, _) in rest {
                    for (sv, &v) in s.iter_mut().zip(hk) {
                        *sv += v;
                    }
                }
                s
            }
        };
        let t = &model.tree;
        let i = self.gate(t.wi, &x, t.ui, &h_sum, t.bi, Act::Sigmoid);
        let o = self.gate(t.wo, &x, t.uo, &h_sum, t.bo, Act::Sigmoid);
        let u = self.gate(t.wu, &x, t.uu, &h_sum, t.bu, Act::Tanh);
        let mut c: Vec<f32> = i.iter().zip(&u).map(|(a, b)| a * b).collect();
        for (hk, ck) in &children {
            let f = self.gate(t.wf, &x, t.uf, hk, t.bf, Act::Sigmoid);
            for ((cv, fv), &ckv) in c.iter_mut().zip(&f).zip(ck) {
                *cv += fv * ckv;
            }
        }
        let h: Vec<f32> = o.iter().zip(&c).map(|(ov, cv)| ov * cv.tanh()).collect();
        memo.trees.insert(id, (h.clone(), c.clone()));
        (h, c)
    }

    /// One interned program state: f₁ per object variable, f₂ across the
    /// variable embeddings.
    fn embed_state(
        &mut self,
        model: &LigerModel,
        pool: &EncPool,
        id: StateId,
        memo: &mut EngineMemo,
    ) -> Vec<f32> {
        if let Some(h) = memo.states.get(&id) {
            return h.clone();
        }
        let vars: Vec<Vec<f32>> = pool
            .state(id)
            .vars
            .iter()
            .map(|v| match v {
                PoolVar::Primitive(t) => self.emb_row(model.emb.param(), *t, model.cfg.hidden),
                PoolVar::Object(o) => {
                    let xs: Vec<Vec<f32>> = pool
                        .object(*o)
                        .iter()
                        .map(|&t| self.emb_row(model.emb.param(), t, model.cfg.hidden))
                        .collect();
                    self.rnn_encode(&model.f1, &xs)
                }
            })
            .collect();
        let h = self.rnn_encode(&model.f2, &vars);
        memo.states.insert(id, h.clone());
        h
    }

    /// The fusion layer for one ordered pair (mirrors
    /// `LigerModel::fuse_step`, including the even-weight rules; the even
    /// sum folds feature-ascending from the first like `sum_vecs`).
    fn fuse_step(
        &mut self,
        model: &LigerModel,
        pool: &EncPool,
        step: &EncStepRef,
        h_prev: &[f32],
        j: usize,
        memo: &mut EngineMemo,
    ) -> Vec<f32> {
        let mut features: Vec<Vec<f32>> = Vec::new();
        if model.cfg.ablation != Ablation::NoStatic {
            features.push(self.tree_rec(model, pool, step.tree, memo).0);
        }
        if model.cfg.ablation != Ablation::NoDynamic {
            for &s in &step.states {
                features.push(self.embed_state(model, pool, s, memo));
            }
        }
        if features.len() == 1 {
            features.pop().expect("one feature")
        } else if j == 0 || model.cfg.ablation == Ablation::NoAttention {
            let w = 1.0 / features.len() as f32;
            let (first, rest) = features.split_first().expect("at least one feature");
            let mut sum = first.clone();
            for f in rest {
                for (s, &v) in sum.iter_mut().zip(f) {
                    *s += v;
                }
            }
            sum.iter_mut().for_each(|v| *v *= w);
            sum
        } else {
            self.attend(&model.a1, h_prev, &features).0
        }
    }

    /// Encodes one program (all blended traces) through the tape-free
    /// Figure 5 pipeline.
    pub fn encode(&mut self, model: &LigerModel, prog: &EncodedProgram) -> QuantEncoding {
        let _span = obs::span!("encode.engine");
        self.weights.count_program();
        let mut memo = EngineMemo::default();
        let mut flow: Vec<Vec<Vec<f32>>> = Vec::new();
        let mut finals: Vec<Vec<f32>> = Vec::new();
        for blended in &prog.traces {
            if blended.steps.is_empty() {
                continue;
            }
            let mut h = vec![0.0; model.cfg.hidden];
            let mut states = Vec::with_capacity(blended.steps.len());
            for (j, step) in blended.steps.iter().enumerate() {
                let h_j = self.fuse_step(model, &prog.pool, step, &h, j, &mut memo);
                h = self.gate(model.f3.w, &h_j, model.f3.v, &h, model.f3.b, Act::Tanh);
                states.push(h.clone());
            }
            finals.push(h);
            flow.push(states);
        }
        let program = match finals.first() {
            None => vec![0.0; model.cfg.hidden],
            Some(first) => {
                // Same fold as the tape's max_pool: keep the incumbent on
                // ties, take the challenger only when strictly greater.
                let mut out = first.clone();
                for f in &finals[1..] {
                    for (o, &v) in out.iter_mut().zip(f) {
                        if v > *o {
                            *o = v;
                        }
                    }
                }
                out
            }
        };
        QuantEncoding { program, flow }
    }

    /// The program embedding 𝓗_P alone.
    pub fn embed(&mut self, model: &LigerModel, prog: &EncodedProgram) -> Vec<f32> {
        self.encode(model, prog).program
    }

    /// Greedy method-name prediction (tape-free analogue of
    /// `NameDecoder::greedy`).
    pub fn name(&mut self, namer: &LigerNamer, prog: &EncodedProgram) -> Vec<TokenId> {
        let enc = self.encode(&namer.model, prog);
        let dec = &namer.decoder;
        let memory = enc.all_flow_states();
        let hidden = namer.model.cfg.hidden;
        let mut h = enc.program;
        let mut prev = SOS;
        let mut out = Vec::new();
        for _ in 0..namer.model.cfg.max_name_len {
            let x = self.emb_row(dec.out_emb.param(), prev, hidden);
            let h_next = self.gate(dec.rnn.w, &x, dec.rnn.v, &h, dec.rnn.b, Act::Tanh);
            let ctx = if memory.is_empty() {
                vec![0.0; hidden]
            } else {
                self.attend(&dec.a2, &h_next, &memory).0
            };
            let mut cat = h_next.clone();
            cat.extend_from_slice(&ctx);
            let logits = self.matvec(dec.out.w, &cat, Some(dec.out.b));
            let (best, _) = logits
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 0 && *i != SOS)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
                .expect("output vocabulary is non-empty");
            if best == EOS {
                break;
            }
            out.push(best);
            h = h_next;
            prev = best;
        }
        out
    }

    /// Argmax class prediction (tape-free analogue of
    /// `LigerClassifier::predict`).
    pub fn classify(&mut self, cls: &LigerClassifier, prog: &EncodedProgram) -> usize {
        let enc = self.encode(&cls.model, prog);
        let logits = self.matvec(cls.head.w, &enc.program, Some(cls.head.b));
        argmax(&logits)
    }
}

/// Activation selector for the tape-free gate (same formulas as the f32
/// tape's `Act`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Act {
    Tanh,
    Sigmoid,
}

impl Act {
    fn apply(self, v: f32) -> f32 {
        match self {
            Act::Tanh => v.tanh(),
            Act::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }
}

/// Cosine similarity between two embeddings (the served-embedding drift
/// metric; 1.0 = parallel). Returns 1.0 when both are all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine of different dims");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar};
    use crate::model::{LigerConfig, Workspace};
    use crate::train::{train_namer, NameSample, TrainConfig};
    use crate::vocab::EOS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Graph;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![
                EncStep {
                    tree: EncTree {
                        token,
                        children: vec![EncTree { token: token + 1, children: vec![] }],
                    },
                    states: vec![EncState {
                        vars: vec![EncVar::Primitive(token + 2), EncVar::Object(vec![1, 2, 3])],
                    }],
                },
                EncStep {
                    tree: EncTree { token: token + 3, children: vec![] },
                    states: vec![EncState { vars: vec![EncVar::Primitive(token)] }],
                },
            ],
        }])
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn f32_engine_is_bitwise_identical_to_tape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = LigerConfig { hidden: 12, attn: 12, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 16, cfg, &mut rng);
        let mut engine = FloatEngine::new(&store);
        for t in [1usize, 4, 7] {
            let p = prog(t);
            let mut g = Graph::new();
            let tape = model.encode(&mut g, &store, &p);
            let enc = engine.encode(&model, &p);
            assert_eq!(
                bits(g.value(tape.program).data()),
                bits(&enc.program),
                "program embedding diverged for program {t}"
            );
            for (trace_t, trace_e) in tape.flow.iter().zip(&enc.flow) {
                for (s_t, s_e) in trace_t.iter().zip(trace_e) {
                    assert_eq!(bits(g.value(*s_t).data()), bits(s_e), "flow state diverged");
                }
            }
        }
    }

    #[test]
    fn f32_engine_batch_matches_per_program_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = LigerConfig { hidden: 12, attn: 12, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 24, cfg, &mut rng);
        // Ragged batch: different step counts, a shared-structure repeat,
        // and an empty program in the middle.
        let progs = [prog(1), prog(9), EncodedProgram::default(), prog(1), prog(14)];
        let refs: Vec<&EncodedProgram> = progs.iter().collect();
        let mut engine = FloatEngine::new(&store);
        let batched = engine.encode_batch(&model, &refs);
        assert_eq!(batched.len(), progs.len());
        for (p, enc_b) in progs.iter().zip(&batched) {
            let enc_p = engine.encode(&model, p);
            assert_eq!(bits(&enc_p.program), bits(&enc_b.program), "program embedding");
            assert_eq!(enc_p.flow.len(), enc_b.flow.len(), "trace count");
            for (trace_p, trace_b) in enc_p.flow.iter().zip(&enc_b.flow) {
                for (s_p, s_b) in trace_p.iter().zip(trace_b) {
                    assert_eq!(bits(s_p), bits(s_b), "flow state");
                }
            }
        }
    }

    #[test]
    fn f32_engine_namer_and_classifier_match_tape_predictions() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = LigerConfig { hidden: 10, attn: 10, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 16, 8, cfg, &mut rng);
        let samples = vec![
            NameSample { program: prog(1), target: vec![4, 5, EOS] },
            NameSample { program: prog(6), target: vec![6, EOS] },
        ];
        train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 40, lr: 0.03, batch_size: 2 },
            &mut rng,
        );
        let mut ws = Workspace::new();
        let mut engine = FloatEngine::new(&store);
        for s in &samples {
            let f32_name = namer.predict_in(&mut ws, &store, &s.program);
            assert_eq!(engine.name(&namer, &s.program), f32_name);
        }
    }

    #[test]
    fn quantized_embedding_tracks_f32_embedding() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = LigerConfig { hidden: 12, attn: 12, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 16, cfg, &mut rng);
        let mut engine = QuantEngine::new(&store);
        for t in [1usize, 4, 7] {
            let p = prog(t);
            let mut g = Graph::new();
            let f32_emb = model.encode(&mut g, &store, &p);
            let f32_vec = g.value(f32_emb.program).data().to_vec();
            let q_vec = engine.embed(&model, &p);
            let cos = cosine(&f32_vec, &q_vec);
            assert!(cos >= 0.99, "cosine {cos} below bound for program {t}");
        }
    }

    #[test]
    fn empty_program_embeds_to_zeros() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 8, cfg, &mut rng);
        let mut engine = QuantEngine::new(&store);
        assert_eq!(engine.embed(&model, &EncodedProgram::default()), vec![0.0; 6]);
    }

    #[test]
    fn quantized_namer_matches_f32_on_trained_model() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = LigerConfig { hidden: 10, attn: 10, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, 16, 8, cfg, &mut rng);
        let samples = vec![
            NameSample { program: prog(1), target: vec![4, 5, EOS] },
            NameSample { program: prog(6), target: vec![6, EOS] },
        ];
        train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 40, lr: 0.03, batch_size: 2 },
            &mut rng,
        );
        let mut engine = QuantEngine::new(&store);
        let mut ws = Workspace::new();
        for s in &samples {
            let f32_name = namer.predict_in(&mut ws, &store, &s.program);
            assert_eq!(engine.name(&namer, &s.program), f32_name);
        }
    }

    #[test]
    fn quantized_classifier_matches_f32_on_trained_model() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(24);
        let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 16, cfg, &mut rng);
        let cls = LigerClassifier::new(&mut store, model, 3, &mut rng);
        let (a, b) = (prog(1), prog(6));
        let mut adam = nn::Adam::new(0.05);
        for _ in 0..40 {
            for (p, label) in [(&a, 0usize), (&b, 2usize)] {
                let mut g = Graph::new();
                let loss = cls.loss(&mut g, &store, p, label);
                g.backward(loss, &mut store);
                adam.step(&mut store);
            }
        }
        let mut engine = QuantEngine::new(&store);
        assert_eq!(engine.classify(&cls, &a), cls.predict(&store, &a));
        assert_eq!(engine.classify(&cls, &b), cls.predict(&store, &b));
    }

    #[test]
    fn engine_roundtrips_through_quantized_checkpoint() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(25);
        let cfg = LigerConfig { hidden: 8, attn: 8, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, 12, cfg, &mut rng);
        let mut engine = QuantEngine::new(&store);
        let bytes = tensor::save_store_quantized(engine.qs());
        let mut reloaded =
            QuantEngine::from_store(tensor::load_store_quantized(&bytes).unwrap());
        let p = prog(2);
        assert_eq!(engine.embed(&model, &p), reloaded.embed(&model, &p));
    }

    #[test]
    fn cosine_handles_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }
}
