//! Model-ready program encodings.
//!
//! Bridges the trace layer (ASTs, program states) and the neural layers
//! (token ids): an [`EncodedProgram`] is the exact structured input of
//! Figure 5 — U blended traces, each a sequence of ordered pairs
//! ⟨statement-tree, {states}⟩ with every token resolved against the shared
//! vocabulary.

use crate::vocab::{TokenId, Vocab};
use minilang::{AstTree, NodeLabel, Program};
use trace::{encode_state, BlendedTrace, VarEncoding};

/// A statement AST with vocabulary-resolved labels, ready for the
/// TreeLSTM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncTree {
    /// The node's token id (a terminal token or a node-type token).
    pub token: TokenId,
    /// Ordered children.
    pub children: Vec<EncTree>,
}

impl EncTree {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(EncTree::size).sum::<usize>()
    }
}

/// One variable of one encoded program state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncVar {
    /// A primitive value: embedded directly (`h'ᵥ = xᵥ`, §5.1).
    Primitive(TokenId),
    /// An object value: the flattened `attr(v)` token sequence, embedded
    /// with the f₁ RNN (Equation 3).
    Object(Vec<TokenId>),
}

/// One encoded program state: one entry per variable slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncState {
    /// The variables in layout order.
    pub vars: Vec<EncVar>,
}

/// One ordered pair θⱼ of an encoded blended trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EncStep {
    /// The statement's labelled tree (symbolic feature dimension).
    pub tree: EncTree,
    /// The states this statement created in each concrete trace (dynamic
    /// feature dimension) — length Nε.
    pub states: Vec<EncState>,
}

/// One encoded blended trace λᵢ.
#[derive(Debug, Clone, PartialEq)]
pub struct EncBlended {
    /// The ordered pairs θ₁ … θ_{|λ|}.
    pub steps: Vec<EncStep>,
}

/// A model-ready program: U encoded blended traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EncodedProgram {
    /// The blended traces, one per path.
    pub traces: Vec<EncBlended>,
}

impl EncodedProgram {
    /// Total ordered pairs across all traces.
    pub fn total_steps(&self) -> usize {
        self.traces.iter().map(|t| t.steps.len()).sum()
    }

    /// Keeps only the first `n` traces (symbolic down-sampling helper).
    pub fn with_trace_limit(&self, n: usize) -> EncodedProgram {
        EncodedProgram { traces: self.traces.iter().take(n.max(1)).cloned().collect() }
    }
}

/// Rewrites an identifier terminal to its canonical slot token.
///
/// LIGER keys on variable *identity*, not spelling: identifiers that name
/// a program variable are replaced by `<VARk>` where `k` is the variable's
/// slot in the program's fixed layout — the same indexing the state
/// encoding uses. This is the symbolic-side canonicalization that makes
/// renamed variants produce identical symbolic traces (the paper's corpus
/// is large enough to learn spelling-invariance; at reproduction scale we
/// build it in and document the substitution in DESIGN.md §4).
fn canonical_terminal(t: &str, layout: &interp::VarLayout) -> String {
    match layout.slot(t) {
        Some(k) => format!("<VAR{k}>"),
        None => t.to_string(),
    }
}

/// Resolves a labelled AST against the vocabulary, canonicalizing
/// variable identifiers through the program's layout.
pub fn encode_tree_in(tree: &AstTree, vocab: &Vocab, layout: &interp::VarLayout) -> EncTree {
    let token = match &tree.label {
        NodeLabel::Terminal(t) => vocab.get(&canonical_terminal(t, layout)),
        NodeLabel::NonTerminal(ty) => vocab.get(ty.name()),
    };
    EncTree {
        token,
        children: tree.children.iter().map(|c| encode_tree_in(c, vocab, layout)).collect(),
    }
}

/// Resolves a labelled AST against the vocabulary without variable
/// canonicalization (used by tests and external callers without a
/// program context).
pub fn encode_tree(tree: &AstTree, vocab: &Vocab) -> EncTree {
    encode_tree_in(tree, vocab, &interp::VarLayout { names: Vec::new() })
}

/// Adds a labelled AST's keys to a growing vocabulary (canonicalized
/// through the layout like [`encode_tree_in`]).
pub fn tree_into_vocab_in(tree: &AstTree, vocab: &mut Vocab, layout: &interp::VarLayout) {
    match &tree.label {
        NodeLabel::Terminal(t) => {
            vocab.add(&canonical_terminal(t, layout));
        }
        NodeLabel::NonTerminal(ty) => {
            vocab.add(ty.name());
        }
    }
    for c in &tree.children {
        tree_into_vocab_in(c, vocab, layout);
    }
}

/// Adds a labelled AST's keys to a growing vocabulary (no
/// canonicalization).
pub fn tree_into_vocab(tree: &AstTree, vocab: &mut Vocab) {
    tree_into_vocab_in(tree, vocab, &interp::VarLayout { names: Vec::new() });
}

fn encode_var(enc: &VarEncoding, vocab: &Vocab) -> EncVar {
    match enc {
        VarEncoding::Primitive(t) => EncVar::Primitive(vocab.get(t)),
        VarEncoding::Object(ts) => EncVar::Object(ts.iter().map(|t| vocab.get(t)).collect()),
    }
}

/// Adds a state's value tokens to a growing vocabulary.
fn state_into_vocab(enc: &[VarEncoding], vocab: &mut Vocab) {
    for v in enc {
        for t in v.tokens() {
            vocab.add(t);
        }
    }
}

/// Options bounding encoded traces (compute control for the reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Maximum ordered pairs kept per blended trace. Longer traces keep
    /// their *tail* — the accumulated results and the return state are the
    /// most semantically informative part of an execution.
    pub max_steps: usize,
    /// Maximum blended traces kept per program.
    pub max_traces: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions { max_steps: 40, max_traces: 20 }
    }
}

/// Encodes blended traces against a frozen vocabulary.
pub fn encode_program(
    program: &Program,
    blended: &[BlendedTrace],
    vocab: &Vocab,
    opts: &EncodeOptions,
) -> EncodedProgram {
    let layout = interp::VarLayout::of(program);
    let traces = blended
        .iter()
        .take(opts.max_traces)
        .map(|b| {
            let trees = b.symbolic.stmt_trees(program);
            let skip = trees.len().saturating_sub(opts.max_steps);
            let steps = trees
                .iter()
                .zip(&b.steps)
                .skip(skip)
                .map(|(tree, step)| EncStep {
                    tree: encode_tree_in(tree, vocab, &layout),
                    states: step
                        .states
                        .iter()
                        .map(|s| EncState {
                            vars: encode_state(s)
                                .iter()
                                .map(|v| encode_var(v, vocab))
                                .collect(),
                        })
                        .collect(),
                })
                .collect();
            EncBlended { steps }
        })
        .collect();
    EncodedProgram { traces }
}

/// Adds every token a program's blended traces would produce to a growing
/// vocabulary (the corpus pass that builds 𝒟ₛ ∪ 𝒟_d).
pub fn program_into_vocab(
    program: &Program,
    blended: &[BlendedTrace],
    vocab: &mut Vocab,
    opts: &EncodeOptions,
) {
    for node_type in minilang::AstNodeType::ALL {
        vocab.add(node_type.name());
    }
    for t in trace::reserved_tokens() {
        vocab.add(&t);
    }
    let layout = interp::VarLayout::of(program);
    for b in blended.iter().take(opts.max_traces) {
        let skip = b.len().saturating_sub(opts.max_steps);
        for tree in b.symbolic.stmt_trees(program).iter().skip(skip) {
            tree_into_vocab_in(tree, vocab, &layout);
        }
        for step in b.steps.iter().skip(skip) {
            for s in &step.states {
                state_into_vocab(&encode_state(s), vocab);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Value;
    use trace::{group_by_path, ExecutionTrace};

    fn blended_of(src: &str, inputs: Vec<Vec<Value>>) -> (Program, Vec<BlendedTrace>) {
        let p = minilang::parse(src).unwrap();
        let traces: Vec<ExecutionTrace> = inputs
            .into_iter()
            .map(|i| {
                let run = interp::run(&p, &i).unwrap();
                ExecutionTrace::from_run(i, run)
            })
            .collect();
        let blended =
            group_by_path(traces).iter().map(|g| g.blend(5).unwrap()).collect();
        (p, blended)
    }

    const SRC: &str = "fn doubleIt(x: int) -> int { x *= 2; return x; }";

    #[test]
    fn vocabulary_covers_program_tokens() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        let mut vocab = Vocab::new();
        program_into_vocab(&p, &blended, &mut vocab, &EncodeOptions::default());
        assert!(vocab.contains("<MulAssignStmt>"));
        // The variable `x` is canonicalized to its layout slot.
        assert!(vocab.contains("<VAR0>"));
        assert!(!vocab.contains("x"));
        assert!(vocab.contains("2"));
        assert!(vocab.contains("6")); // runtime value of 3*2
        assert!(vocab.contains("<BOT>"));
    }

    #[test]
    fn encoded_shape_matches_traces() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        let mut vocab = Vocab::new();
        let opts = EncodeOptions::default();
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces.len(), 1); // single path
        assert_eq!(enc.traces[0].steps.len(), 2); // x*=2; return
        assert_eq!(enc.traces[0].steps[0].states.len(), 2); // two concrete runs
        assert!(enc.total_steps() > 0);
    }

    #[test]
    fn unknown_tokens_become_unk_not_panic() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)]]);
        // Encode against an empty vocabulary: everything is UNK (id 0).
        let vocab = Vocab::new();
        let enc = encode_program(&p, &blended, &vocab, &EncodeOptions::default());
        let first = &enc.traces[0].steps[0];
        assert_eq!(first.tree.token, 0);
    }

    #[test]
    fn step_truncation_respects_options() {
        let src = "fn sumTo(n: int) -> int {
            let s: int = 0;
            for (let i: int = 0; i < n; i += 1) { s += i; }
            return s;
        }";
        let (p, blended) = blended_of(src, vec![vec![Value::Int(50)]]);
        let mut vocab = Vocab::new();
        let opts = EncodeOptions { max_steps: 7, max_traces: 20 };
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces[0].steps.len(), 7);
    }

    #[test]
    fn trace_limit_downsamples_paths() {
        let src = "fn signOf(x: int) -> int {
            if (x > 0) { return 1; }
            if (x < 0) { return 0 - 1; }
            return 0;
        }";
        let (p, blended) = blended_of(
            src,
            vec![vec![Value::Int(1)], vec![Value::Int(-1)], vec![Value::Int(0)]],
        );
        let mut vocab = Vocab::new();
        let opts = EncodeOptions::default();
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces.len(), 3);
        assert_eq!(enc.with_trace_limit(2).traces.len(), 2);
        assert_eq!(enc.with_trace_limit(0).traces.len(), 1); // clamps to 1
    }
}
