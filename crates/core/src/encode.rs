//! Model-ready program encodings.
//!
//! Bridges the trace layer (ASTs, program states) and the neural layers
//! (token ids): an [`EncodedProgram`] is the exact structured input of
//! Figure 5 — U blended traces, each a sequence of ordered pairs
//! ⟨statement-tree, {states}⟩ with every token resolved against the shared
//! vocabulary.
//!
//! ## Hash-consing
//!
//! By Definition 2.3 one symbolic trace is paired with several concrete
//! traces, so the same statement tree appears in U blended traces and the
//! same state encoding recurs across steps (loop iterations that don't
//! touch a variable) — the encoded program is massively redundant. Instead
//! of materialising that redundancy, trees, states and object token
//! sequences are **interned** into a per-program [`EncPool`]: structurally
//! identical values get the same stable id ([`TreeId`]/[`StateId`]/
//! [`ObjId`]), so they are stored once and compared in O(1). The model
//! layer keys its per-pass embedding memo on exactly these ids
//! (DESIGN.md §2b).
//!
//! The detached builder types ([`EncTree`], [`EncState`], …) remain the
//! construction-time representation; [`EncodedProgram::from_traces`]
//! interns them.

use crate::vocab::{TokenId, Vocab};
use minilang::{AstTree, NodeLabel, Program};
use std::collections::HashMap;
use trace::{encode_state, BlendedTrace, VarEncoding};

/// A statement AST with vocabulary-resolved labels, ready for the
/// TreeLSTM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncTree {
    /// The node's token id (a terminal token or a node-type token).
    pub token: TokenId,
    /// Ordered children.
    pub children: Vec<EncTree>,
}

impl EncTree {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(EncTree::size).sum::<usize>()
    }
}

/// One variable of one encoded program state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncVar {
    /// A primitive value: embedded directly (`h'ᵥ = xᵥ`, §5.1).
    Primitive(TokenId),
    /// An object value: the flattened `attr(v)` token sequence, embedded
    /// with the f₁ RNN (Equation 3).
    Object(Vec<TokenId>),
}

/// One encoded program state: one entry per variable slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncState {
    /// The variables in layout order.
    pub vars: Vec<EncVar>,
}

/// One ordered pair θⱼ of an encoded blended trace (detached builder
/// form; interned by [`EncodedProgram::from_traces`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EncStep {
    /// The statement's labelled tree (symbolic feature dimension).
    pub tree: EncTree,
    /// The states this statement created in each concrete trace (dynamic
    /// feature dimension) — length Nε.
    pub states: Vec<EncState>,
}

/// One encoded blended trace λᵢ (detached builder form).
#[derive(Debug, Clone, PartialEq)]
pub struct EncBlended {
    /// The ordered pairs θ₁ … θ_{|λ|}.
    pub steps: Vec<EncStep>,
}

/// Stable id of an interned statement tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u32);

/// Stable id of an interned program state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// Stable id of an interned object token sequence (`attr(v)`, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// An interned tree node: a token plus interned children. Equal subtrees
/// share one [`TreeId`], so a node is O(width) to hash and compare.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TreeNode {
    /// The node's token id.
    pub token: TokenId,
    /// Ordered children, by interned id.
    pub children: Vec<TreeId>,
}

/// One variable of an interned program state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolVar {
    /// A primitive value: embedded directly (`h'ᵥ = xᵥ`, §5.1).
    Primitive(TokenId),
    /// An object value: an interned `attr(v)` token sequence, embedded
    /// with the f₁ RNN (Equation 3).
    Object(ObjId),
}

/// One interned program state: one entry per variable slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateNode {
    /// The variables in layout order.
    pub vars: Vec<PoolVar>,
}

/// The hash-consing pool of one encoded program: every distinct subtree,
/// state and object token sequence is stored exactly once, under a stable
/// dense id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EncPool {
    trees: Vec<TreeNode>,
    tree_ids: HashMap<TreeNode, TreeId>,
    states: Vec<StateNode>,
    state_ids: HashMap<StateNode, StateId>,
    objects: Vec<Vec<TokenId>>,
    object_ids: HashMap<Vec<TokenId>, ObjId>,
}

impl EncPool {
    /// An empty pool.
    pub fn new() -> EncPool {
        EncPool::default()
    }

    fn intern_node(&mut self, node: TreeNode) -> TreeId {
        if let Some(&id) = self.tree_ids.get(&node) {
            return id;
        }
        let id = TreeId(self.trees.len() as u32);
        self.trees.push(node.clone());
        self.tree_ids.insert(node, id);
        id
    }

    /// Interns a detached tree bottom-up: children first, so an id is
    /// assigned after (and therefore is always greater than) its
    /// children's ids.
    pub fn intern_tree(&mut self, tree: &EncTree) -> TreeId {
        let children = tree.children.iter().map(|c| self.intern_tree(c)).collect();
        self.intern_node(TreeNode { token: tree.token, children })
    }

    /// Interns an object token sequence.
    pub fn intern_object(&mut self, tokens: &[TokenId]) -> ObjId {
        if let Some(&id) = self.object_ids.get(tokens) {
            return id;
        }
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(tokens.to_vec());
        self.object_ids.insert(tokens.to_vec(), id);
        id
    }

    /// Interns a detached state (its object values first).
    pub fn intern_state(&mut self, state: &EncState) -> StateId {
        let vars = state
            .vars
            .iter()
            .map(|v| match v {
                EncVar::Primitive(t) => PoolVar::Primitive(*t),
                EncVar::Object(ts) => PoolVar::Object(self.intern_object(ts)),
            })
            .collect();
        self.intern_state_node(StateNode { vars })
    }

    fn intern_state_node(&mut self, node: StateNode) -> StateId {
        if let Some(&id) = self.state_ids.get(&node) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(node.clone());
        self.state_ids.insert(node, id);
        id
    }

    /// Merges another pool into this one, returning dense remap tables
    /// (`other`'s id index → the id in `self`). Structurally identical
    /// entries collapse onto one id, so a statement or state shared by
    /// two programs lands on a single pool entry — the key that lets the
    /// batch encoder memoize embeddings *across* programs, not just
    /// within one.
    pub fn absorb(&mut self, other: &EncPool) -> (Vec<TreeId>, Vec<StateId>) {
        // Tree ids are assigned bottom-up (children strictly smaller), so
        // a single increasing pass can resolve children through the map.
        let mut tree_map: Vec<TreeId> = Vec::with_capacity(other.trees.len());
        for node in &other.trees {
            let children = node.children.iter().map(|c| tree_map[c.0 as usize]).collect();
            tree_map.push(self.intern_node(TreeNode { token: node.token, children }));
        }
        let mut state_map: Vec<StateId> = Vec::with_capacity(other.states.len());
        for node in &other.states {
            let vars = node
                .vars
                .iter()
                .map(|v| match v {
                    PoolVar::Primitive(t) => PoolVar::Primitive(*t),
                    PoolVar::Object(o) => {
                        PoolVar::Object(self.intern_object(other.object(*o)))
                    }
                })
                .collect();
            state_map.push(self.intern_state_node(StateNode { vars }));
        }
        (tree_map, state_map)
    }

    /// The interned tree node behind `id`.
    pub fn tree(&self, id: TreeId) -> &TreeNode {
        &self.trees[id.0 as usize]
    }

    /// The interned state behind `id`.
    pub fn state(&self, id: StateId) -> &StateNode {
        &self.states[id.0 as usize]
    }

    /// The interned object token sequence behind `id`.
    pub fn object(&self, id: ObjId) -> &[TokenId] {
        &self.objects[id.0 as usize]
    }

    /// Number of distinct interned subtrees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of distinct interned states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct interned object sequences.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of nodes in the subtree behind `id` (each distinct shared
    /// subtree counted as often as it appears).
    pub fn tree_size(&self, id: TreeId) -> usize {
        let node = self.tree(id);
        1 + node.children.iter().map(|&c| self.tree_size(c)).sum::<usize>()
    }
}

/// One ordered pair θⱼ of an interned blended trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EncStepRef {
    /// The statement's interned tree (symbolic feature dimension).
    pub tree: TreeId,
    /// The interned states this statement created in each concrete trace
    /// (dynamic feature dimension) — length Nε.
    pub states: Vec<StateId>,
}

/// One interned blended trace λᵢ.
#[derive(Debug, Clone, PartialEq)]
pub struct EncBlendedRef {
    /// The ordered pairs θ₁ … θ_{|λ|}, by interned id.
    pub steps: Vec<EncStepRef>,
}

/// A model-ready program: U blended traces referencing one hash-consing
/// pool. Structurally identical statements and states across all traces
/// share a single pool entry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EncodedProgram {
    /// The hash-consing pool all trace ids resolve against.
    pub pool: EncPool,
    /// The blended traces, one per path.
    pub traces: Vec<EncBlendedRef>,
}

impl EncodedProgram {
    /// Interns detached blended traces into a fresh pool.
    pub fn from_traces(traces: Vec<EncBlended>) -> EncodedProgram {
        let mut pool = EncPool::new();
        let traces = traces
            .iter()
            .map(|b| EncBlendedRef {
                steps: b
                    .steps
                    .iter()
                    .map(|s| EncStepRef {
                        tree: pool.intern_tree(&s.tree),
                        states: s.states.iter().map(|st| pool.intern_state(st)).collect(),
                    })
                    .collect(),
            })
            .collect();
        EncodedProgram { pool, traces }
    }

    /// Total ordered pairs across all traces.
    pub fn total_steps(&self) -> usize {
        self.traces.iter().map(|t| t.steps.len()).sum()
    }

    /// Keeps only the first `n` traces (symbolic down-sampling helper).
    /// The pool is carried over whole; entries referenced only by dropped
    /// traces simply go unused.
    pub fn with_trace_limit(&self, n: usize) -> EncodedProgram {
        EncodedProgram {
            pool: self.pool.clone(),
            traces: self.traces.iter().take(n.max(1)).cloned().collect(),
        }
    }
}

/// Rewrites an identifier terminal to its canonical slot token.
///
/// LIGER keys on variable *identity*, not spelling: identifiers that name
/// a program variable are replaced by `<VARk>` where `k` is the variable's
/// slot in the program's fixed layout — the same indexing the state
/// encoding uses. This is the symbolic-side canonicalization that makes
/// renamed variants produce identical symbolic traces (the paper's corpus
/// is large enough to learn spelling-invariance; at reproduction scale we
/// build it in and document the substitution in DESIGN.md §4).
fn canonical_terminal(t: &str, layout: &interp::VarLayout) -> String {
    match layout.slot(t) {
        Some(k) => format!("<VAR{k}>"),
        None => t.to_string(),
    }
}

/// Resolves a labelled AST against the vocabulary, canonicalizing
/// variable identifiers through the program's layout.
pub fn encode_tree_in(tree: &AstTree, vocab: &Vocab, layout: &interp::VarLayout) -> EncTree {
    let token = match &tree.label {
        NodeLabel::Terminal(t) => vocab.get(&canonical_terminal(t, layout)),
        NodeLabel::NonTerminal(ty) => vocab.get(ty.name()),
    };
    EncTree {
        token,
        children: tree.children.iter().map(|c| encode_tree_in(c, vocab, layout)).collect(),
    }
}

/// Resolves a labelled AST against the vocabulary without variable
/// canonicalization (used by tests and external callers without a
/// program context).
pub fn encode_tree(tree: &AstTree, vocab: &Vocab) -> EncTree {
    encode_tree_in(tree, vocab, &interp::VarLayout { names: Vec::new() })
}

/// Adds a labelled AST's keys to a growing vocabulary (canonicalized
/// through the layout like [`encode_tree_in`]).
pub fn tree_into_vocab_in(tree: &AstTree, vocab: &mut Vocab, layout: &interp::VarLayout) {
    match &tree.label {
        NodeLabel::Terminal(t) => {
            vocab.add(&canonical_terminal(t, layout));
        }
        NodeLabel::NonTerminal(ty) => {
            vocab.add(ty.name());
        }
    }
    for c in &tree.children {
        tree_into_vocab_in(c, vocab, layout);
    }
}

/// Adds a labelled AST's keys to a growing vocabulary (no
/// canonicalization).
pub fn tree_into_vocab(tree: &AstTree, vocab: &mut Vocab) {
    tree_into_vocab_in(tree, vocab, &interp::VarLayout { names: Vec::new() });
}

fn encode_var(enc: &VarEncoding, vocab: &Vocab) -> EncVar {
    match enc {
        VarEncoding::Primitive(t) => EncVar::Primitive(vocab.get(t)),
        VarEncoding::Object(ts) => EncVar::Object(ts.iter().map(|t| vocab.get(t)).collect()),
    }
}

/// Adds a state's value tokens to a growing vocabulary.
fn state_into_vocab(enc: &[VarEncoding], vocab: &mut Vocab) {
    for v in enc {
        for t in v.tokens() {
            vocab.add(t);
        }
    }
}

/// Options bounding encoded traces (compute control for the reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Maximum ordered pairs kept per blended trace. Longer traces keep
    /// their *tail* — the accumulated results and the return state are the
    /// most semantically informative part of an execution.
    pub max_steps: usize,
    /// Maximum blended traces kept per program.
    pub max_traces: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions { max_steps: 40, max_traces: 20 }
    }
}

/// Encodes blended traces against a frozen vocabulary. Traces that do not
/// resolve against `program` (see [`trace::TraceError`]) are skipped.
pub fn encode_program(
    program: &Program,
    blended: &[BlendedTrace],
    vocab: &Vocab,
    opts: &EncodeOptions,
) -> EncodedProgram {
    let layout = interp::VarLayout::of(program);
    let traces = blended
        .iter()
        .take(opts.max_traces)
        .filter_map(|b| {
            let trees = b.symbolic.stmt_trees(program).ok()?;
            let skip = trees.len().saturating_sub(opts.max_steps);
            let steps = trees
                .iter()
                .zip(&b.steps)
                .skip(skip)
                .map(|(tree, step)| EncStep {
                    tree: encode_tree_in(tree, vocab, &layout),
                    states: step
                        .states
                        .iter()
                        .map(|s| EncState {
                            vars: encode_state(s)
                                .iter()
                                .map(|v| encode_var(v, vocab))
                                .collect(),
                        })
                        .collect(),
                })
                .collect();
            Some(EncBlended { steps })
        })
        .collect();
    EncodedProgram::from_traces(traces)
}

/// Adds every token a program's blended traces would produce to a growing
/// vocabulary (the corpus pass that builds 𝒟ₛ ∪ 𝒟_d).
pub fn program_into_vocab(
    program: &Program,
    blended: &[BlendedTrace],
    vocab: &mut Vocab,
    opts: &EncodeOptions,
) {
    for node_type in minilang::AstNodeType::ALL {
        vocab.add(node_type.name());
    }
    for t in trace::reserved_tokens() {
        vocab.add(&t);
    }
    let layout = interp::VarLayout::of(program);
    for b in blended.iter().take(opts.max_traces) {
        let skip = b.len().saturating_sub(opts.max_steps);
        let Ok(trees) = b.symbolic.stmt_trees(program) else { continue };
        for tree in trees.iter().skip(skip) {
            tree_into_vocab_in(tree, vocab, &layout);
        }
        for step in b.steps.iter().skip(skip) {
            for s in &step.states {
                state_into_vocab(&encode_state(s), vocab);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Value;
    use trace::{group_by_path, ExecutionTrace};

    fn blended_of(src: &str, inputs: Vec<Vec<Value>>) -> (Program, Vec<BlendedTrace>) {
        let p = minilang::parse(src).unwrap();
        let traces: Vec<ExecutionTrace> = inputs
            .into_iter()
            .map(|i| {
                let run = interp::run(&p, &i).unwrap();
                ExecutionTrace::from_run(i, run)
            })
            .collect();
        let blended =
            group_by_path(traces).iter().map(|g| g.blend(5).unwrap()).collect();
        (p, blended)
    }

    const SRC: &str = "fn doubleIt(x: int) -> int { x *= 2; return x; }";

    #[test]
    fn vocabulary_covers_program_tokens() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        let mut vocab = Vocab::new();
        program_into_vocab(&p, &blended, &mut vocab, &EncodeOptions::default());
        assert!(vocab.contains("<MulAssignStmt>"));
        // The variable `x` is canonicalized to its layout slot.
        assert!(vocab.contains("<VAR0>"));
        assert!(!vocab.contains("x"));
        assert!(vocab.contains("2"));
        assert!(vocab.contains("6")); // runtime value of 3*2
        assert!(vocab.contains("<BOT>"));
    }

    #[test]
    fn encoded_shape_matches_traces() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        let mut vocab = Vocab::new();
        let opts = EncodeOptions::default();
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces.len(), 1); // single path
        assert_eq!(enc.traces[0].steps.len(), 2); // x*=2; return
        assert_eq!(enc.traces[0].steps[0].states.len(), 2); // two concrete runs
        assert!(enc.total_steps() > 0);
    }

    #[test]
    fn unknown_tokens_become_unk_not_panic() {
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)]]);
        // Encode against an empty vocabulary: everything is UNK (id 0).
        let vocab = Vocab::new();
        let enc = encode_program(&p, &blended, &vocab, &EncodeOptions::default());
        let first = &enc.traces[0].steps[0];
        assert_eq!(enc.pool.tree(first.tree).token, 0);
    }

    #[test]
    fn identical_subtrees_are_interned_once() {
        let leaf = |t: TokenId| EncTree { token: t, children: Vec::new() };
        let stmt = EncTree { token: 9, children: vec![leaf(1), leaf(2)] };
        // The same statement in two traces and twice in one trace.
        let blended = vec![
            EncBlended {
                steps: vec![
                    EncStep { tree: stmt.clone(), states: Vec::new() },
                    EncStep { tree: stmt.clone(), states: Vec::new() },
                ],
            },
            EncBlended { steps: vec![EncStep { tree: stmt.clone(), states: Vec::new() }] },
        ];
        let enc = EncodedProgram::from_traces(blended);
        // 2 leaves + 1 statement node, not 9 nodes.
        assert_eq!(enc.pool.num_trees(), 3);
        let ids: Vec<TreeId> = enc
            .traces
            .iter()
            .flat_map(|t| t.steps.iter().map(|s| s.tree))
            .collect();
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(enc.pool.tree_size(ids[0]), 3);
        // Ids resolve back to the original structure.
        let node = enc.pool.tree(ids[0]);
        assert_eq!(node.token, 9);
        assert_eq!(node.children.len(), 2);
        assert_eq!(enc.pool.tree(node.children[0]).token, 1);
    }

    #[test]
    fn identical_states_and_objects_are_interned_once() {
        let state = EncState {
            vars: vec![EncVar::Primitive(4), EncVar::Object(vec![7, 8, 9])],
        };
        let other = EncState {
            vars: vec![EncVar::Primitive(5), EncVar::Object(vec![7, 8, 9])],
        };
        let tree = EncTree { token: 1, children: Vec::new() };
        let blended = vec![EncBlended {
            steps: vec![
                EncStep { tree: tree.clone(), states: vec![state.clone(), state.clone()] },
                EncStep { tree, states: vec![state, other] },
            ],
        }];
        let enc = EncodedProgram::from_traces(blended);
        assert_eq!(enc.pool.num_states(), 2, "duplicate states must share an id");
        assert_eq!(enc.pool.num_objects(), 1, "equal attr sequences must share an id");
        let steps = &enc.traces[0].steps;
        assert_eq!(steps[0].states[0], steps[0].states[1]);
        assert_eq!(steps[0].states[0], steps[1].states[0]);
        assert_ne!(steps[1].states[0], steps[1].states[1]);
        assert_eq!(enc.pool.object(ObjId(0)), &[7, 8, 9]);
        match enc.pool.state(steps[0].states[0]).vars[1] {
            PoolVar::Object(o) => assert_eq!(enc.pool.object(o), &[7, 8, 9]),
            PoolVar::Primitive(_) => panic!("expected object var"),
        }
    }

    #[test]
    fn real_traces_deduplicate_shared_statements() {
        // Two concrete runs of the same path: every statement tree is
        // shared, so the pool holds far fewer trees than total steps.
        let (p, blended) =
            blended_of(SRC, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        let mut vocab = Vocab::new();
        let opts = EncodeOptions::default();
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        let total_tree_nodes: usize = enc
            .traces
            .iter()
            .flat_map(|t| t.steps.iter())
            .map(|s| enc.pool.tree_size(s.tree))
            .sum();
        assert!(
            enc.pool.num_trees() < total_tree_nodes,
            "interning must deduplicate ({} unique vs {} referenced)",
            enc.pool.num_trees(),
            total_tree_nodes
        );
    }

    #[test]
    fn step_truncation_respects_options() {
        let src = "fn sumTo(n: int) -> int {
            let s: int = 0;
            for (let i: int = 0; i < n; i += 1) { s += i; }
            return s;
        }";
        let (p, blended) = blended_of(src, vec![vec![Value::Int(50)]]);
        let mut vocab = Vocab::new();
        let opts = EncodeOptions { max_steps: 7, max_traces: 20 };
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces[0].steps.len(), 7);
    }

    #[test]
    fn trace_limit_downsamples_paths() {
        let src = "fn signOf(x: int) -> int {
            if (x > 0) { return 1; }
            if (x < 0) { return 0 - 1; }
            return 0;
        }";
        let (p, blended) = blended_of(
            src,
            vec![vec![Value::Int(1)], vec![Value::Int(-1)], vec![Value::Int(0)]],
        );
        let mut vocab = Vocab::new();
        let opts = EncodeOptions::default();
        program_into_vocab(&p, &blended, &mut vocab, &opts);
        let enc = encode_program(&p, &blended, &vocab, &opts);
        assert_eq!(enc.traces.len(), 3);
        assert_eq!(enc.with_trace_limit(2).traces.len(), 2);
        assert_eq!(enc.with_trace_limit(0).traces.len(), 1); // clamps to 1
    }
}
