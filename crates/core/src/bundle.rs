//! Self-contained checkpoint bundles: everything `liger-serve` needs to
//! answer queries, in one file.
//!
//! A raw [`ParamStore`] checkpoint is not servable on its own — encoding
//! a program needs the input vocabulary, decoding a prediction needs the
//! output vocabulary (or class labels), and rebuilding the parameter
//! layout needs the architecture hyperparameters. A [`ModelBundle`] packs
//! all four:
//!
//! ```text
//! LGRB1
//! cfg <hidden> <attn> <max_name_len> <ablation>
//! vocab <n>
//! <token>            × n   (percent-escaped, id order)
//! head namer <m>     — or —  head classifier <k>
//! <token>            × m    (<label> × k)
//! params <nbytes>             — or —  qparams <nbytes>
//! <binary LGR1 parameter blob>        (<binary LGRq quantized blob>)
//! ```
//!
//! The `qparams` variant ([`ModelBundle::to_quantized_bytes`], written by
//! `--quantize` flows) stores matrices as int8 codes with per-row absmax
//! scales and vectors as f16 (`tensor::save_store_quantized`), ~4× smaller
//! than `params`. Loading it fills [`ModelBundle::qstore`] for the
//! dequantize-free [`crate::QuantEngine`] path and reconstructs a
//! dequantized f32 [`ParamStore`] so every existing consumer still works.
//!
//! The header is line-oriented text (greppable, versioned by the `LGRB1`
//! magic); the parameter payload embeds the binary checkpoint format
//! verbatim, so `tensor`'s loader — with its duplicate-name and version
//! checks — is reused unchanged.
//!
//! [`ModelBundle::instantiate`] rebuilds the model structs by re-running
//! parameter registration against a scratch store and verifying that
//! every registered name and shape matches the checkpoint. Registration
//! order is deterministic, so the rebuilt [`ParamId`]s index the loaded
//! values correctly; the verification turns any architecture mismatch
//! (wrong hidden size, wrong vocab, truncated file) into a typed error
//! instead of silent garbage.
//!
//! [`ParamId`]: tensor::ParamId

use crate::infer::LigerTask;
use crate::model::{Ablation, LigerConfig, LigerModel};
use crate::train::LigerNamer;
use crate::vocab::{OutVocab, Vocab};
use crate::LigerClassifier;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use tensor::{
    load_store_binary, load_store_quantized, save_store_binary, save_store_quantized,
    ParamStore, QuantStore,
};

/// The bundle magic / format-version line.
const BUNDLE_MAGIC: &str = "LGRB1";

/// The task head stored in a bundle.
#[derive(Debug, Clone)]
pub enum BundleHead {
    /// Method-name prediction: the output sub-token vocabulary.
    Namer(OutVocab),
    /// Semantics classification: class display labels (index = class id).
    Classifier(Vec<String>),
}

/// A self-contained trained model: hyperparameters, vocabularies, and
/// parameter values.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Architecture hyperparameters.
    pub cfg: LigerConfig,
    /// The input vocabulary 𝒟ₛ ∪ 𝒟_d.
    pub vocab: Vocab,
    /// The task head.
    pub head: BundleHead,
    /// Trained parameter values (registration order). For a quantized
    /// bundle this is the *dequantized* reconstruction, so f32-only
    /// consumers keep working.
    pub store: ParamStore,
    /// The int8/f16 parameters when this bundle was saved or loaded in
    /// quantized form — the dequantize-free inference path
    /// ([`crate::QuantEngine`]) runs on these.
    pub qstore: Option<QuantStore>,
}

/// Errors from bundle parsing or instantiation.
#[derive(Debug)]
pub enum BundleError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The bundle header is malformed.
    Parse(String),
    /// The embedded parameter blob failed to load.
    Params(tensor::LoadError),
    /// The parameters do not match the declared architecture.
    Mismatch(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle I/O error: {e}"),
            BundleError::Parse(msg) => write!(f, "malformed bundle: {msg}"),
            BundleError::Params(e) => write!(f, "bundle parameters: {e}"),
            BundleError::Mismatch(msg) => write!(f, "bundle/architecture mismatch: {msg}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> BundleError {
        BundleError::Io(e)
    }
}

impl From<tensor::LoadError> for BundleError {
    fn from(e: tensor::LoadError) -> BundleError {
        BundleError::Params(e)
    }
}

fn escape(token: &str) -> String {
    let mut out = String::new();
    for c in token.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(token: &str) -> String {
    token.replace("%0A", "\n").replace("%0D", "\r").replace("%25", "%")
}

impl ModelBundle {
    /// Packs a trained namer checkpoint.
    pub fn for_namer(
        cfg: LigerConfig,
        vocab: Vocab,
        out: OutVocab,
        store: ParamStore,
    ) -> ModelBundle {
        ModelBundle { cfg, vocab, head: BundleHead::Namer(out), store, qstore: None }
    }

    /// Packs a trained classifier checkpoint.
    pub fn for_classifier(
        cfg: LigerConfig,
        vocab: Vocab,
        labels: Vec<String>,
        store: ParamStore,
    ) -> ModelBundle {
        ModelBundle { cfg, vocab, head: BundleHead::Classifier(labels), store, qstore: None }
    }

    /// A compact fingerprint of this model: head kind, embedding
    /// width, vocabulary size, numeric path, and an FNV-1a digest of
    /// the trained parameter bytes. Two bundles that could produce
    /// different embeddings get different fingerprints, so both the
    /// embedding index (`LGRI1`) and the artifact store (`LGRS1`)
    /// refuse or miss stale entries instead of serving wrong vectors.
    /// The serve router's `model_fingerprint` delegates here.
    pub fn fingerprint(&self) -> String {
        let head = match &self.head {
            BundleHead::Namer(_) => "namer",
            BundleHead::Classifier(_) => "classifier",
        };
        let numeric = if self.qstore.is_some() { "int8" } else { "f32" };
        let h = store::hash::param_store_digest(&self.store);
        format!("{head}/h{}/v{}/{numeric}/{h:016x}", self.cfg.hidden, self.vocab.len())
    }

    /// The shared header (magic, cfg, vocabularies) without the params
    /// section.
    fn header(&self) -> String {
        let mut header = String::new();
        header.push_str(BUNDLE_MAGIC);
        header.push('\n');
        header.push_str(&format!(
            "cfg {} {} {} {}\n",
            self.cfg.hidden,
            self.cfg.attn,
            self.cfg.max_name_len,
            self.cfg.ablation.name()
        ));
        header.push_str(&format!("vocab {}\n", self.vocab.len()));
        for id in 0..self.vocab.len() {
            header.push_str(&escape(self.vocab.token(id)));
            header.push('\n');
        }
        match &self.head {
            BundleHead::Namer(out) => {
                header.push_str(&format!("head namer {}\n", out.len()));
                for id in 0..out.len() {
                    header.push_str(&escape(out.token(id)));
                    header.push('\n');
                }
            }
            BundleHead::Classifier(labels) => {
                header.push_str(&format!("head classifier {}\n", labels.len()));
                for label in labels {
                    header.push_str(&escape(label));
                    header.push('\n');
                }
            }
        }
        header
    }

    /// Serializes the bundle to its on-disk byte form (f32 `params`
    /// payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = self.header();
        let params = save_store_binary(&self.store);
        header.push_str(&format!("params {}\n", params.len()));
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(&params);
        bytes
    }

    /// Serializes the bundle with an int8/f16 `qparams` payload
    /// (quantize-at-save): matrices as per-row-absmax int8 codes, vectors
    /// as f16. ~4× smaller on disk; loads back into
    /// [`ModelBundle::qstore`] for dequantize-free inference.
    pub fn to_quantized_bytes(&self) -> Vec<u8> {
        let mut header = self.header();
        let qs = match &self.qstore {
            Some(qs) => qs.clone(),
            None => QuantStore::quantize(&self.store),
        };
        let params = save_store_quantized(&qs);
        header.push_str(&format!("qparams {}\n", params.len()));
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(&params);
        bytes
    }

    /// Parses a bundle from its on-disk byte form.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError`] on any malformed section.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelBundle, BundleError> {
        let mut pos = 0usize;
        let mut next_line = || -> Result<String, BundleError> {
            let rest = &bytes[pos..];
            let end = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| BundleError::Parse("unexpected end of header".into()))?;
            let line = std::str::from_utf8(&rest[..end])
                .map_err(|_| BundleError::Parse("non-UTF-8 header line".into()))?
                .to_string();
            pos += end + 1;
            Ok(line)
        };

        if next_line()? != BUNDLE_MAGIC {
            return Err(BundleError::Parse(format!("missing {BUNDLE_MAGIC} magic")));
        }

        let cfg_line = next_line()?;
        let mut parts = cfg_line.split_whitespace();
        let cfg = (|| {
            if parts.next()? != "cfg" {
                return None;
            }
            let hidden: usize = parts.next()?.parse().ok()?;
            let attn: usize = parts.next()?.parse().ok()?;
            let max_name_len: usize = parts.next()?.parse().ok()?;
            let ablation = Ablation::from_name(parts.next()?)?;
            Some(LigerConfig { hidden, attn, max_name_len, ablation })
        })()
        .ok_or_else(|| BundleError::Parse(format!("bad cfg line {cfg_line:?}")))?;

        let vocab_line = next_line()?;
        let n: usize = vocab_line
            .strip_prefix("vocab ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| BundleError::Parse(format!("bad vocab line {vocab_line:?}")))?;
        let mut vocab = Vocab::new();
        for i in 0..n {
            let token = unescape(&next_line()?);
            if i == 0 {
                if token != crate::vocab::UNK {
                    return Err(BundleError::Parse("vocab slot 0 must be <UNK>".into()));
                }
                continue; // Vocab::new() already holds <UNK> at id 0.
            }
            let id = vocab.add(&token);
            if id != i {
                return Err(BundleError::Parse(format!("duplicate vocab token {token:?}")));
            }
        }
        if vocab.len() != n.max(1) {
            return Err(BundleError::Parse("vocab length mismatch".into()));
        }

        let head_line = next_line()?;
        let head = if let Some(rest) = head_line.strip_prefix("head namer ") {
            let m: usize = rest
                .parse()
                .map_err(|_| BundleError::Parse(format!("bad head line {head_line:?}")))?;
            let mut out = OutVocab::new();
            for i in 0..m {
                let token = unescape(&next_line()?);
                if i < 3 {
                    if out.token(i) != token {
                        return Err(BundleError::Parse(format!(
                            "out-vocab slot {i} must be {:?}, found {token:?}",
                            out.token(i)
                        )));
                    }
                    continue; // reserved <UNK>/<SOS>/<EOS> pre-exist.
                }
                if out.add(&token) != i {
                    return Err(BundleError::Parse(format!(
                        "duplicate out-vocab token {token:?}"
                    )));
                }
            }
            BundleHead::Namer(out)
        } else if let Some(rest) = head_line.strip_prefix("head classifier ") {
            let k: usize = rest
                .parse()
                .map_err(|_| BundleError::Parse(format!("bad head line {head_line:?}")))?;
            let mut labels = Vec::with_capacity(k);
            for _ in 0..k {
                labels.push(unescape(&next_line()?));
            }
            BundleHead::Classifier(labels)
        } else {
            return Err(BundleError::Parse(format!("bad head line {head_line:?}")));
        };

        let params_line = next_line()?;
        let (quantized, declared) = if let Some(rest) = params_line.strip_prefix("params ") {
            (false, rest)
        } else if let Some(rest) = params_line.strip_prefix("qparams ") {
            (true, rest)
        } else {
            return Err(BundleError::Parse(format!("bad params line {params_line:?}")));
        };
        let nbytes: usize = declared
            .parse()
            .map_err(|_| BundleError::Parse(format!("bad params line {params_line:?}")))?;
        if bytes.len() - pos != nbytes {
            return Err(BundleError::Parse(format!(
                "params blob is {} bytes, header declares {nbytes}",
                bytes.len() - pos
            )));
        }
        let (store, qstore) = if quantized {
            let qs = load_store_quantized(&bytes[pos..])?;
            (qs.dequantize(), Some(qs))
        } else {
            (load_store_binary(&bytes[pos..])?, None)
        };
        Ok(ModelBundle { cfg, vocab, head, store, qstore })
    }

    /// Writes the bundle to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying filesystem error.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Writes the bundle to `path` with the int8/f16 `qparams` payload.
    ///
    /// # Errors
    ///
    /// Returns the underlying filesystem error.
    pub fn save_quantized_to_path(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_quantized_bytes())
    }

    /// Reads a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError`] on I/O failure or malformed contents.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<ModelBundle, BundleError> {
        ModelBundle::from_bytes(&std::fs::read(path)?)
    }

    /// Rebuilds the model structs for this bundle and returns them with a
    /// copy of the trained parameters.
    ///
    /// Parameter registration is deterministic, so re-running it against
    /// a scratch store recreates the exact [`tensor::ParamId`] layout the
    /// checkpoint was trained with; every registered name and shape is
    /// verified against the checkpoint before the trained values are
    /// handed out.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Mismatch`] when the checkpoint does not fit
    /// the declared architecture.
    pub fn instantiate(&self) -> Result<(LigerTask, ParamStore), BundleError> {
        // The RNG only fills initial values that are immediately replaced
        // by the checkpoint; any seed works.
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = ParamStore::new();
        let task = match &self.head {
            BundleHead::Namer(out) => {
                let namer =
                    LigerNamer::new(&mut scratch, self.vocab.len(), out.len(), self.cfg, &mut rng);
                LigerTask::Namer { namer, out: out.clone() }
            }
            BundleHead::Classifier(labels) => {
                let model = LigerModel::new(&mut scratch, self.vocab.len(), self.cfg, &mut rng);
                let cls = LigerClassifier::new(&mut scratch, model, labels.len(), &mut rng);
                LigerTask::Classifier { cls, labels: labels.clone() }
            }
        };
        if scratch.len() != self.store.len() {
            return Err(BundleError::Mismatch(format!(
                "architecture registers {} parameters, checkpoint holds {}",
                scratch.len(),
                self.store.len()
            )));
        }
        for i in 0..scratch.len() {
            let id = tensor::ParamId(i);
            let (want, got) = (scratch.get(id), self.store.get(id));
            if want.name != got.name
                || want.value.rows() != got.value.rows()
                || want.value.cols() != got.value.cols()
            {
                return Err(BundleError::Mismatch(format!(
                    "parameter {i}: expected {} [{}×{}], checkpoint has {} [{}×{}]",
                    want.name,
                    want.value.rows(),
                    want.value.cols(),
                    got.name,
                    got.value.rows(),
                    got.value.cols()
                )));
            }
        }
        Ok((task, self.store.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram};
    use crate::train::{train_namer, NameSample, TrainConfig};
    use crate::vocab::EOS;

    fn prog(token: usize) -> EncodedProgram {
        EncodedProgram::from_traces(vec![EncBlended {
            steps: vec![EncStep {
                tree: EncTree { token, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(token + 1)] }],
            }],
        }])
    }

    fn trained_namer_bundle() -> (ModelBundle, Vec<crate::vocab::TokenId>) {
        let mut vocab = Vocab::new();
        for t in ["a", "b", "c", "d", "e", "f %odd", "g"] {
            vocab.add(t);
        }
        let mut out = OutVocab::new();
        out.add("find");
        out.add("max");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = LigerConfig { hidden: 6, attn: 6, ..LigerConfig::default() };
        let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
        let samples = vec![NameSample { program: prog(1), target: vec![3, EOS] }];
        train_namer(
            &namer,
            &mut store,
            &samples,
            &TrainConfig { epochs: 5, lr: 0.03, batch_size: 1 },
            &mut rng,
        );
        let prediction = namer.predict(&store, &prog(1));
        (ModelBundle::for_namer(cfg, vocab, out, store), prediction)
    }

    #[test]
    fn namer_bundle_roundtrips_with_identical_predictions() {
        let (bundle, want) = trained_namer_bundle();
        let loaded = ModelBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(loaded.vocab.len(), bundle.vocab.len());
        assert_eq!(loaded.vocab.token(6), "f %odd");
        assert_eq!(loaded.cfg, bundle.cfg);

        let (task, store) = loaded.instantiate().unwrap();
        let LigerTask::Namer { namer, .. } = &task else { panic!("expected namer") };
        assert_eq!(namer.predict(&store, &prog(1)), want);

        // Values are bitwise the trained ones.
        for i in 0..store.len() {
            let id = tensor::ParamId(i);
            assert_eq!(store.get(id).value, bundle.store.get(id).value);
        }
    }

    #[test]
    fn classifier_bundle_roundtrips() {
        let mut vocab = Vocab::new();
        vocab.add("tok");
        vocab.add("one");
        vocab.add("two");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = LigerConfig { hidden: 5, attn: 5, ..LigerConfig::default() };
        let model = LigerModel::new(&mut store, vocab.len(), cfg, &mut rng);
        let _cls = LigerClassifier::new(&mut store, model, 3, &mut rng);
        let bundle = ModelBundle::for_classifier(
            cfg,
            vocab,
            vec!["sort".into(), "search line 2\n".into(), "gcd".into()],
            store,
        );
        let loaded = ModelBundle::from_bytes(&bundle.to_bytes()).unwrap();
        let BundleHead::Classifier(labels) = &loaded.head else { panic!("expected classifier") };
        assert_eq!(labels[1], "search line 2\n");
        let (task, store) = loaded.instantiate().unwrap();
        let mut ws = crate::model::Workspace::new();
        let (class, label) = task.classify_in(&mut ws, &store, &prog(1)).unwrap();
        assert!(class < 3);
        assert!(!label.is_empty());
    }

    #[test]
    fn corrupt_bundles_are_rejected_with_typed_errors() {
        let (bundle, _) = trained_namer_bundle();
        let bytes = bundle.to_bytes();

        assert!(matches!(
            ModelBundle::from_bytes(b"WRONG\n").unwrap_err(),
            BundleError::Parse(_)
        ));
        // Truncated params blob.
        assert!(matches!(
            ModelBundle::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err(),
            BundleError::Parse(_)
        ));

        // Architecture mismatch: declare a different hidden size.
        let mut wrong = bundle.clone();
        wrong.cfg.hidden = 7;
        let reparsed = ModelBundle::from_bytes(&wrong.to_bytes()).unwrap();
        assert!(matches!(reparsed.instantiate().unwrap_err(), BundleError::Mismatch(_)));
    }

    #[test]
    fn quantized_bundle_roundtrips_and_matches_direct_quantization() {
        let (bundle, _) = trained_namer_bundle();
        let qbytes = bundle.to_quantized_bytes();
        // The parameter payload shrinks several-fold (int8 codes vs the
        // widened-f64 records; record framing keeps this tiny test model
        // under the asymptotic ~8×).
        let qblob = tensor::save_store_quantized(&tensor::QuantStore::quantize(&bundle.store));
        let fblob = tensor::save_store_binary(&bundle.store);
        assert!(qblob.len() * 3 < fblob.len(), "{} vs {}", qblob.len(), fblob.len());

        let loaded = ModelBundle::from_bytes(&qbytes).unwrap();
        let qs = loaded.qstore.as_ref().expect("quantized bundle fills qstore");
        assert_eq!(*qs, tensor::QuantStore::quantize(&bundle.store));

        // The dequantized store instantiates the same architecture.
        let (task, store) = loaded.instantiate().unwrap();
        let LigerTask::Namer { namer, .. } = &task else { panic!("expected namer") };

        // Quantized greedy naming through the engine agrees with the
        // dequantized-store prediction run through the f32 tape.
        let mut engine = crate::QuantEngine::from_store(qs.clone());
        let mut ws = crate::model::Workspace::new();
        assert_eq!(engine.name(namer, &prog(1)), namer.predict_in(&mut ws, &store, &prog(1)));
    }

    #[test]
    fn quantized_bundle_embeddings_stay_close_to_f32() {
        let (bundle, _) = trained_namer_bundle();
        let loaded = ModelBundle::from_bytes(&bundle.to_quantized_bytes()).unwrap();
        let (task, _) = loaded.instantiate().unwrap();
        let LigerTask::Namer { namer, .. } = &task else { panic!("expected namer") };

        let (ftask, fstore) = bundle.instantiate().unwrap();
        let mut ws = crate::model::Workspace::new();
        let f32_emb = ftask.embed_in(&mut ws, &fstore, &prog(1));

        let mut engine =
            crate::QuantEngine::from_store(loaded.qstore.clone().expect("qstore"));
        let q_emb = engine.embed(&namer.model, &prog(1));
        assert!(crate::qencode::cosine(&f32_emb, &q_emb) >= 0.99);
    }

    #[test]
    fn bundle_survives_a_file_roundtrip() {
        let (bundle, want) = trained_namer_bundle();
        let path = std::env::temp_dir()
            .join(format!("liger_bundle_test_{}.lgrb", std::process::id()));
        bundle.save_to_path(&path).unwrap();
        let loaded = ModelBundle::load_from_path(&path).unwrap();
        let (task, store) = loaded.instantiate().unwrap();
        let LigerTask::Namer { namer, .. } = &task else { panic!("expected namer") };
        assert_eq!(namer.predict(&store, &prog(1)), want);
        std::fs::remove_file(&path).ok();
    }
}
