//! AST node types and the labelled-tree view used by the neural layers.
//!
//! The paper's vocabulary 𝒟ₛ contains "all tokens extracted from all
//! programs … together with all AST (non-leaf) node types" (§5.1). This
//! module defines that node-type enumeration ([`AstNodeType`]) and a
//! language-agnostic tree shape ([`AstTree`]) which the fusion layer's
//! Child-Sum TreeLSTM consumes: non-terminal nodes are labelled by node
//! type, terminal nodes by a surface token.

use crate::ast::*;

/// The non-leaf AST node types of MiniLang — the node-type half of 𝒟ₛ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AstNodeType {
    /// A `let` declaration.
    LetStmt,
    /// A plain `=` assignment.
    AssignStmt,
    /// A `+=` assignment.
    AddAssignStmt,
    /// A `-=` assignment.
    SubAssignStmt,
    /// A `*=` assignment.
    MulAssignStmt,
    /// A branch guard that evaluated to true (from `if`/`while`/`for`).
    GuardTrue,
    /// A branch guard that evaluated to false.
    GuardFalse,
    /// A `return` statement.
    ReturnStmt,
    /// A `break` statement.
    BreakStmt,
    /// A `continue` statement.
    ContinueStmt,
    /// A binary expression (the operator token is a terminal child).
    BinaryExpr,
    /// A unary expression.
    UnaryExpr,
    /// An indexing expression `a[i]`.
    IndexExpr,
    /// A builtin call.
    CallExpr,
    /// An array literal.
    ArrayLitExpr,
    /// An lvalue indexing target `a[i] = ..`.
    IndexTarget,
    /// A whole function declaration (root of [`program_tree`]).
    FunctionDecl,
    /// A formal parameter.
    ParamDecl,
    /// A `{ ... }` block.
    BlockNode,
    /// An `if` statement (full statement, not a trace guard).
    IfStmt,
    /// A `while` statement.
    WhileStmt,
    /// A `for` statement.
    ForStmt,
}

impl AstNodeType {
    /// All node types, for vocabulary construction.
    pub const ALL: [AstNodeType; 22] = [
        AstNodeType::LetStmt,
        AstNodeType::AssignStmt,
        AstNodeType::AddAssignStmt,
        AstNodeType::SubAssignStmt,
        AstNodeType::MulAssignStmt,
        AstNodeType::GuardTrue,
        AstNodeType::GuardFalse,
        AstNodeType::ReturnStmt,
        AstNodeType::BreakStmt,
        AstNodeType::ContinueStmt,
        AstNodeType::BinaryExpr,
        AstNodeType::UnaryExpr,
        AstNodeType::IndexExpr,
        AstNodeType::CallExpr,
        AstNodeType::ArrayLitExpr,
        AstNodeType::IndexTarget,
        AstNodeType::FunctionDecl,
        AstNodeType::ParamDecl,
        AstNodeType::BlockNode,
        AstNodeType::IfStmt,
        AstNodeType::WhileStmt,
        AstNodeType::ForStmt,
    ];

    /// A stable textual name (used as the vocabulary key).
    pub fn name(self) -> &'static str {
        match self {
            AstNodeType::LetStmt => "<LetStmt>",
            AstNodeType::AssignStmt => "<AssignStmt>",
            AstNodeType::AddAssignStmt => "<AddAssignStmt>",
            AstNodeType::SubAssignStmt => "<SubAssignStmt>",
            AstNodeType::MulAssignStmt => "<MulAssignStmt>",
            AstNodeType::GuardTrue => "<GuardTrue>",
            AstNodeType::GuardFalse => "<GuardFalse>",
            AstNodeType::ReturnStmt => "<ReturnStmt>",
            AstNodeType::BreakStmt => "<BreakStmt>",
            AstNodeType::ContinueStmt => "<ContinueStmt>",
            AstNodeType::BinaryExpr => "<BinaryExpr>",
            AstNodeType::UnaryExpr => "<UnaryExpr>",
            AstNodeType::IndexExpr => "<IndexExpr>",
            AstNodeType::CallExpr => "<CallExpr>",
            AstNodeType::ArrayLitExpr => "<ArrayLitExpr>",
            AstNodeType::IndexTarget => "<IndexTarget>",
            AstNodeType::FunctionDecl => "<FunctionDecl>",
            AstNodeType::ParamDecl => "<ParamDecl>",
            AstNodeType::BlockNode => "<Block>",
            AstNodeType::IfStmt => "<IfStmt>",
            AstNodeType::WhileStmt => "<WhileStmt>",
            AstNodeType::ForStmt => "<ForStmt>",
        }
    }
}

/// A labelled ordered tree over an AST fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstTree {
    /// This node's label.
    pub label: NodeLabel,
    /// Ordered children.
    pub children: Vec<AstTree>,
}

/// The label of an [`AstTree`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeLabel {
    /// A non-terminal labelled by its AST node type.
    NonTerminal(AstNodeType),
    /// A terminal labelled by a surface token (identifier, operator,
    /// literal spelling, builtin name …).
    Terminal(String),
}

impl AstTree {
    /// A leaf with a terminal token label.
    pub fn leaf(token: impl Into<String>) -> AstTree {
        AstTree { label: NodeLabel::Terminal(token.into()), children: Vec::new() }
    }

    /// An internal node with a node-type label.
    pub fn node(ty: AstNodeType, children: Vec<AstTree>) -> AstTree {
        AstTree { label: NodeLabel::NonTerminal(ty), children }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(AstTree::size).sum::<usize>()
    }

    /// Depth of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(AstTree::depth).max().unwrap_or(0)
    }

    /// All terminal tokens in left-to-right order.
    pub fn terminals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terminals(&mut out);
        out
    }

    fn collect_terminals<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.label {
            NodeLabel::Terminal(t) => out.push(t),
            NodeLabel::NonTerminal(_) => {}
        }
        for c in &self.children {
            c.collect_terminals(out);
        }
    }

    /// All vocabulary keys (terminals plus node-type names) in pre-order —
    /// the contribution of this tree to 𝒟ₛ.
    pub fn vocab_keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_keys(&mut out);
        out
    }

    fn collect_keys(&self, out: &mut Vec<String>) {
        match &self.label {
            NodeLabel::Terminal(t) => out.push(t.clone()),
            NodeLabel::NonTerminal(ty) => out.push(ty.name().to_string()),
        }
        for c in &self.children {
            c.collect_keys(out);
        }
    }
}

/// Builds the labelled tree of an expression.
pub fn expr_tree(expr: &Expr) -> AstTree {
    match &expr.kind {
        ExprKind::IntLit(v) => AstTree::leaf(v.to_string()),
        ExprKind::BoolLit(b) => AstTree::leaf(b.to_string()),
        ExprKind::StrLit(s) => AstTree::leaf(format!("\"{s}\"")),
        ExprKind::Var(name) => AstTree::leaf(name.clone()),
        ExprKind::Unary(op, inner) => AstTree::node(
            AstNodeType::UnaryExpr,
            vec![
                AstTree::leaf(match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                }),
                expr_tree(inner),
            ],
        ),
        ExprKind::Binary(op, lhs, rhs) => AstTree::node(
            AstNodeType::BinaryExpr,
            vec![expr_tree(lhs), AstTree::leaf(binop_token(*op)), expr_tree(rhs)],
        ),
        ExprKind::Index(base, idx) => {
            AstTree::node(AstNodeType::IndexExpr, vec![expr_tree(base), expr_tree(idx)])
        }
        ExprKind::Call(builtin, args) => {
            let mut children = vec![AstTree::leaf(builtin.name())];
            children.extend(args.iter().map(expr_tree));
            AstTree::node(AstNodeType::CallExpr, children)
        }
        ExprKind::ArrayLit(elems) => {
            AstTree::node(AstNodeType::ArrayLitExpr, elems.iter().map(expr_tree).collect())
        }
    }
}

fn binop_token(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Builds the labelled tree of a *simple* statement (`let`, assignment,
/// `return`, `break`, `continue`). Control-flow statements are represented
/// in symbolic traces by their guards — see [`guard_tree`].
///
/// # Panics
///
/// Panics when given `if`/`while`/`for`, which never appear as trace events
/// themselves.
pub fn stmt_tree(stmt: &Stmt) -> AstTree {
    match &stmt.kind {
        StmtKind::Let { name, ty, init } => AstTree::node(
            AstNodeType::LetStmt,
            vec![AstTree::leaf(name.clone()), AstTree::leaf(ty.to_string()), expr_tree(init)],
        ),
        StmtKind::Assign { target, op, value } => {
            let ty = match op {
                AssignOp::Set => AstNodeType::AssignStmt,
                AssignOp::Add => AstNodeType::AddAssignStmt,
                AssignOp::Sub => AstNodeType::SubAssignStmt,
                AssignOp::Mul => AstNodeType::MulAssignStmt,
            };
            let target_tree = match target {
                LValue::Var(name) => AstTree::leaf(name.clone()),
                LValue::Index(name, idx) => AstTree::node(
                    AstNodeType::IndexTarget,
                    vec![AstTree::leaf(name.clone()), expr_tree(idx)],
                ),
            };
            AstTree::node(ty, vec![target_tree, expr_tree(value)])
        }
        StmtKind::Return(Some(e)) => AstTree::node(AstNodeType::ReturnStmt, vec![expr_tree(e)]),
        StmtKind::Return(None) => {
            AstTree::node(AstNodeType::ReturnStmt, vec![AstTree::leaf("void")])
        }
        StmtKind::Break => AstTree::node(AstNodeType::BreakStmt, vec![AstTree::leaf("break")]),
        StmtKind::Continue => {
            AstTree::node(AstNodeType::ContinueStmt, vec![AstTree::leaf("continue")])
        }
        other => panic!("stmt_tree: control-flow statement has no direct tree: {other:?}"),
    }
}

/// Builds the labelled tree of a branch guard: the condition expression of
/// an `if`/`while`/`for` statement, rooted at [`AstNodeType::GuardTrue`] or
/// [`AstNodeType::GuardFalse`] according to the direction taken.
pub fn guard_tree(cond: &Expr, taken: bool) -> AstTree {
    let ty = if taken { AstNodeType::GuardTrue } else { AstNodeType::GuardFalse };
    AstTree::node(ty, vec![expr_tree(cond)])
}

/// Builds the labelled tree of the *whole function* — the static view the
/// `code2vec`/`code2seq` baselines extract AST path contexts from. Unlike
/// [`stmt_tree`], control-flow statements appear with their full structure.
/// The method name itself is deliberately **not** in the tree (it is the
/// prediction target).
pub fn program_tree(program: &Program) -> AstTree {
    let f = &program.function;
    let mut children: Vec<AstTree> = f
        .params
        .iter()
        .map(|p| {
            AstTree::node(
                AstNodeType::ParamDecl,
                vec![AstTree::leaf(p.name.clone()), AstTree::leaf(p.ty.to_string())],
            )
        })
        .collect();
    children.push(block_tree(&f.body));
    AstTree::node(AstNodeType::FunctionDecl, children)
}

fn block_tree(block: &Block) -> AstTree {
    AstTree::node(AstNodeType::BlockNode, block.stmts.iter().map(full_stmt_tree).collect())
}

/// The full structural tree of any statement (including control flow).
pub fn full_stmt_tree(stmt: &Stmt) -> AstTree {
    match &stmt.kind {
        StmtKind::If { cond, then_block, else_block } => {
            let mut children = vec![expr_tree(cond), block_tree(then_block)];
            if let Some(e) = else_block {
                children.push(block_tree(e));
            }
            AstTree::node(AstNodeType::IfStmt, children)
        }
        StmtKind::While { cond, body } => {
            AstTree::node(AstNodeType::WhileStmt, vec![expr_tree(cond), block_tree(body)])
        }
        StmtKind::For { init, cond, update, body } => AstTree::node(
            AstNodeType::ForStmt,
            vec![
                full_stmt_tree(init),
                expr_tree(cond),
                full_stmt_tree(update),
                block_tree(body),
            ],
        ),
        _ => stmt_tree(stmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn expr_tree_has_operator_terminal() {
        let e = parse_expr("a + 1").unwrap();
        let t = expr_tree(&e);
        assert_eq!(t.terminals(), vec!["a", "+", "1"]);
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn add_assign_and_mul_assign_differ_symbolically() {
        // The §3 motivating example: `i += i` and `i *= 2` must produce
        // *different* symbolic trees (identical program states teach the
        // model their equivalence).
        let p1 = parse("fn f(i: int) -> int { i += i; return i; }").unwrap();
        let p2 = parse("fn f(i: int) -> int { i *= 2; return i; }").unwrap();
        let t1 = stmt_tree(p1.statements()[0]);
        let t2 = stmt_tree(p2.statements()[0]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn guard_trees_distinguish_polarity() {
        let e = parse_expr("x < 10").unwrap();
        assert_ne!(guard_tree(&e, true), guard_tree(&e, false));
    }

    #[test]
    fn vocab_keys_include_node_types_and_tokens() {
        let e = parse_expr("len(a)").unwrap();
        let keys = expr_tree(&e).vocab_keys();
        assert!(keys.contains(&"<CallExpr>".to_string()));
        assert!(keys.contains(&"len".to_string()));
        assert!(keys.contains(&"a".to_string()));
    }

    #[test]
    #[should_panic(expected = "control-flow")]
    fn stmt_tree_rejects_if() {
        let p = parse("fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }").unwrap();
        stmt_tree(p.statements()[0]);
    }

    #[test]
    fn all_node_types_have_unique_names() {
        let names: std::collections::HashSet<_> =
            AstNodeType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), AstNodeType::ALL.len());
    }
}
