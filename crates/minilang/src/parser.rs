//! Recursive-descent parser for MiniLang.
//!
//! Grammar (informal):
//!
//! ```text
//! program  := function
//! function := 'fn' IDENT '(' (param (',' param)*)? ')' '->' type block
//! param    := IDENT ':' type
//! type     := 'int' | 'bool' | 'str' | 'array' '<' 'int' '>'
//! block    := '{' stmt* '}'
//! stmt     := 'let' IDENT ':' type '=' expr ';'
//!           | lvalue ('=' | '+=' | '-=' | '*=') expr ';'
//!           | 'if' '(' expr ')' block ('else' (block | ifstmt))?
//!           | 'while' '(' expr ')' block
//!           | 'for' '(' simple ';' expr ';' simple ')' block
//!           | 'return' expr? ';' | 'break' ';' | 'continue' ';'
//! ```
//!
//! Expression precedence (loosest → tightest): `||`, `&&`, equality,
//! relational, additive, multiplicative, unary, postfix indexing, primary.

use crate::ast::*;
use crate::error::{LangError, Result};
use crate::lexer::lex;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parses a full program (one function) from source text, with statement
/// ids already assigned.
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minilang::LangError> {
/// let program = minilang::parse(
///     "fn addOne(x: int) -> int { return x + 1; }",
/// )?;
/// assert_eq!(program.function.name, "addOne");
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let function = parser.function()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.err("trailing tokens after function"));
    }
    let mut program = Program { function };
    program.assign_ids();
    Ok(program)
}

/// Parses a single expression — used by tests and by the variation engine.
///
/// # Errors
///
/// Returns a lex or parse error on malformed input.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.err("trailing tokens after expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> LangError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        LangError::Parse { line, msg: msg.into() }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens.get(self.pos).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Result<TokenKind> {
        let t = self.tokens.get(self.pos).ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t.kind.clone())
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&TokenKind::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found {:?}", p.as_str(), self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&TokenKind::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found {:?}", k.as_str(), self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump()? {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn function(&mut self) -> Result<Function> {
        self.expect_keyword(Keyword::Fn)?;
        let name = self.ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect_punct(Punct::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::Arrow)?;
        let ret = self.ty()?;
        let body = self.block()?;
        Ok(Function { name, params, ret, body })
    }

    fn ty(&mut self) -> Result<Type> {
        match self.bump()? {
            TokenKind::Keyword(Keyword::Int) => Ok(Type::Int),
            TokenKind::Keyword(Keyword::Bool) => Ok(Type::Bool),
            TokenKind::Keyword(Keyword::Str) => Ok(Type::Str),
            TokenKind::Keyword(Keyword::Array) => {
                self.expect_punct(Punct::Lt)?;
                self.expect_keyword(Keyword::Int)?;
                self.expect_punct(Punct::Gt)?;
                Ok(Type::IntArray)
            }
            other => Err(self.err(format!("expected type, found {other}"))),
        }
    }

    fn block(&mut self) -> Result<Block> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        let kind = match self.peek() {
            Some(TokenKind::Keyword(Keyword::Let)) => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                s
            }
            Some(TokenKind::Keyword(Keyword::If)) => self.if_stmt()?,
            Some(TokenKind::Keyword(Keyword::While)) => {
                self.bump()?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            Some(TokenKind::Keyword(Keyword::For)) => {
                self.bump()?;
                self.expect_punct(Punct::LParen)?;
                let init_line = self.line();
                let init_kind = self.simple_stmt()?;
                let init = self.stmt_at(init_line, init_kind);
                self.expect_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let update_line = self.line();
                let update_kind = self.simple_stmt()?;
                let update = self.stmt_at(update_line, update_kind);
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                StmtKind::For {
                    init: Box::new(init),
                    cond,
                    update: Box::new(update),
                    body,
                }
            }
            Some(TokenKind::Keyword(Keyword::Return)) => {
                self.bump()?;
                if self.eat_punct(Punct::Semi) {
                    StmtKind::Return(None)
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    StmtKind::Return(Some(e))
                }
            }
            Some(TokenKind::Keyword(Keyword::Break)) => {
                self.bump()?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::Break
            }
            Some(TokenKind::Keyword(Keyword::Continue)) => {
                self.bump()?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::Continue
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                s
            }
        };
        Ok(Stmt { id: StmtId(0), line, kind })
    }

    fn stmt_at(&self, line: u32, kind: StmtKind) -> Stmt {
        Stmt { id: StmtId(0), line, kind }
    }

    fn if_stmt(&mut self) -> Result<StmtKind> {
        self.expect_keyword(Keyword::If)?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.eat_keyword(Keyword::Else) {
            if self.peek() == Some(&TokenKind::Keyword(Keyword::If)) {
                // `else if`: wrap the nested if in a one-statement block.
                let line = self.line();
                let nested = self.if_stmt()?;
                Some(Block { stmts: vec![self.stmt_at(line, nested)] })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(StmtKind::If { cond, then_block, else_block })
    }

    /// A `let` or assignment statement, *without* consuming the trailing
    /// semicolon (shared between plain statements and `for` headers).
    fn simple_stmt(&mut self) -> Result<StmtKind> {
        if self.eat_keyword(Keyword::Let) {
            let name = self.ident()?;
            self.expect_punct(Punct::Colon)?;
            let ty = self.ty()?;
            self.expect_punct(Punct::Assign)?;
            let init = self.expr()?;
            return Ok(StmtKind::Let { name, ty, init });
        }
        let name = self.ident()?;
        let target = if self.eat_punct(Punct::LBracket) {
            let idx = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            LValue::Index(name, idx)
        } else {
            LValue::Var(name)
        };
        let op = match self.bump()? {
            TokenKind::Punct(Punct::Assign) => AssignOp::Set,
            TokenKind::Punct(Punct::PlusAssign) => AssignOp::Add,
            TokenKind::Punct(Punct::MinusAssign) => AssignOp::Sub,
            TokenKind::Punct(Punct::StarAssign) => AssignOp::Mul,
            other => return Err(self.err(format!("expected assignment operator, found {other}"))),
        };
        let value = self.expr()?;
        Ok(StmtKind::Assign { target, op, value })
    }

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.equality_expr()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.equality_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = if self.eat_punct(Punct::EqEq) {
                BinOp::Eq
            } else if self.eat_punct(Punct::Ne) {
                BinOp::Ne
            } else {
                break;
            };
            let rhs = self.relational_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Le) {
                BinOp::Le
            } else if self.eat_punct(Punct::Lt) {
                BinOp::Lt
            } else if self.eat_punct(Punct::Ge) {
                BinOp::Ge
            } else if self.eat_punct(Punct::Gt) {
                BinOp::Gt
            } else {
                break;
            };
            let rhs = self.additive_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Plus) {
                BinOp::Add
            } else if self.eat_punct(Punct::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct(Punct::Star) {
                BinOp::Mul
            } else if self.eat_punct(Punct::Slash) {
                BinOp::Div
            } else if self.eat_punct(Punct::Percent) {
                BinOp::Mod
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_punct(Punct::Minus) {
            let inner = self.unary_expr()?;
            // Fold negation of integer literals so `-1` parses as the
            // literal `-1`; this makes pretty-printing round-trip exactly.
            if let ExprKind::IntLit(v) = inner.kind {
                return Ok(Expr::int(v.wrapping_neg()));
            }
            Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(inner))))
        } else if self.eat_punct(Punct::Bang) {
            let inner = self.unary_expr()?;
            Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(inner))))
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        while self.eat_punct(Punct::LBracket) {
            let idx = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)));
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.bump()? {
            TokenKind::Int(v) => Ok(Expr::int(v)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::StrLit(s))),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::new(ExprKind::BoolLit(true))),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::new(ExprKind::BoolLit(false))),
            TokenKind::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LBracket) => {
                let mut elems = Vec::new();
                if !self.eat_punct(Punct::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if self.eat_punct(Punct::RBracket) {
                            break;
                        }
                        self.expect_punct(Punct::Comma)?;
                    }
                }
                Ok(Expr::new(ExprKind::ArrayLit(elems)))
            }
            TokenKind::Ident(name) => {
                if self.peek() == Some(&TokenKind::Punct(Punct::LParen)) {
                    let builtin = Builtin::from_name(&name)
                        .ok_or_else(|| self.err(format!("unknown function: {name}")))?;
                    self.bump()?; // `(`
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    if args.len() != builtin.arity() {
                        return Err(self.err(format!(
                            "{} expects {} arguments, got {}",
                            builtin.name(),
                            builtin.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::new(ExprKind::Call(builtin, args)))
                } else {
                    Ok(Expr::var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bubble_sort() {
        let src = r#"
            fn sortArray(a: array<int>) -> array<int> {
                let left: int = 0;
                let right: int = len(a) - 1;
                for (let i: int = right; i > left; i -= 1) {
                    for (let j: int = left; j < i; j += 1) {
                        if (a[j] > a[j + 1]) {
                            let tmp: int = a[j];
                            a[j] = a[j + 1];
                            a[j + 1] = tmp;
                        }
                    }
                }
                return a;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.function.name, "sortArray");
        assert_eq!(prog.function.params.len(), 1);
        assert_eq!(prog.function.ret, Type::IntArray);
        // let, let, for+init+update, for+init+update, if, let, assign,
        // assign, return = 13 statements.
        assert_eq!(prog.statements().len(), 13);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => match rhs.kind {
                ExprKind::Binary(BinOp::Mul, _, _) => {}
                other => panic!("expected Mul on rhs, got {other:?}"),
            },
            other => panic!("expected Add at top, got {other:?}"),
        }
    }

    #[test]
    fn precedence_comparison_over_and() {
        let e = parse_expr("a < b && c > d").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "fn f(x: int) -> int { if (x > 0) { return 1; } else if (x < 0) { return 2; } else { return 0; } }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.statements().len(), 5);
    }

    #[test]
    fn parses_compound_assignment() {
        let src = "fn f(x: int) -> int { x += x; x *= 2; return x; }";
        let prog = parse(src).unwrap();
        let stmts = prog.statements();
        assert!(matches!(stmts[0].kind, StmtKind::Assign { op: AssignOp::Add, .. }));
        assert!(matches!(stmts[1].kind, StmtKind::Assign { op: AssignOp::Mul, .. }));
    }

    #[test]
    fn rejects_unknown_call() {
        assert!(parse("fn f() -> int { return foo(1); }").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse("fn f() -> int { return len(); }").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("fn f() -> int { return 1; } extra").is_err());
    }

    #[test]
    fn parses_array_literal_and_index() {
        let e = parse_expr("[1, 2, 3][0]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn parses_string_builtin_chain() {
        let src = r#"
            fn isRotation(a: str, b: str) -> bool {
                if (len(a) != len(b)) { return false; }
                for (let i: int = 1; i < len(a); i += 1) {
                    let tail: str = substring(a, i, len(a));
                    let wrap: str = substring(a, 0, i);
                    if (tail + wrap == b) { return true; }
                }
                return false;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.function.name, "isRotation");
    }

    #[test]
    fn unary_binds_tighter_than_mul() {
        let e = parse_expr("-a * b").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }
}
