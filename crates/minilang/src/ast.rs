//! The abstract syntax tree of MiniLang.
//!
//! One [`Program`] holds one [`Function`] — mirroring the paper's setting
//! where each subject is a single method body. Every statement carries a
//! stable [`StmtId`] (assigned after parsing, in pre-order) and the source
//! line it starts on; both are used by the tracing interpreter and by the
//! line-coverage-preserving path reduction of §6.1.2.

use std::fmt;

/// The types of MiniLang values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
    /// Growable array of integers (`array<int>`).
    IntArray,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "str"),
            Type::IntArray => write!(f, "array<int>"),
        }
    }
}

/// A stable identifier for a statement within a program.
///
/// Ids are assigned in pre-order by [`Program::assign_ids`], so the same
/// source always produces the same numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A whole MiniLang program: exactly one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The single function (method) this program defines.
    pub function: Function,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The method name, e.g. `bubbleSort`. This is the prediction target of
    /// the method-name prediction task.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub ret: Type,
    /// The function body.
    pub body: Block,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement together with its id and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable pre-order id (0 until [`Program::assign_ids`] runs).
    pub id: StmtId,
    /// 1-based source line of the statement's first token.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

/// The kinds of MiniLang statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name: ty = init;`
    Let {
        /// Declared variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer expression.
        init: Expr,
    },
    /// `target op= value;` where `op` is empty, `+`, `-`, or `*`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Compound-assignment operator, if any (`x += e` keeps `AssignOp::Add`
        /// in the AST so the `i += i` vs `i *= 2` distinction of §3 survives
        /// to the symbolic feature dimension).
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-block.
        then_block: Block,
        /// Optional else-block.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; update) { .. }` — `init` and `update` are
    /// restricted to `let`/assignment statements by the parser.
    For {
        /// Loop initializer.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Loop update statement.
        update: Box<Stmt>,
        /// Loop body.
        body: Block,
    },
    /// `return e;` or `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// Assignment operator of an [`StmtKind::Assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// Plain `=`.
    Set,
    /// `+=`.
    Add,
    /// `-=`.
    Sub,
    /// `*=`.
    Mul,
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A variable, e.g. `x = ..`.
    Var(String),
    /// An array element, e.g. `a[i] = ..`.
    Index(String, Expr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind) -> Expr {
        Expr { kind }
    }

    /// An integer literal expression.
    pub fn int(v: i64) -> Expr {
        Expr::new(ExprKind::IntLit(v))
    }

    /// A variable reference expression.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::new(ExprKind::Var(name.into()))
    }

    /// A binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)))
    }
}

/// The kinds of MiniLang expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// String literal.
    StrLit(String),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation. `&&`/`||` are short-circuiting.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Array or string indexing, e.g. `a[i]` (on strings yields the
    /// character code as an int).
    Index(Box<Expr>, Box<Expr>),
    /// Builtin call, e.g. `len(a)`.
    Call(Builtin, Vec<Expr>),
    /// Array literal, e.g. `[1, 2, 3]`.
    ArrayLit(Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation `-`.
    Neg,
    /// Boolean negation `!`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (integer addition or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (truncating; division by zero is a runtime error).
    Div,
    /// `%` (division by zero is a runtime error).
    Mod,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==` (ints, bools, strings, arrays element-wise).
    Eq,
    /// `!=`.
    Ne,
    /// `&&` (short-circuiting).
    And,
    /// `||` (short-circuiting).
    Or,
}

impl BinOp {
    /// True for `<, <=, >, >=, ==, !=` — operators producing `bool` from
    /// comparable operands.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod)
    }
}

/// Builtin functions of MiniLang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `len(x)` — length of an array or string.
    Len,
    /// `substring(s, i, j)` — the substring of `s` from `i` (inclusive) to
    /// `j` (exclusive); out-of-range indices are a runtime error.
    Substring,
    /// `abs(x)` — absolute value.
    Abs,
    /// `min(x, y)`.
    Min,
    /// `max(x, y)`.
    Max,
    /// `newArray(n, v)` — a fresh integer array of length `n` filled with `v`.
    NewArray,
    /// `push(a, v)` — returns `a` with `v` appended (value semantics).
    Push,
    /// `charToStr(c)` — single-character string from a character code.
    CharToStr,
}

impl Builtin {
    /// Returns the builtin named `s`, if any.
    pub fn from_name(s: &str) -> Option<Builtin> {
        Some(match s {
            "len" => Builtin::Len,
            "substring" => Builtin::Substring,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "newArray" => Builtin::NewArray,
            "push" => Builtin::Push,
            "charToStr" => Builtin::CharToStr,
            _ => return None,
        })
    }

    /// The surface name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Len => "len",
            Builtin::Substring => "substring",
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::NewArray => "newArray",
            Builtin::Push => "push",
            Builtin::CharToStr => "charToStr",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Len | Builtin::Abs | Builtin::CharToStr => 1,
            Builtin::Min | Builtin::Max | Builtin::NewArray | Builtin::Push => 2,
            Builtin::Substring => 3,
        }
    }
}

impl Program {
    /// Assigns pre-order [`StmtId`]s to every statement, returning the total
    /// number of statements. Parsers call this automatically; constructors
    /// of synthetic ASTs must call it before handing the program to the
    /// interpreter.
    pub fn assign_ids(&mut self) -> u32 {
        let mut next = 0u32;
        assign_block(&mut self.function.body, &mut next);
        next
    }

    /// All statements of the program in pre-order, flattened.
    pub fn statements(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        collect_block(&self.function.body, &mut out);
        out
    }

    /// Looks up a statement by id. Returns `None` for out-of-range ids.
    pub fn stmt(&self, id: StmtId) -> Option<&Stmt> {
        self.statements().into_iter().find(|s| s.id == id)
    }

    /// The set of distinct source lines holding statements — the denominator
    /// of line coverage.
    pub fn statement_lines(&self) -> std::collections::BTreeSet<u32> {
        self.statements().iter().map(|s| s.line).collect()
    }
}

fn assign_block(block: &mut Block, next: &mut u32) {
    for stmt in &mut block.stmts {
        assign_stmt(stmt, next);
    }
}

fn assign_stmt(stmt: &mut Stmt, next: &mut u32) {
    stmt.id = StmtId(*next);
    *next += 1;
    match &mut stmt.kind {
        StmtKind::If { then_block, else_block, .. } => {
            assign_block(then_block, next);
            if let Some(e) = else_block {
                assign_block(e, next);
            }
        }
        StmtKind::While { body, .. } => assign_block(body, next),
        StmtKind::For { init, update, body, .. } => {
            assign_stmt(init, next);
            assign_stmt(update, next);
            assign_block(body, next);
        }
        _ => {}
    }
}

fn collect_block<'a>(block: &'a Block, out: &mut Vec<&'a Stmt>) {
    for stmt in &block.stmts {
        collect_stmt(stmt, out);
    }
}

fn collect_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<&'a Stmt>) {
    out.push(stmt);
    match &stmt.kind {
        StmtKind::If { then_block, else_block, .. } => {
            collect_block(then_block, out);
            if let Some(e) = else_block {
                collect_block(e, out);
            }
        }
        StmtKind::While { body, .. } => collect_block(body, out),
        StmtKind::For { init, update, body, .. } => {
            collect_stmt(init, out);
            collect_stmt(update, out);
            collect_block(body, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(kind: StmtKind) -> Stmt {
        Stmt { id: StmtId(0), line: 1, kind }
    }

    #[test]
    fn assign_ids_is_preorder() {
        let mut prog = Program {
            function: Function {
                name: "f".into(),
                params: vec![],
                ret: Type::Int,
                body: Block {
                    stmts: vec![
                        stmt(StmtKind::Let { name: "x".into(), ty: Type::Int, init: Expr::int(0) }),
                        stmt(StmtKind::If {
                            cond: Expr::var("b"),
                            then_block: Block { stmts: vec![stmt(StmtKind::Return(None))] },
                            else_block: Some(Block { stmts: vec![stmt(StmtKind::Break)] }),
                        }),
                        stmt(StmtKind::Return(Some(Expr::var("x")))),
                    ],
                },
            },
        };
        let count = prog.assign_ids();
        assert_eq!(count, 5);
        let ids: Vec<u32> = prog.statements().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stmt_lookup_by_id() {
        let mut prog = Program {
            function: Function {
                name: "f".into(),
                params: vec![],
                ret: Type::Int,
                body: Block { stmts: vec![stmt(StmtKind::Return(Some(Expr::int(1))))] },
            },
        };
        prog.assign_ids();
        assert!(prog.stmt(StmtId(0)).is_some());
        assert!(prog.stmt(StmtId(7)).is_none());
    }

    #[test]
    fn builtin_arity_matches_names() {
        for b in [
            Builtin::Len,
            Builtin::Substring,
            Builtin::Abs,
            Builtin::Min,
            Builtin::Max,
            Builtin::NewArray,
            Builtin::Push,
            Builtin::CharToStr,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
            assert!(b.arity() >= 1 && b.arity() <= 3);
        }
    }
}
