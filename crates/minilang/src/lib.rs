//! # MiniLang — the language substrate of the LIGER reproduction
//!
//! The paper *Blended, Precise Semantic Program Embeddings* (PLDI 2020)
//! evaluates on Java methods parsed with JavaParser and executed under
//! instrumentation. This crate supplies the equivalent front end for the
//! reproduction: a small, typed, imperative, Java-flavoured language with
//!
//! - a lexer ([`lex`]) and recursive-descent parser ([`parse`]),
//! - a typed AST ([`ast`]) where every statement carries a stable id and a
//!   source line (used for line-coverage accounting in §6.1.2),
//! - a pretty printer ([`pretty`]) whose output re-parses to the same tree,
//! - a static type checker ([`typecheck`]) used as the "does it compile?"
//!   filter of Table 1, and
//! - the AST node-type enumeration and labelled-tree view ([`node_type`])
//!   that feed the vocabulary 𝒟ₛ and the fusion layer's TreeLSTM.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), minilang::LangError> {
//! let program = minilang::parse(
//!     "fn double(x: int) -> int { x *= 2; return x; }",
//! )?;
//! minilang::typecheck(&program)?;
//! assert_eq!(program.function.name, "double");
//! let printed = minilang::print_program(&program);
//! assert_eq!(minilang::parse(&printed)?.function.name, "double");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod ident;
pub mod lexer;
pub mod node_type;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod typeck;

pub use ast::{
    AssignOp, BinOp, Block, Builtin, Expr, ExprKind, Function, LValue, Param, Program, Stmt,
    StmtId, StmtKind, Type, UnOp,
};
pub use error::{LangError, Result};
pub use ident::{join_subtokens, subtokens};
pub use lexer::lex;
pub use node_type::{
    expr_tree, full_stmt_tree, guard_tree, program_tree, stmt_tree, AstNodeType, AstTree,
    NodeLabel,
};
pub use parser::{parse, parse_expr};
pub use pretty::{print_expr, print_program, print_stmt};
pub use typeck::typecheck;
