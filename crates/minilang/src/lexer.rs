//! The MiniLang lexer.
//!
//! Converts source text into a [`Token`] stream. Supports `//` line comments,
//! decimal integer literals, double-quoted string literals with `\n`, `\t`,
//! `\"` and `\\` escapes, identifiers, keywords and the operator set listed
//! in [`crate::token::Punct`].

use crate::error::{LangError, Result};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Lexes `src` into a vector of tokens.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unterminated strings, integer literals that
/// overflow `i64`, or characters outside the language's alphabet.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minilang::LangError> {
/// let tokens = minilang::lex("let x: int = 1;")?;
/// assert_eq!(tokens.len(), 7);
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, tokens: Vec::new() }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::Lex { line: self.line, msg: msg.into() }
    }

    fn push(&mut self, kind: TokenKind) {
        self.tokens.push(Token { kind, line: self.line });
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.chars.peek() == Some(&expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while let Some(&c) = self.chars.peek() {
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    if self.eat('/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        self.push(TokenKind::Punct(Punct::Slash));
                    }
                }
                '0'..='9' => self.number()?,
                '"' => self.string()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(),
                _ => self.punct()?,
            }
        }
        Ok(self.tokens)
    }

    fn number(&mut self) -> Result<()> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let value: i64 =
            text.parse().map_err(|_| self.err(format!("integer literal overflows i64: {text}")))?;
        self.push(TokenKind::Int(value));
        Ok(())
    }

    fn string(&mut self) -> Result<()> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('"') => text.push('"'),
                    Some('\\') => text.push('\\'),
                    other => {
                        return Err(self.err(format!("invalid escape sequence: \\{other:?}")));
                    }
                },
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str(text));
        Ok(())
    }

    fn ident(&mut self) {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&text) {
            Some(kw) => self.push(TokenKind::Keyword(kw)),
            None => self.push(TokenKind::Ident(text)),
        }
    }

    fn punct(&mut self) -> Result<()> {
        let c = self.bump().expect("punct called at end of input");
        let p = match c {
            '(' => Punct::LParen,
            ')' => Punct::RParen,
            '{' => Punct::LBrace,
            '}' => Punct::RBrace,
            '[' => Punct::LBracket,
            ']' => Punct::RBracket,
            ',' => Punct::Comma,
            ';' => Punct::Semi,
            ':' => Punct::Colon,
            '+' => {
                if self.eat('=') {
                    Punct::PlusAssign
                } else {
                    Punct::Plus
                }
            }
            '-' => {
                if self.eat('>') {
                    Punct::Arrow
                } else if self.eat('=') {
                    Punct::MinusAssign
                } else {
                    Punct::Minus
                }
            }
            '*' => {
                if self.eat('=') {
                    Punct::StarAssign
                } else {
                    Punct::Star
                }
            }
            '%' => Punct::Percent,
            '<' => {
                if self.eat('=') {
                    Punct::Le
                } else {
                    Punct::Lt
                }
            }
            '>' => {
                if self.eat('=') {
                    Punct::Ge
                } else {
                    Punct::Gt
                }
            }
            '=' => {
                if self.eat('=') {
                    Punct::EqEq
                } else {
                    Punct::Assign
                }
            }
            '!' => {
                if self.eat('=') {
                    Punct::Ne
                } else {
                    Punct::Bang
                }
            }
            '&' => {
                if self.eat('&') {
                    Punct::AndAnd
                } else {
                    return Err(self.err("expected `&&`"));
                }
            }
            '|' => {
                if self.eat('|') {
                    Punct::OrOr
                } else {
                    return Err(self.err("expected `||`"));
                }
            }
            other => return Err(self.err(format!("unexpected character: {other:?}"))),
        };
        self.push(TokenKind::Punct(p));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("let x: int = 1;"),
            vec![
                TokenKind::Keyword(Keyword::Let),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Colon),
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Int(1),
                TokenKind::Punct(Punct::Semi),
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("+= -= *= == != <= >= && || ->"),
            vec![
                TokenKind::Punct(Punct::PlusAssign),
                TokenKind::Punct(Punct::MinusAssign),
                TokenKind::Punct(Punct::StarAssign),
                TokenKind::Punct(Punct::EqEq),
                TokenKind::Punct(Punct::Ne),
                TokenKind::Punct(Punct::Le),
                TokenKind::Punct(Punct::Ge),
                TokenKind::Punct(Punct::AndAnd),
                TokenKind::Punct(Punct::OrOr),
                TokenKind::Punct(Punct::Arrow),
            ]
        );
    }

    #[test]
    fn lexes_string_escapes() {
        assert_eq!(kinds(r#""a\nb\"c""#), vec![TokenKind::Str("a\nb\"c".into())]);
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let tokens = lex("// header\nx\n  y").unwrap();
        assert_eq!(tokens[0].line, 2);
        assert_eq!(tokens[1].line, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_lone_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn rejects_overflowing_int() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn keyword_vs_identifier() {
        assert_eq!(
            kinds("iffy if"),
            vec![TokenKind::Ident("iffy".into()), TokenKind::Keyword(Keyword::If)]
        );
    }
}
