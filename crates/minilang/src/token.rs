//! Lexical tokens of MiniLang.
//!
//! MiniLang is the Java-like imperative language this reproduction uses in
//! place of the paper's Java subjects (see `DESIGN.md` §1). Tokens carry the
//! source line they start on so that downstream consumers (the tracing
//! interpreter, the coverage accounting of §6.1.2) can reason about line
//! coverage.

use std::fmt;

/// A lexical token together with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number in the source text.
    pub line: u32,
}

/// The kinds of MiniLang tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// A string literal, e.g. `"abc"` (payload is the unescaped content).
    Str(String),
    /// An identifier, e.g. `left`.
    Ident(String),
    /// A keyword, e.g. `while`.
    Keyword(Keyword),
    /// A punctuation or operator token, e.g. `+=`.
    Punct(Punct),
}

/// Reserved words of MiniLang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `fn` introduces a function definition.
    Fn,
    /// `let` introduces a local variable declaration.
    Let,
    /// `if` conditional.
    If,
    /// `else` branch of a conditional.
    Else,
    /// `while` loop.
    While,
    /// `for` loop.
    For,
    /// `return` statement.
    Return,
    /// `break` statement.
    Break,
    /// `continue` statement.
    Continue,
    /// `true` literal.
    True,
    /// `false` literal.
    False,
    /// `int` type.
    Int,
    /// `bool` type.
    Bool,
    /// `str` type.
    Str,
    /// `array` type constructor (`array<int>`).
    Array,
}

impl Keyword {
    /// Returns the keyword for `s` if `s` is reserved. Not the `FromStr`
    /// trait: lookup is infallible-by-`Option`, not error-producing.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "fn" => Keyword::Fn,
            "let" => Keyword::Let,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "int" => Keyword::Int,
            "bool" => Keyword::Bool,
            "str" => Keyword::Str,
            "array" => Keyword::Array,
            _ => return None,
        })
    }

    /// The surface spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Fn => "fn",
            Keyword::Let => "let",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Int => "int",
            Keyword::Bool => "bool",
            Keyword::Str => "str",
            Keyword::Array => "array",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl Punct {
    /// The surface spelling of the punctuation token.
    pub fn as_str(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Comma => ",",
            Punct::Semi => ";",
            Punct::Colon => ":",
            Punct::Arrow => "->",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Bang => "!",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Punct(p) => write!(f, "{}", p.as_str()),
        }
    }
}
