//! Pretty-printer for MiniLang ASTs.
//!
//! Printing followed by [`crate::parse`] yields a structurally identical
//! program (modulo statement ids and line numbers) — a property-tested
//! invariant. The printer is also the token source for the static baselines
//! (`code2vec`/`code2seq` tokenize the printed form).

use crate::ast::*;
use std::fmt::Write;

/// Renders a program as source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let f = &program.function;
    write!(out, "fn {}(", f.name).unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{}: {}", p.name, p.ty).unwrap();
    }
    writeln!(out, ") -> {} {{", f.ret).unwrap();
    print_block(&f.body, 1, &mut out);
    out.push_str("}\n");
    out
}

/// Renders a single statement (without trailing newline handling of blocks).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    print_stmt_into(stmt, 0, &mut out);
    out.trim_end().to_string()
}

/// Renders an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    expr_into(expr, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    for stmt in &block.stmts {
        print_stmt_into(stmt, level, out);
    }
}

fn print_stmt_into(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &stmt.kind {
        StmtKind::Let { name, ty, init } => {
            write!(out, "let {name}: {ty} = ").unwrap();
            expr_into(init, out);
            out.push_str(";\n");
        }
        StmtKind::Assign { target, op, value } => {
            simple_assign_into(target, *op, value, out);
            out.push_str(";\n");
        }
        StmtKind::If { cond, then_block, else_block } => {
            out.push_str("if (");
            expr_into(cond, out);
            out.push_str(") {\n");
            print_block(then_block, level + 1, out);
            indent(level, out);
            out.push('}');
            if let Some(e) = else_block {
                out.push_str(" else {\n");
                print_block(e, level + 1, out);
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            expr_into(cond, out);
            out.push_str(") {\n");
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::For { init, cond, update, body } => {
            out.push_str("for (");
            simple_stmt_into(init, out);
            out.push_str("; ");
            expr_into(cond, out);
            out.push_str("; ");
            simple_stmt_into(update, out);
            out.push_str(") {\n");
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::Return(Some(e)) => {
            out.push_str("return ");
            expr_into(e, out);
            out.push_str(";\n");
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
    }
}

fn simple_stmt_into(stmt: &Stmt, out: &mut String) {
    match &stmt.kind {
        StmtKind::Let { name, ty, init } => {
            write!(out, "let {name}: {ty} = ").unwrap();
            expr_into(init, out);
        }
        StmtKind::Assign { target, op, value } => simple_assign_into(target, *op, value, out),
        other => panic!("not a simple statement: {other:?}"),
    }
}

fn simple_assign_into(target: &LValue, op: AssignOp, value: &Expr, out: &mut String) {
    match target {
        LValue::Var(name) => out.push_str(name),
        LValue::Index(name, idx) => {
            out.push_str(name);
            out.push('[');
            expr_into(idx, out);
            out.push(']');
        }
    }
    out.push_str(match op {
        AssignOp::Set => " = ",
        AssignOp::Add => " += ",
        AssignOp::Sub => " -= ",
        AssignOp::Mul => " *= ",
    });
    expr_into(value, out);
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
    }
}

fn expr_into(expr: &Expr, out: &mut String) {
    expr_prec(expr, 0, out);
}

fn expr_prec(expr: &Expr, min_prec: u8, out: &mut String) {
    match &expr.kind {
        ExprKind::IntLit(v) => {
            if *v < 0 {
                // Negative literals print parenthesised so `a - (-1)` style
                // trees survive a round-trip through the parser's unary-minus.
                write!(out, "({v})").unwrap();
            } else {
                write!(out, "{v}").unwrap();
            }
        }
        ExprKind::BoolLit(b) => write!(out, "{b}").unwrap(),
        ExprKind::StrLit(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Unary(op, inner) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            // Unary binds tighter than all binary operators.
            expr_prec(inner, 7, out);
        }
        ExprKind::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let paren = prec < min_prec;
            if paren {
                out.push('(');
            }
            expr_prec(lhs, prec, out);
            write!(out, " {} ", binop_str(*op)).unwrap();
            // Left-associative: right operand needs strictly higher precedence.
            expr_prec(rhs, prec + 1, out);
            if paren {
                out.push(')');
            }
        }
        ExprKind::Index(base, idx) => {
            expr_prec(base, 8, out);
            out.push('[');
            expr_prec(idx, 0, out);
            out.push(']');
        }
        ExprKind::Call(builtin, args) => {
            out.push_str(builtin.name());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_prec(a, 0, out);
            }
            out.push(')');
        }
        ExprKind::ArrayLit(elems) => {
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_prec(e, 0, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn strip(mut p: Program) -> Program {
        // Normalise lines so equality compares structure only.
        fn walk_block(b: &mut Block) {
            for s in &mut b.stmts {
                walk(s);
            }
        }
        fn walk(s: &mut Stmt) {
            s.line = 0;
            match &mut s.kind {
                StmtKind::If { then_block, else_block, .. } => {
                    walk_block(then_block);
                    if let Some(e) = else_block {
                        walk_block(e);
                    }
                }
                StmtKind::While { body, .. } => walk_block(body),
                StmtKind::For { init, update, body, .. } => {
                    walk(init);
                    walk(update);
                    walk_block(body);
                }
                _ => {}
            }
        }
        walk_block(&mut p.function.body);
        p
    }

    #[test]
    fn roundtrip_bubble_sort() {
        let src = r#"
            fn sortArray(a: array<int>) -> array<int> {
                let right: int = len(a) - 1;
                for (let i: int = right; i > 0; i -= 1) {
                    for (let j: int = 0; j < i; j += 1) {
                        if (a[j] > a[j + 1]) {
                            let tmp: int = a[j];
                            a[j] = a[j + 1];
                            a[j + 1] = tmp;
                        }
                    }
                }
                return a;
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(strip(p1), strip(p2));
    }

    #[test]
    fn parenthesises_by_precedence() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(print_expr(&e), "(1 + 2) * 3");
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(print_expr(&e), "1 + 2 * 3");
    }

    #[test]
    fn left_associativity_preserved() {
        let e = parse_expr("a - b - c").unwrap();
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(e, reparsed);
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(parse_expr(&print_expr(&e)).unwrap(), e);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let e = parse_expr(r#""a\nb\"c\\d""#).unwrap();
        assert_eq!(parse_expr(&print_expr(&e)).unwrap(), e);
    }

    #[test]
    fn negative_literal_roundtrips() {
        let e = Expr::binary(BinOp::Sub, Expr::var("a"), Expr::int(-1));
        assert_eq!(parse_expr(&print_expr(&e)).unwrap(), e);
    }
}

#[cfg(test)]
mod stmt_print_tests {
    use crate::parser::parse;
    use crate::pretty::print_stmt;

    #[test]
    fn print_stmt_renders_each_kind() {
        let src = "fn f(x: int) -> int {
            let y: int = 1;
            y += x;
            if (x > 0) { return 1; }
            while (x > 0) { x -= 1; }
            for (let i: int = 0; i < 3; i += 1) { y += i; }
            return y;
        }";
        let p = parse(src).unwrap();
        let rendered: Vec<String> =
            p.function.body.stmts.iter().map(print_stmt).collect();
        assert!(rendered[0].starts_with("let y: int = 1;"));
        assert!(rendered[1].starts_with("y += x;"));
        assert!(rendered[2].starts_with("if (x > 0)"));
        assert!(rendered[3].starts_with("while (x > 0)"));
        assert!(rendered[4].starts_with("for (let i: int = 0;"));
        assert!(rendered[5].starts_with("return y;"));
    }

    #[test]
    fn else_branch_prints_and_reparses() {
        let src = "fn f(x: int) -> int { if (x > 0) { return 1; } else { return 2; } }";
        let p = parse(src).unwrap();
        let printed = crate::pretty::print_program(&p);
        assert!(printed.contains("} else {"));
        assert!(parse(&printed).is_ok());
    }
}
