//! Static type checker for MiniLang.
//!
//! The dataset filtering pipeline (Table 1's "some programs do not compile"
//! category) uses this checker as its compile gate: programs that fail it
//! are excluded exactly like non-compiling Java methods were.

use crate::ast::*;
use crate::error::{LangError, Result};
use std::collections::HashMap;

/// Type-checks a program.
///
/// Checks: every variable is declared before use, no variable is declared
/// twice in the same scope, operand and assignment types match, conditions
/// are boolean, indexing applies to arrays or strings, builtins receive the
/// right argument types, every `return` matches the declared return type,
/// and `break`/`continue` appear only inside loops.
///
/// # Errors
///
/// Returns [`LangError::Type`] describing the first violation found.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minilang::LangError> {
/// let program = minilang::parse("fn inc(x: int) -> int { return x + 1; }")?;
/// minilang::typecheck(&program)?;
/// # Ok(())
/// # }
/// ```
pub fn typecheck(program: &Program) -> Result<()> {
    let f = &program.function;
    let mut checker = Checker { scopes: vec![HashMap::new()], ret: f.ret, loop_depth: 0 };
    for p in &f.params {
        checker.declare(&p.name, p.ty)?;
    }
    checker.check_block(&f.body)?;
    Ok(())
}

struct Checker {
    scopes: Vec<HashMap<String, Type>>,
    ret: Type,
    loop_depth: u32,
}

fn err(msg: impl Into<String>) -> LangError {
    LangError::Type { msg: msg.into() }
}

impl Checker {
    fn declare(&mut self, name: &str, ty: Type) -> Result<()> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(err(format!("variable declared twice in the same scope: {name}")));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return Ok(*ty);
            }
        }
        Err(err(format!("use of undeclared variable: {name}")))
    }

    fn check_block(&mut self, block: &Block) -> Result<()> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let init_ty = self.check_expr(init)?;
                if init_ty != *ty {
                    return Err(err(format!(
                        "initializer of {name} has type {init_ty}, expected {ty}"
                    )));
                }
                self.declare(name, *ty)
            }
            StmtKind::Assign { target, op, value } => {
                let target_ty = match target {
                    LValue::Var(name) => self.lookup(name)?,
                    LValue::Index(name, idx) => {
                        let base_ty = self.lookup(name)?;
                        if base_ty != Type::IntArray {
                            return Err(err(format!(
                                "indexed assignment requires array<int>, {name} is {base_ty}"
                            )));
                        }
                        let idx_ty = self.check_expr(idx)?;
                        if idx_ty != Type::Int {
                            return Err(err(format!("array index has type {idx_ty}, expected int")));
                        }
                        Type::Int
                    }
                };
                let value_ty = self.check_expr(value)?;
                match op {
                    AssignOp::Set => {
                        if value_ty != target_ty {
                            return Err(err(format!(
                                "assignment of {value_ty} to target of type {target_ty}"
                            )));
                        }
                    }
                    AssignOp::Add => {
                        // `+=` works on int and str (concatenation), matching `+`.
                        if !(target_ty == value_ty
                            && (target_ty == Type::Int || target_ty == Type::Str))
                        {
                            return Err(err(format!(
                                "`+=` requires int or str operands, got {target_ty} and {value_ty}"
                            )));
                        }
                    }
                    AssignOp::Sub | AssignOp::Mul => {
                        if target_ty != Type::Int || value_ty != Type::Int {
                            return Err(err(format!(
                                "compound arithmetic assignment requires int, got {target_ty} and {value_ty}"
                            )));
                        }
                    }
                }
                Ok(())
            }
            StmtKind::If { cond, then_block, else_block } => {
                self.check_cond(cond)?;
                self.check_block(then_block)?;
                if let Some(e) = else_block {
                    self.check_block(e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.check_cond(cond)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::For { init, cond, update, body } => {
                // The `for` header introduces its own scope.
                self.scopes.push(HashMap::new());
                self.check_stmt(init)?;
                self.check_cond(cond)?;
                self.check_stmt(update)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(Some(e)) => {
                let ty = self.check_expr(e)?;
                if ty != self.ret {
                    return Err(err(format!("return of {ty}, function declares {}", self.ret)));
                }
                Ok(())
            }
            StmtKind::Return(None) => {
                Err(err(format!("bare `return;` in function returning {}", self.ret)))
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err("break/continue outside of a loop"));
                }
                Ok(())
            }
        }
    }

    fn check_cond(&mut self, cond: &Expr) -> Result<()> {
        let ty = self.check_expr(cond)?;
        if ty != Type::Bool {
            return Err(err(format!("condition has type {ty}, expected bool")));
        }
        Ok(())
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Type> {
        match &expr.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::BoolLit(_) => Ok(Type::Bool),
            ExprKind::StrLit(_) => Ok(Type::Str),
            ExprKind::Var(name) => self.lookup(name),
            ExprKind::Unary(UnOp::Neg, inner) => {
                let t = self.check_expr(inner)?;
                if t != Type::Int {
                    return Err(err(format!("unary `-` on {t}")));
                }
                Ok(Type::Int)
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                let t = self.check_expr(inner)?;
                if t != Type::Bool {
                    return Err(err(format!("unary `!` on {t}")));
                }
                Ok(Type::Bool)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                match op {
                    BinOp::Add => match (lt, rt) {
                        (Type::Int, Type::Int) => Ok(Type::Int),
                        (Type::Str, Type::Str) => Ok(Type::Str),
                        _ => Err(err(format!("`+` on {lt} and {rt}"))),
                    },
                    BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if lt == Type::Int && rt == Type::Int {
                            Ok(Type::Int)
                        } else {
                            Err(err(format!("arithmetic on {lt} and {rt}")))
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if lt == Type::Int && rt == Type::Int {
                            Ok(Type::Bool)
                        } else {
                            Err(err(format!("comparison on {lt} and {rt}")))
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt == rt {
                            Ok(Type::Bool)
                        } else {
                            Err(err(format!("equality between {lt} and {rt}")))
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if lt == Type::Bool && rt == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(err(format!("logical operator on {lt} and {rt}")))
                        }
                    }
                }
            }
            ExprKind::Index(base, idx) => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(idx)?;
                if it != Type::Int {
                    return Err(err(format!("index has type {it}, expected int")));
                }
                match bt {
                    Type::IntArray => Ok(Type::Int),
                    // Indexing a string yields the character code.
                    Type::Str => Ok(Type::Int),
                    other => Err(err(format!("indexing into {other}"))),
                }
            }
            ExprKind::Call(builtin, args) => self.check_call(*builtin, args),
            ExprKind::ArrayLit(elems) => {
                for e in elems {
                    let t = self.check_expr(e)?;
                    if t != Type::Int {
                        return Err(err(format!("array literal element of type {t}")));
                    }
                }
                Ok(Type::IntArray)
            }
        }
    }

    fn check_call(&mut self, builtin: Builtin, args: &[Expr]) -> Result<Type> {
        let tys: Vec<Type> =
            args.iter().map(|a| self.check_expr(a)).collect::<Result<Vec<_>>>()?;
        let bad = || {
            err(format!(
                "{} applied to ({})",
                builtin.name(),
                tys.iter().map(Type::to_string).collect::<Vec<_>>().join(", ")
            ))
        };
        match builtin {
            Builtin::Len => match tys[0] {
                Type::IntArray | Type::Str => Ok(Type::Int),
                _ => Err(bad()),
            },
            Builtin::Substring => {
                if tys == [Type::Str, Type::Int, Type::Int] {
                    Ok(Type::Str)
                } else {
                    Err(bad())
                }
            }
            Builtin::Abs => {
                if tys == [Type::Int] {
                    Ok(Type::Int)
                } else {
                    Err(bad())
                }
            }
            Builtin::Min | Builtin::Max => {
                if tys == [Type::Int, Type::Int] {
                    Ok(Type::Int)
                } else {
                    Err(bad())
                }
            }
            Builtin::NewArray => {
                if tys == [Type::Int, Type::Int] {
                    Ok(Type::IntArray)
                } else {
                    Err(bad())
                }
            }
            Builtin::Push => {
                if tys == [Type::IntArray, Type::Int] {
                    Ok(Type::IntArray)
                } else {
                    Err(bad())
                }
            }
            Builtin::CharToStr => {
                if tys == [Type::Int] {
                    Ok(Type::Str)
                } else {
                    Err(bad())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<()> {
        typecheck(&parse(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            "fn sumArray(a: array<int>) -> int {
                let s: int = 0;
                for (let i: int = 0; i < len(a); i += 1) { s += a[i]; }
                return s;
            }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        assert!(check("fn f() -> int { return x; }").is_err());
    }

    #[test]
    fn rejects_type_mismatch_in_let() {
        assert!(check("fn f() -> int { let x: int = true; return x; }").is_err());
    }

    #[test]
    fn rejects_non_bool_condition() {
        assert!(check("fn f(x: int) -> int { if (x) { return 1; } return 0; }").is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(check("fn f() -> int { break; return 0; }").is_err());
    }

    #[test]
    fn accepts_string_concat_and_equality() {
        check(
            "fn f(a: str, b: str) -> bool {
                let c: str = a + b;
                return c == b;
            }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_mixed_equality() {
        assert!(check("fn f(a: str, b: int) -> bool { return a == b; }").is_err());
    }

    #[test]
    fn rejects_return_type_mismatch() {
        assert!(check("fn f() -> bool { return 3; }").is_err());
    }

    #[test]
    fn rejects_duplicate_declaration_in_scope() {
        assert!(check("fn f() -> int { let x: int = 1; let x: int = 2; return x; }").is_err());
    }

    #[test]
    fn accepts_shadowing_in_nested_scope() {
        check(
            "fn f() -> int {
                let x: int = 1;
                if (x > 0) { let x: int = 2; return x; }
                return x;
            }",
        )
        .unwrap();
    }

    #[test]
    fn string_index_yields_int() {
        check("fn f(s: str) -> int { return s[0]; }").unwrap();
    }

    #[test]
    fn rejects_indexing_into_int() {
        assert!(check("fn f(x: int) -> int { return x[0]; }").is_err());
    }

    #[test]
    fn for_header_scope_is_separate() {
        check(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i += 1) { s += i; }
                for (let i: int = 0; i < n; i += 1) { s += i; }
                return s;
            }",
        )
        .unwrap();
    }
}
