//! Error type shared by the MiniLang front end.

use std::fmt;

/// Convenient result alias for front-end operations.
pub type Result<T> = std::result::Result<T, LangError>;

/// Errors produced while lexing, parsing, or type-checking MiniLang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A lexical error at the given 1-based line.
    Lex {
        /// Source line of the error.
        line: u32,
        /// Human-readable description.
        msg: String,
    },
    /// A parse error at the given 1-based line.
    Parse {
        /// Source line of the error.
        line: u32,
        /// Human-readable description.
        msg: String,
    },
    /// A type error.
    Type {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            LangError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LangError::Type { msg } => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}
