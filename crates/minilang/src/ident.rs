//! Identifier sub-token handling.
//!
//! The paper's method-name metric (§6.1.1) scores predictions "over case
//! insensitive sub-tokens": `computeDiff` → `[compute, diff]`, and a
//! prediction of `diffCompute` is a perfect answer. This module provides
//! the camelCase/snake_case splitter shared by the decoder vocabulary, the
//! evaluation metric, and the corpus generator.

/// Splits an identifier into lowercase sub-tokens at camelCase humps,
/// underscores, and digit boundaries.
///
/// # Examples
///
/// ```
/// assert_eq!(minilang::subtokens("computeDiff"), vec!["compute", "diff"]);
/// assert_eq!(minilang::subtokens("parse_HTTP2Header"), vec!["parse", "http", "2", "header"]);
/// assert_eq!(minilang::subtokens(""), Vec::<String>::new());
/// ```
pub fn subtokens(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == ' ' {
            flush(&mut current, &mut out);
            continue;
        }
        let boundary = if current.is_empty() {
            false
        } else if c.is_ascii_uppercase() {
            let prev = chars[i - 1];
            // aB boundary, or the end of an acronym: "HTTPServer" →
            // HTTP | Server (boundary before the S of Server).
            prev.is_ascii_lowercase()
                || prev.is_ascii_digit()
                || (prev.is_ascii_uppercase()
                    && chars.get(i + 1).is_some_and(|n| n.is_ascii_lowercase()))
        } else if c.is_ascii_digit() {
            !chars[i - 1].is_ascii_digit()
        } else {
            chars[i - 1].is_ascii_digit()
        };
        if boundary {
            flush(&mut current, &mut out);
        }
        current.push(c.to_ascii_lowercase());
    }
    flush(&mut current, &mut out);
    out
}

fn flush(current: &mut String, out: &mut Vec<String>) {
    if !current.is_empty() {
        out.push(std::mem::take(current));
    }
}

/// Joins sub-tokens back into a camelCase identifier.
///
/// # Examples
///
/// ```
/// assert_eq!(minilang::join_subtokens(&["compute".into(), "diff".into()]), "computeDiff");
/// ```
pub fn join_subtokens(tokens: &[String]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i == 0 {
            out.push_str(t);
        } else {
            let mut cs = t.chars();
            if let Some(first) = cs.next() {
                out.extend(first.to_uppercase());
                out.push_str(cs.as_str());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_camel_case() {
        assert_eq!(subtokens("bubbleSort"), vec!["bubble", "sort"]);
        assert_eq!(subtokens("isStringRotation"), vec!["is", "string", "rotation"]);
    }

    #[test]
    fn splits_snake_case_and_mixed() {
        assert_eq!(subtokens("find_max_value"), vec!["find", "max", "value"]);
        assert_eq!(subtokens("sum2Elements"), vec!["sum", "2", "elements"]);
    }

    #[test]
    fn handles_acronyms() {
        assert_eq!(subtokens("HTTPServer"), vec!["http", "server"]);
        assert_eq!(subtokens("parseURL"), vec!["parse", "url"]);
    }

    #[test]
    fn single_word_lowercases() {
        assert_eq!(subtokens("Sort"), vec!["sort"]);
    }

    #[test]
    fn join_is_camel_case() {
        assert_eq!(join_subtokens(&["find".into(), "max".into()]), "findMax");
        assert_eq!(join_subtokens(&[]), "");
    }

    #[test]
    fn roundtrip_for_simple_names() {
        for name in ["bubbleSort", "findMax", "sumArray", "reverse"] {
            let toks = subtokens(name);
            assert_eq!(join_subtokens(&toks), name);
        }
    }
}
