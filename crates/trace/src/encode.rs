//! State encoding: from runtime values to the dynamic vocabulary 𝒟_d.
//!
//! §5.1 of the paper: "𝒟_d refers to the set of all values any variable has
//! ever been assigned in any concrete trace of any program in our dataset"
//! and object values are flattened into arrays of primitives via `attr(v)`.
//! This module maps each runtime value to its token sequence:
//!
//! - primitives (int, bool) become a single token; integers of large
//!   magnitude are bucketed by sign and binary order of magnitude so the
//!   vocabulary stays closed,
//! - objects (arrays, strings) are flattened into bounded token sequences
//!   (the fusion layer embeds these with an RNN, Equation 3),
//! - ⊥ (not in scope) becomes the reserved `<BOT>` token, mirroring the
//!   paper's "special symbol for the value of the objects whose definitions
//!   are not accessible".

use interp::{State, Value};

/// Maximum number of elements kept when flattening an object value; longer
/// values are truncated with a trailing [`MORE_TOKEN`].
pub const MAX_FLATTEN: usize = 12;

/// Token for ⊥ (variable not in scope).
pub const BOT_TOKEN: &str = "<BOT>";

/// Token marking a truncated flattening.
pub const MORE_TOKEN: &str = "<MORE>";

/// Token marking an empty object (zero-length array or string).
pub const EMPTY_TOKEN: &str = "<EMPTY>";

/// Magnitude threshold below which integers are their own token. Kept
/// deliberately small: at reproduction scale, aggressive bucketing is what
/// lets value embeddings repeat across programs often enough to be
/// learnable (the paper's corpus is ~3 orders of magnitude larger).
pub const DIRECT_INT_LIMIT: i64 = 8;

/// The encoding of one variable's value in one program state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarEncoding {
    /// A primitive value: a single vocabulary token. The fusion layer uses
    /// the token's embedding directly (`h'ᵥ = xᵥ`).
    Primitive(String),
    /// An object value flattened to `attr(v)[0] … attr(v)[-1]`: the fusion
    /// layer embeds the sequence with an RNN (Equation 3).
    Object(Vec<String>),
}

impl VarEncoding {
    /// All tokens of this encoding, in order.
    pub fn tokens(&self) -> &[String] {
        match self {
            VarEncoding::Primitive(t) => std::slice::from_ref(t),
            VarEncoding::Object(ts) => ts,
        }
    }
}

/// Encodes an integer as a vocabulary token, bucketing large magnitudes.
pub fn encode_int(v: i64) -> String {
    if v.abs() <= DIRECT_INT_LIMIT {
        v.to_string()
    } else {
        let sign = if v < 0 { "N" } else { "P" };
        let mag = 64 - v.unsigned_abs().leading_zeros(); // binary order of magnitude
        format!("<INT_{sign}{mag}>")
    }
}

/// Encodes one (possibly absent) value.
pub fn encode_value(value: Option<&Value>) -> VarEncoding {
    match value {
        None => VarEncoding::Primitive(BOT_TOKEN.to_string()),
        Some(Value::Int(v)) => VarEncoding::Primitive(encode_int(*v)),
        Some(Value::Bool(b)) => VarEncoding::Primitive(b.to_string()),
        Some(Value::Str(s)) => {
            if s.is_empty() {
                return VarEncoding::Object(vec![EMPTY_TOKEN.to_string()]);
            }
            let mut tokens: Vec<String> =
                s.bytes().take(MAX_FLATTEN).map(|b| format!("'{}'", b as char)).collect();
            if s.len() > MAX_FLATTEN {
                tokens.push(MORE_TOKEN.to_string());
            }
            VarEncoding::Object(tokens)
        }
        Some(Value::Array(a)) => {
            if a.is_empty() {
                return VarEncoding::Object(vec![EMPTY_TOKEN.to_string()]);
            }
            let mut tokens: Vec<String> = a.iter().take(MAX_FLATTEN).map(|v| encode_int(*v)).collect();
            if a.len() > MAX_FLATTEN {
                tokens.push(MORE_TOKEN.to_string());
            }
            VarEncoding::Object(tokens)
        }
    }
}

/// Encodes every variable of a program state, in layout order.
pub fn encode_state(state: &State) -> Vec<VarEncoding> {
    state.values.iter().map(|v| encode_value(v.as_ref())).collect()
}

/// The reserved tokens every dynamic vocabulary must contain.
pub fn reserved_tokens() -> Vec<String> {
    vec![BOT_TOKEN.to_string(), MORE_TOKEN.to_string(), EMPTY_TOKEN.to_string()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ints_are_direct_tokens() {
        assert_eq!(encode_int(0), "0");
        assert_eq!(encode_int(-8), "-8");
        assert_eq!(encode_int(8), "8");
    }

    #[test]
    fn large_ints_bucket_by_sign_and_magnitude() {
        assert_eq!(encode_int(100), "<INT_P7>");
        assert_eq!(encode_int(-100), "<INT_N7>");
        assert_eq!(encode_int(9), "<INT_P4>");
        assert_eq!(encode_int(1000), "<INT_P10>");
        // Same bucket for same order of magnitude.
        assert_eq!(encode_int(70), encode_int(127));
        assert_ne!(encode_int(127), encode_int(128));
    }

    #[test]
    fn bot_encodes_reserved_token() {
        assert_eq!(encode_value(None), VarEncoding::Primitive(BOT_TOKEN.into()));
    }

    #[test]
    fn arrays_flatten_to_element_tokens() {
        let enc = encode_value(Some(&Value::Array(vec![8, 5, 1])));
        assert_eq!(
            enc,
            VarEncoding::Object(vec!["8".into(), "5".into(), "1".into()])
        );
    }

    #[test]
    fn long_arrays_truncate_with_marker() {
        let long: Vec<i64> = (0..40).collect();
        let enc = encode_value(Some(&Value::Array(long)));
        let tokens = enc.tokens();
        assert_eq!(tokens.len(), MAX_FLATTEN + 1);
        assert_eq!(tokens.last().unwrap(), MORE_TOKEN);
    }

    #[test]
    fn strings_flatten_to_char_tokens() {
        let enc = encode_value(Some(&Value::Str("ab".into())));
        assert_eq!(enc, VarEncoding::Object(vec!["'a'".into(), "'b'".into()]));
    }

    #[test]
    fn empty_objects_get_empty_token() {
        assert_eq!(
            encode_value(Some(&Value::Array(vec![]))),
            VarEncoding::Object(vec![EMPTY_TOKEN.into()])
        );
        assert_eq!(
            encode_value(Some(&Value::Str(String::new()))),
            VarEncoding::Object(vec![EMPTY_TOKEN.into()])
        );
    }

    #[test]
    fn state_encoding_covers_all_slots() {
        let state = State {
            values: vec![Some(Value::Int(3)), None, Some(Value::Array(vec![1, 2]))],
        };
        let enc = encode_state(&state);
        assert_eq!(enc.len(), 3);
        assert!(matches!(enc[0], VarEncoding::Primitive(_)));
        assert!(matches!(enc[2], VarEncoding::Object(_)));
    }
}
