//! # trace — execution, symbolic, state, and blended traces
//!
//! Implements the formal objects of the paper's Sections 2 and 5.1:
//!
//! - [`ExecutionTrace`] — π = s₀ → (eᵢ → sᵢ)* (Definition 2.1),
//! - [`SymbolicTrace`] — the statement projection σ (Definition 2.2),
//! - [`StateTrace`] — the state projection ε (Definition 2.3),
//! - [`BlendedTrace`] — λ = (⟨eᵢ, Sᵢ⟩ → …)* (Definition 5.1),
//! - [`group_by_path`] — the grouping of concrete executions by program
//!   path used to assemble blended traces (§6.1), and
//! - [`encode`] — the state-to-token encoding that populates the dynamic
//!   vocabulary 𝒟_d, including the `attr(v)` flattening of object values.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use interp::Value;
//! use trace::{group_by_path, ExecutionTrace};
//!
//! let program = minilang::parse(
//!     "fn signOf(x: int) -> int { if (x > 0) { return 1; } return 0; }",
//! )?;
//! let traces: Vec<ExecutionTrace> = [3, -3, 8]
//!     .into_iter()
//!     .map(|x| {
//!         let inputs = vec![Value::Int(x)];
//!         let run = interp::run(&program, &inputs)?;
//!         Ok(ExecutionTrace::from_run(inputs, run))
//!     })
//!     .collect::<Result<_, interp::RuntimeError>>()?;
//!
//! let groups = group_by_path(traces);
//! assert_eq!(groups.len(), 2); // positive path and non-positive path
//! let blended = groups[0].blend(5)?;
//! assert_eq!(blended.concrete_count, 2); // x = 3 and x = 8
//! # Ok(())
//! # }
//! ```

pub mod blended;
pub mod encode;
pub mod execution;
pub mod persist;

pub use blended::{group_by_path, BlendError, BlendedStep, BlendedTrace, PathGroup};
pub use encode::{
    encode_int, encode_state, encode_value, reserved_tokens, VarEncoding, BOT_TOKEN,
    DIRECT_INT_LIMIT, EMPTY_TOKEN, MAX_FLATTEN, MORE_TOKEN,
};
pub use execution::{ExecutionTrace, StateTrace, SymbolicTrace, TraceError};
