//! Blended traces (Definition 5.1) and path grouping.
//!
//! A blended trace λ pairs one symbolic trace σ with the program states the
//! same statements created in several concrete executions of that path:
//! λ = (θᵢ → θᵢ₊₁)* with θᵢ = ⟨eᵢ, Sᵢ⟩, Sᵢ = {s_{i,1} … s_{i,Nε}}.
//!
//! [`group_by_path`] reproduces the paper's §6.1 protocol: "we group
//! concrete executions that traverse the same program path, and then
//! decompose each path into a list of statements".

use crate::execution::{ExecutionTrace, StateTrace, SymbolicTrace};
use interp::State;
use std::collections::HashMap;

/// One ordered pair θᵢ = ⟨eᵢ, Sᵢ⟩ of a blended trace: a path step and the
/// states each grouped concrete execution produced at that step.
#[derive(Debug, Clone, PartialEq)]
pub struct BlendedStep {
    /// Index into the owning trace's symbolic steps (always `i` for the
    /// `i`-th step; kept for clarity when steps are sliced).
    pub index: usize,
    /// The states s_{i,1} … s_{i,Nε}, one per concrete trace.
    pub states: Vec<State>,
}

/// A blended trace λ (Definition 5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct BlendedTrace {
    /// The shared symbolic trace σ.
    pub symbolic: SymbolicTrace,
    /// The ordered pairs θ₁ … θ_{|λ|}.
    pub steps: Vec<BlendedStep>,
    /// How many concrete traces back this blended trace (Nε).
    pub concrete_count: usize,
}

/// Error constructing a blended trace from mismatched inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlendError {
    /// No concrete traces were supplied.
    NoConcreteTraces,
    /// A concrete trace's length differs from the symbolic trace's.
    LengthMismatch {
        /// Index of the offending concrete trace.
        trace: usize,
        /// Its length.
        len: usize,
        /// The symbolic trace's length.
        expected: usize,
    },
}

impl std::fmt::Display for BlendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlendError::NoConcreteTraces => write!(f, "no concrete traces supplied"),
            BlendError::LengthMismatch { trace, len, expected } => {
                write!(f, "concrete trace {trace} has {len} states, path has {expected} steps")
            }
        }
    }
}

impl std::error::Error for BlendError {}

impl BlendedTrace {
    /// Blends a symbolic trace with the state traces of concrete executions
    /// along the same path.
    ///
    /// # Errors
    ///
    /// Returns [`BlendError`] when no concrete traces are given or when a
    /// state trace's length disagrees with the path length (which would
    /// mean it came from a different path).
    pub fn new(
        symbolic: SymbolicTrace,
        concrete: Vec<StateTrace>,
    ) -> Result<BlendedTrace, BlendError> {
        if concrete.is_empty() {
            return Err(BlendError::NoConcreteTraces);
        }
        let expected = symbolic.len();
        for (i, c) in concrete.iter().enumerate() {
            if c.len() != expected {
                return Err(BlendError::LengthMismatch { trace: i, len: c.len(), expected });
            }
        }
        let concrete_count = concrete.len();
        let steps = (0..expected)
            .map(|i| BlendedStep {
                index: i,
                states: concrete.iter().map(|c| c.states[i].clone()).collect(),
            })
            .collect();
        Ok(BlendedTrace { symbolic, steps, concrete_count })
    }

    /// Length |λ| (number of ordered pairs).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns a copy keeping only the first `n` concrete traces — the
    /// §6.1.2 concrete-trace down-sampling operation. `n` is clamped to at
    /// least 1 and at most the available count.
    pub fn with_concrete_limit(&self, n: usize) -> BlendedTrace {
        let n = n.clamp(1, self.concrete_count);
        BlendedTrace {
            symbolic: self.symbolic.clone(),
            steps: self
                .steps
                .iter()
                .map(|s| BlendedStep { index: s.index, states: s.states[..n].to_vec() })
                .collect(),
            concrete_count: n,
        }
    }
}

/// A group of concrete executions that traverse the same program path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathGroup {
    /// The shared path.
    pub symbolic: SymbolicTrace,
    /// The member executions.
    pub traces: Vec<ExecutionTrace>,
}

impl PathGroup {
    /// Blends this group into a [`BlendedTrace`] keeping at most
    /// `max_concrete` members.
    ///
    /// # Errors
    ///
    /// Returns [`BlendError::NoConcreteTraces`] when the group is empty.
    pub fn blend(&self, max_concrete: usize) -> Result<BlendedTrace, BlendError> {
        let concrete: Vec<StateTrace> =
            self.traces.iter().take(max_concrete.max(1)).map(ExecutionTrace::states).collect();
        BlendedTrace::new(self.symbolic.clone(), concrete)
    }
}

/// Groups executions by program path, preserving first-seen path order and
/// within-path insertion order (so results are deterministic given a
/// deterministic input order).
pub fn group_by_path(traces: Vec<ExecutionTrace>) -> Vec<PathGroup> {
    let mut order: Vec<SymbolicTrace> = Vec::new();
    let mut groups: HashMap<SymbolicTrace, Vec<ExecutionTrace>> = HashMap::new();
    for t in traces {
        let key = t.symbolic();
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(t);
    }
    order
        .into_iter()
        .map(|key| {
            let traces = groups.remove(&key).expect("key recorded on first insert");
            PathGroup { symbolic: key, traces }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{run, Value};

    fn exec(src: &str, input: i64) -> ExecutionTrace {
        let p = minilang::parse(src).unwrap();
        let inputs = vec![Value::Int(input)];
        let r = run(&p, &inputs).unwrap();
        ExecutionTrace::from_run(inputs, r)
    }

    const BRANCHY: &str = "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }";

    #[test]
    fn groups_by_path() {
        let traces = vec![exec(BRANCHY, 1), exec(BRANCHY, -1), exec(BRANCHY, 2), exec(BRANCHY, 3)];
        let groups = group_by_path(traces);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].traces.len(), 3); // x>0 seen first
        assert_eq!(groups[1].traces.len(), 1);
    }

    #[test]
    fn blend_pairs_states_stepwise() {
        let traces = vec![exec(BRANCHY, 1), exec(BRANCHY, 2)];
        let groups = group_by_path(traces);
        let blended = groups[0].blend(5).unwrap();
        assert_eq!(blended.concrete_count, 2);
        assert_eq!(blended.len(), 2); // guard + return
        assert_eq!(blended.steps[0].states.len(), 2);
    }

    #[test]
    fn blend_rejects_empty() {
        let g = PathGroup {
            symbolic: SymbolicTrace { steps: vec![] },
            traces: vec![],
        };
        assert_eq!(g.blend(3).unwrap_err(), BlendError::NoConcreteTraces);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let t1 = exec(BRANCHY, 1);
        let t2 = exec(BRANCHY, -1);
        let err = BlendedTrace::new(t1.symbolic(), vec![t1.states(), t2.states()]);
        // Both paths have 2 events here (guard+return), so force a mismatch
        // differently: truncate one state trace.
        let mut short = t1.states();
        short.states.pop();
        let err2 = BlendedTrace::new(t1.symbolic(), vec![short]);
        assert!(matches!(err2.unwrap_err(), BlendError::LengthMismatch { .. }));
        // Same-length different-path blending is (deliberately) not
        // detectable here; grouping upstream prevents it.
        let _ = err;
    }

    #[test]
    fn concrete_limit_downsamples() {
        let traces = vec![exec(BRANCHY, 1), exec(BRANCHY, 2), exec(BRANCHY, 3)];
        let blended = group_by_path(traces)[0].blend(3).unwrap();
        let reduced = blended.with_concrete_limit(1);
        assert_eq!(reduced.concrete_count, 1);
        assert!(reduced.steps.iter().all(|s| s.states.len() == 1));
        // Clamped from below.
        assert_eq!(blended.with_concrete_limit(0).concrete_count, 1);
        // Clamped from above.
        assert_eq!(blended.with_concrete_limit(99).concrete_count, 3);
    }
}
