//! Execution traces (Definition 2.1) and their projections.
//!
//! An execution trace π is the sequence s₀ → (eᵢ → sᵢ)*. Its projection
//! onto statements is the *symbolic trace* σ (Definition 2.2); its
//! projection onto states is the *state trace* ε (Definition 2.3) — see
//! Figure 3 of the paper.

use interp::{EventKind, PathStep, RunResult, State, TraceEvent, Value};
use minilang::{Program, StmtId};
use std::fmt;

/// Why a symbolic trace cannot be resolved against a program.
///
/// The generation pipeline lints programs before tracing, so these only
/// arise when a trace is replayed against the *wrong* program — which a
/// library API should report, not abort on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// A path step references a statement id the program does not contain.
    UnknownStmt(StmtId),
    /// A guard event landed on a statement that is not a branch.
    GuardOnNonBranch(StmtId),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownStmt(id) => {
                write!(f, "trace step {id} not in program (trace from a different program?)")
            }
            TraceError::GuardOnNonBranch(id) => {
                write!(f, "guard event on non-branching statement {id}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// An execution trace π (Definition 2.1): the initial state s₀ followed by
/// the statement/state event sequence of one concrete run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// The initial program state s₀.
    pub initial_state: State,
    /// The events (eᵢ, sᵢ)* in execution order.
    pub events: Vec<TraceEvent>,
    /// The run's return value (used by the dataset filter and by the
    /// COSET-style correctness check).
    pub return_value: Value,
    /// The concrete inputs that produced this trace.
    pub inputs: Vec<Value>,
}

impl ExecutionTrace {
    /// Builds an execution trace from an interpreter result.
    pub fn from_run(inputs: Vec<Value>, run: RunResult) -> ExecutionTrace {
        ExecutionTrace {
            initial_state: run.initial_state,
            events: run.events,
            return_value: run.return_value,
            inputs,
        }
    }

    /// The symbolic-trace projection σ (Definition 2.2).
    pub fn symbolic(&self) -> SymbolicTrace {
        SymbolicTrace { steps: self.events.iter().map(TraceEvent::path_step).collect() }
    }

    /// The state-trace projection ε (Definition 2.3).
    pub fn states(&self) -> StateTrace {
        StateTrace { states: self.events.iter().map(|e| e.state.clone()).collect() }
    }

    /// Number of events (the trace length |π| excluding s₀).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no statement executed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A symbolic trace σ (Definition 2.2): the sequence of statements visited
/// along one program path. Two runs traverse the same path iff their
/// symbolic traces are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymbolicTrace {
    /// The path steps: statement ids with guard directions.
    pub steps: Vec<PathStep>,
}

impl SymbolicTrace {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The distinct statements on this path.
    pub fn stmt_set(&self) -> std::collections::BTreeSet<StmtId> {
        self.steps.iter().map(|s| s.stmt).collect()
    }

    /// The distinct source lines this path covers, resolved against the
    /// program the trace came from.
    ///
    /// Errors if a step references a statement id not present in `program`
    /// (i.e. the trace belongs to a different program).
    pub fn line_set(
        &self,
        program: &Program,
    ) -> Result<std::collections::BTreeSet<u32>, TraceError> {
        let stmts = program.statements();
        self.steps
            .iter()
            .map(|s| {
                stmts
                    .iter()
                    .find(|st| st.id == s.stmt)
                    .map(|st| st.line)
                    .ok_or(TraceError::UnknownStmt(s.stmt))
            })
            .collect()
    }

    /// The labelled statement trees along this path — what the fusion
    /// layer's TreeLSTM embeds. Guards become [`minilang::guard_tree`]s of
    /// the branching statement's condition; simple statements become their
    /// own [`minilang::stmt_tree`]s.
    ///
    /// Errors if the trace does not belong to `program`.
    pub fn stmt_trees(&self, program: &Program) -> Result<Vec<minilang::AstTree>, TraceError> {
        let stmts = program.statements();
        self.steps
            .iter()
            .map(|step| {
                let stmt = stmts
                    .iter()
                    .find(|st| st.id == step.stmt)
                    .ok_or(TraceError::UnknownStmt(step.stmt))?;
                Ok(match step.kind {
                    EventKind::Exec => minilang::stmt_tree(stmt),
                    EventKind::Guard { taken } => {
                        let cond = match &stmt.kind {
                            minilang::StmtKind::If { cond, .. }
                            | minilang::StmtKind::While { cond, .. }
                            | minilang::StmtKind::For { cond, .. } => cond,
                            _ => return Err(TraceError::GuardOnNonBranch(step.stmt)),
                        };
                        minilang::guard_tree(cond, taken)
                    }
                })
            })
            .collect()
    }
}

/// A state trace ε (Definition 2.3): the sequence of program states created
/// in one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StateTrace {
    /// The states s₁ … sₙ (excluding the initial state).
    pub states: Vec<State>,
}

impl StateTrace {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the trace has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::run;

    fn trace_of(src: &str, inputs: Vec<Value>) -> (Program, ExecutionTrace) {
        let p = minilang::parse(src).unwrap();
        let r = run(&p, &inputs).unwrap();
        let t = ExecutionTrace::from_run(inputs, r);
        (p, t)
    }

    #[test]
    fn projections_partition_the_execution_trace() {
        let (_, t) = trace_of(
            "fn f(x: int) -> int { let y: int = x * 2; return y; }",
            vec![Value::Int(3)],
        );
        let sym = t.symbolic();
        let st = t.states();
        assert_eq!(sym.len(), t.len());
        assert_eq!(st.len(), t.len());
        for (i, e) in t.events.iter().enumerate() {
            assert_eq!(sym.steps[i], e.path_step());
            assert_eq!(st.states[i], e.state);
        }
    }

    #[test]
    fn same_path_means_equal_symbolic_traces() {
        let src = "fn f(x: int) -> int { if (x > 0) { return 1; } return 0; }";
        let (_, t1) = trace_of(src, vec![Value::Int(5)]);
        let (_, t2) = trace_of(src, vec![Value::Int(99)]);
        let (_, t3) = trace_of(src, vec![Value::Int(-1)]);
        assert_eq!(t1.symbolic(), t2.symbolic());
        assert_ne!(t1.symbolic(), t3.symbolic());
    }

    #[test]
    fn stmt_trees_match_symbolic_steps() {
        let (p, t) = trace_of(
            "fn f(x: int) -> int { if (x > 0) { x += 1; } return x; }",
            vec![Value::Int(2)],
        );
        let sym = t.symbolic();
        let trees = sym.stmt_trees(&p).unwrap();
        assert_eq!(trees.len(), sym.len());
        // First event is the guard, taken.
        assert_eq!(
            trees[0].label,
            minilang::NodeLabel::NonTerminal(minilang::AstNodeType::GuardTrue)
        );
    }

    #[test]
    fn line_set_resolves_against_program() {
        let src = "fn f(x: int) -> int {\nif (x > 0) {\nreturn 1;\n}\nreturn 0;\n}";
        let (p, t) = trace_of(src, vec![Value::Int(1)]);
        let lines = t.symbolic().line_set(&p).unwrap();
        assert!(lines.contains(&2) && lines.contains(&3) && !lines.contains(&5));
    }

    #[test]
    fn foreign_traces_are_errors_not_aborts() {
        // Resolve a trace against a program it did not come from: the
        // larger program's statement ids are absent from the smaller one.
        let (_, t) = trace_of(
            "fn f(x: int) -> int { let y: int = x * 2; let z: int = y + 1; return z; }",
            vec![Value::Int(3)],
        );
        let other = minilang::parse("fn g() -> int { return 0; }").unwrap();
        let sym = t.symbolic();
        let line_err = sym.line_set(&other).unwrap_err();
        assert!(matches!(line_err, TraceError::UnknownStmt(_)), "{line_err}");
        assert_eq!(sym.stmt_trees(&other).unwrap_err(), line_err);
        assert!(line_err.to_string().contains("not in program"));
    }
}
