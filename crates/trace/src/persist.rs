//! `LGRS1` payload codec for blended path groups.
//!
//! The artifact store caches the expensive half of the pipeline — the
//! per-program [`PathGroup`] list that `randgen::generate_grouped`
//! produces by running the tracing interpreter over sampled inputs.
//! This module defines the byte grammar of those payloads (kind
//! `TraceGroups` / `CorpusOutcome` in `store::ArtifactKind`) on top of
//! the store's bounds-checked cursors, so a reload is bitwise-faithful:
//! every state slot, guard direction, return value, and input vector
//! survives exactly, and any corruption surfaces as a typed
//! [`StoreError`], never a panic.
//!
//! Grammar (integers little-endian, strings length-prefixed):
//!
//! ```text
//! groups  := ngroups:u32 group*
//! group   := nsteps:u32 step* ntraces:u32 trace*
//! step    := stmt:u32 kind
//! kind    := 0 | 1 taken:u8
//! trace   := state nevents:u32 event* value nvals:u32 value*
//! event   := stmt:u32 line:u32 kind state
//! state   := nslots:u32 slot*
//! slot    := 0 | 1 value
//! value   := 0 i64 | 1 u8 | 2 str | 3 len:u32 i64*
//! ```

use crate::blended::PathGroup;
use crate::execution::{ExecutionTrace, SymbolicTrace};
use interp::{EventKind, PathStep, State, TraceEvent, Value};
use store::{ByteReader, ByteWriter, StoreError};

fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(0);
            w.i64(*i);
        }
        Value::Bool(b) => {
            w.u8(1);
            w.u8(u8::from(*b));
        }
        Value::Str(s) => {
            w.u8(2);
            w.str(s);
        }
        Value::Array(a) => {
            w.u8(3);
            w.u32(a.len() as u32);
            for &x in a {
                w.i64(x);
            }
        }
    }
}

fn read_value(r: &mut ByteReader) -> Result<Value, StoreError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            _ => Err(StoreError::BadRecord),
        },
        2 => Ok(Value::Str(r.str()?)),
        3 => {
            let n = r.u32()? as usize;
            let mut a = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                a.push(r.i64()?);
            }
            Ok(Value::Array(a))
        }
        _ => Err(StoreError::BadRecord),
    }
}

fn write_state(w: &mut ByteWriter, s: &State) {
    w.u32(s.values.len() as u32);
    for slot in &s.values {
        match slot {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                write_value(w, v);
            }
        }
    }
}

fn read_state(r: &mut ByteReader) -> Result<State, StoreError> {
    let n = r.u32()? as usize;
    let mut values = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        values.push(match r.u8()? {
            0 => None,
            1 => Some(read_value(r)?),
            _ => return Err(StoreError::BadRecord),
        });
    }
    Ok(State { values })
}

fn write_kind(w: &mut ByteWriter, k: EventKind) {
    match k {
        EventKind::Exec => w.u8(0),
        EventKind::Guard { taken } => {
            w.u8(1);
            w.u8(u8::from(taken));
        }
    }
}

fn read_kind(r: &mut ByteReader) -> Result<EventKind, StoreError> {
    match r.u8()? {
        0 => Ok(EventKind::Exec),
        1 => match r.u8()? {
            0 => Ok(EventKind::Guard { taken: false }),
            1 => Ok(EventKind::Guard { taken: true }),
            _ => Err(StoreError::BadRecord),
        },
        _ => Err(StoreError::BadRecord),
    }
}

fn write_trace(w: &mut ByteWriter, t: &ExecutionTrace) {
    write_state(w, &t.initial_state);
    w.u32(t.events.len() as u32);
    for e in &t.events {
        w.stmt(e.stmt);
        w.u32(e.line);
        write_kind(w, e.kind);
        write_state(w, &e.state);
    }
    write_value(w, &t.return_value);
    w.u32(t.inputs.len() as u32);
    for v in &t.inputs {
        write_value(w, v);
    }
}

fn read_trace(r: &mut ByteReader) -> Result<ExecutionTrace, StoreError> {
    let initial_state = read_state(r)?;
    let nevents = r.u32()? as usize;
    let mut events = Vec::with_capacity(nevents.min(1 << 20));
    for _ in 0..nevents {
        let stmt = r.stmt()?;
        let line = r.u32()?;
        let kind = read_kind(r)?;
        let state = read_state(r)?;
        events.push(TraceEvent { stmt, line, kind, state });
    }
    let return_value = read_value(r)?;
    let ninputs = r.u32()? as usize;
    let mut inputs = Vec::with_capacity(ninputs.min(1 << 20));
    for _ in 0..ninputs {
        inputs.push(read_value(r)?);
    }
    Ok(ExecutionTrace { initial_state, events, return_value, inputs })
}

/// Serializes blended path groups into an artifact payload.
#[must_use]
pub fn groups_to_bytes(groups: &[PathGroup]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(groups.len() as u32);
    for g in groups {
        w.u32(g.symbolic.steps.len() as u32);
        for step in &g.symbolic.steps {
            w.stmt(step.stmt);
            write_kind(&mut w, step.kind);
        }
        w.u32(g.traces.len() as u32);
        for t in &g.traces {
            write_trace(&mut w, t);
        }
    }
    w.into_bytes()
}

/// Parses an artifact payload written by [`groups_to_bytes`].
///
/// # Errors
///
/// [`StoreError::Truncated`] when the payload ends mid-record,
/// [`StoreError::TrailingBytes`] when data follows the last group, and
/// [`StoreError::BadRecord`] for an invalid tag byte.
pub fn groups_from_bytes(buf: &[u8]) -> Result<Vec<PathGroup>, StoreError> {
    let mut r = ByteReader::new(buf);
    let groups = read_groups(&mut r)?;
    r.finish()?;
    Ok(groups)
}

/// Reads a group list from an open cursor (for payloads that embed
/// groups alongside other fields, like datagen's corpus outcomes).
///
/// # Errors
///
/// Same as [`groups_from_bytes`], minus the trailing-bytes check.
pub fn read_groups(r: &mut ByteReader) -> Result<Vec<PathGroup>, StoreError> {
    let ngroups = r.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups.min(1 << 20));
    for _ in 0..ngroups {
        let nsteps = r.u32()? as usize;
        let mut steps = Vec::with_capacity(nsteps.min(1 << 20));
        for _ in 0..nsteps {
            let stmt = r.stmt()?;
            let kind = read_kind(r)?;
            steps.push(PathStep { stmt, kind });
        }
        let ntraces = r.u32()? as usize;
        let mut traces = Vec::with_capacity(ntraces.min(1 << 20));
        for _ in 0..ntraces {
            traces.push(read_trace(r)?);
        }
        groups.push(PathGroup { symbolic: SymbolicTrace { steps }, traces });
    }
    Ok(groups)
}

/// Writes a group list into an open writer (the inverse of
/// [`read_groups`]).
pub fn write_groups(w: &mut ByteWriter, groups: &[PathGroup]) {
    w.raw(&groups_to_bytes(groups));
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::StmtId;

    fn sample_groups() -> Vec<PathGroup> {
        let state = |vals: Vec<Option<Value>>| State { values: vals };
        let t = ExecutionTrace {
            initial_state: state(vec![Some(Value::Int(4)), None]),
            events: vec![
                TraceEvent {
                    stmt: StmtId(0),
                    line: 2,
                    kind: EventKind::Guard { taken: true },
                    state: state(vec![Some(Value::Int(4)), Some(Value::Bool(false))]),
                },
                TraceEvent {
                    stmt: StmtId(1),
                    line: 3,
                    kind: EventKind::Exec,
                    state: state(vec![
                        Some(Value::Array(vec![1, -2, 3])),
                        Some(Value::Str("höi".into())),
                    ]),
                },
            ],
            return_value: Value::Int(-9),
            inputs: vec![Value::Int(4), Value::Array(vec![])],
        };
        vec![
            PathGroup {
                symbolic: SymbolicTrace {
                    steps: vec![
                        PathStep { stmt: StmtId(0), kind: EventKind::Guard { taken: true } },
                        PathStep { stmt: StmtId(1), kind: EventKind::Exec },
                    ],
                },
                traces: vec![t.clone(), t],
            },
            PathGroup { symbolic: SymbolicTrace { steps: vec![] }, traces: vec![] },
        ]
    }

    #[test]
    fn roundtrip_is_lossless() {
        let groups = sample_groups();
        let bytes = groups_to_bytes(&groups);
        assert_eq!(groups_from_bytes(&bytes).unwrap(), groups);
    }

    #[test]
    fn empty_roundtrips() {
        assert_eq!(groups_from_bytes(&groups_to_bytes(&[])).unwrap(), Vec::<PathGroup>::new());
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = groups_to_bytes(&sample_groups());
        for cut in 0..bytes.len() {
            match groups_from_bytes(&bytes[..cut]) {
                Err(StoreError::Truncated) | Err(StoreError::BadRecord) => {}
                other => panic!("prefix of {cut} bytes: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut bytes = groups_to_bytes(&sample_groups());
        bytes.push(7);
        assert_eq!(groups_from_bytes(&bytes).unwrap_err(), StoreError::TrailingBytes);
    }

    #[test]
    fn bad_tags_are_typed() {
        let groups = sample_groups();
        let mut bytes = groups_to_bytes(&groups);
        // The first kind tag byte lives right after ngroups, nsteps,
        // and the first stmt id.
        let tag_at = 4 + 4 + 4;
        bytes[tag_at] = 9;
        assert_eq!(groups_from_bytes(&bytes).unwrap_err(), StoreError::BadRecord);
    }
}
