//! Property tests for checkpoint serialization: any parameter store —
//! including empty stores, empty tensors, and 0×N shapes — survives the
//! binary round trip bitwise, and the text and binary formats convert
//! into each other losslessly.

use proptest::collection::vec;
use proptest::prelude::*;
use tensor::{
    binary_to_text, load_store, load_store_binary, save_store, save_store_binary, text_to_binary,
    ParamStore, Tensor,
};

/// Bitwise fingerprint of a store: names, shapes, and raw value bits.
fn bits(store: &ParamStore) -> Vec<(String, usize, usize, Vec<u32>)> {
    store
        .iter()
        .map(|p| {
            (
                p.name.clone(),
                p.value.rows(),
                p.value.cols(),
                p.value.data().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

/// Builds a store from drawn shapes/values, giving every parameter a
/// distinct (occasionally awkward) name.
fn store_of(shapes: &[(usize, usize)], raw: &[f32]) -> ParamStore {
    let mut store = ParamStore::new();
    let mut taken = 0usize;
    for (i, &(rows, cols)) in shapes.iter().enumerate() {
        let len = rows * cols;
        let mut values: Vec<f32> = raw.iter().cycle().skip(taken).take(len).copied().collect();
        values.resize(len, 0.0);
        taken += len;
        let name = match i % 4 {
            0 => format!("layer{i}.w"),
            1 => format!("odd name {i}"),
            2 => format!("pct%{i}"),
            _ => format!("b{i}"),
        };
        store.add(name, Tensor::from_vec(rows, cols, values));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn binary_roundtrip_is_bitwise_identity(
        rows in proptest::collection::vec(0usize..5, 0..=6),
        cols in proptest::collection::vec(0usize..5, 0..=6),
        values in vec(-1.0e9f32..=1.0e9, 0..=40),
        scale in proptest::sample::select(vec![1.0f32, 1.0e-30, 1.0e30, f32::MIN_POSITIVE]),
    ) {
        let shapes: Vec<(usize, usize)> =
            rows.iter().zip(&cols).map(|(&r, &c)| (r, c)).collect();
        let scaled: Vec<f32> = values.iter().map(|v| v * scale).collect();
        let store = store_of(&shapes, &scaled);

        let blob = save_store_binary(&store);
        let loaded = load_store_binary(&blob).expect("own output must load");
        prop_assert_eq!(bits(&store), bits(&loaded));
    }

    #[test]
    fn text_and_binary_formats_agree(
        rows in proptest::collection::vec(0usize..4, 0..=4),
        cols in proptest::collection::vec(1usize..4, 0..=4),
        values in vec(-1.0e6f32..=1.0e6, 0..=24),
    ) {
        let shapes: Vec<(usize, usize)> =
            rows.iter().zip(&cols).map(|(&r, &c)| (r, c)).collect();
        let store = store_of(&shapes, &values);

        // store → text → binary → store is still bitwise the original …
        let text = save_store(&store);
        let blob = text_to_binary(&text).expect("text converts");
        prop_assert_eq!(bits(&store), bits(&load_store_binary(&blob).unwrap()));

        // … and binary → text re-parses to the same store too.
        let text2 = binary_to_text(&save_store_binary(&store)).expect("binary converts");
        prop_assert_eq!(bits(&store), bits(&load_store(&text2).unwrap()));
    }
}
