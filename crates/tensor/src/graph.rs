//! The computation graph with reverse-mode automatic differentiation.
//!
//! A [`Graph`] is built per example (define-by-run, like the
//! TensorFlow-eager/PyTorch style the paper's models would use today).
//! Leaves are constants ([`Graph::input`]), whole parameters
//! ([`Graph::param`]) or single embedding rows ([`Graph::param_row`]);
//! interior nodes are the operators the paper's architecture needs: affine
//! maps, pointwise nonlinearities, concatenation, softmax/attention
//! weighting, max-pooling over path embeddings, and cross-entropy loss.
//!
//! ## Arena reuse
//!
//! Rather than constructing a fresh graph per example, the hot paths hold
//! one long-lived `Graph` per worker and call [`Graph::reset`] between
//! examples: node and value storage keep their capacity, every value
//! buffer is parked in an internal [`BufferPool`], and the next example's
//! forward and backward passes are served from that pool — near-zero heap
//! allocation in steady state (DESIGN.md §2b).
//!
//! ## Differentiation
//!
//! Three entry points share one reverse sweep: [`Graph::backward_into`]
//! computes a detached [`ParamGrads`] against a shared `&ParamStore` with
//! all intermediate gradient storage drawn from the pool (the form the
//! data-parallel training engine uses), [`Graph::backward_grads`] is the
//! borrow-friendly `&self` variant that allocates its scratch, and
//! [`Graph::backward`] immediately folds the gradients into a
//! `&mut ParamStore`. All three produce bitwise-identical gradients.

use crate::pool::BufferPool;
use crate::store::{ParamGrads, ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

impl VarId {
    /// The node's position in its graph (nodes are numbered in push
    /// order; spans of consecutive indices are what [`Graph::replay_span`]
    /// copies).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The pointwise nonlinearity a fused gate applies, chosen so the fused
/// kernels compute exactly the same scalar expressions as the standalone
/// [`Graph::tanh`] / [`Graph::sigmoid`] nodes they replace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Act {
    #[inline]
    fn apply(self, v: f32) -> f32 {
        match self {
            Act::Tanh => v.tanh(),
            Act::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }

    /// Derivative expressed through the activation's own output `y`, the
    /// same expressions the standalone Tanh/Sigmoid backward arms use.
    #[inline]
    fn dfdy(self, gv: f32, yv: f32) -> f32 {
        match self {
            Act::Tanh => gv * (1.0 - yv * yv),
            Act::Sigmoid => gv * yv * (1.0 - yv),
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    ParamRow(ParamId, usize),
    MatVec(VarId, VarId),
    Affine(VarId, VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    Scale(VarId, f32),
    MulScalar(VarId, VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    Relu(VarId),
    Concat(Vec<VarId>),
    Dot(VarId, VarId),
    StackScalars(Vec<VarId>),
    Softmax(VarId),
    Sum(VarId),
    Mean(VarId),
    SumVecs(Vec<VarId>),
    MaxPool(Vec<VarId>),
    WeightedSum { items: Vec<VarId>, weights: VarId },
    CrossEntropy { logits: VarId, target: usize },
    /// Fused recurrent gate `act((w·x + u·h) + b)` — one node for the
    /// five-node matvec/matvec/add/add/activation chain every RNN step and
    /// TreeLSTM gate used to push.
    Gate { w: VarId, x: VarId, u: VarId, h: VarId, b: VarId, act: Act },
    /// [`Op::Gate`] over a shared `w·x` and one hidden vector per row:
    /// row `j` is `act((w·x + u·hs[j]) + b)` (TreeLSTM child forget gates).
    GateBatch { w: VarId, x: VarId, u: VarId, hs: Vec<VarId>, b: VarId, act: Act },
    /// `base + Σⱼ scales[j,·] ⊙ items[j]` in ascending-`j` order — the
    /// TreeLSTM cell-state accumulation, fused across children.
    FmaRows { base: VarId, scales: VarId, items: Vec<VarId> },
    /// `k` equal-length vectors packed as the rows of a `k × n` panel.
    Pack(Vec<VarId>),
    /// Batch-major fused GEMM: row `j` of the `k × m` result is
    /// `w · xs[j,·] (+ b)`, all computed in one packed kernel call
    /// ([`crate::tensor::gemm_batch`]).
    AffineBatch { w: VarId, xs: VarId, b: Option<VarId> },
    /// Adds a vector to every row of a panel.
    AddRows(VarId, VarId),
    /// Per-row dot products of a `k × n` panel with an `n`-vector.
    RowDots(VarId, VarId),
    /// Extracts row `j` of a panel as a column vector.
    BatchItem(VarId, usize),
}

/// A define-by-run computation graph.
#[derive(Debug, Default)]
pub struct Graph {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    /// Memo for [`Graph::param_row`]: repeated lookups of the same
    /// embedding row (ubiquitous in trace encodings — the same variable
    /// or opcode appears many times per example) reuse one node instead
    /// of cloning the row again. Invalidated by [`Graph::reset`], since
    /// parameter values change between examples (optimizer steps).
    row_cache: HashMap<(ParamId, usize), VarId>,
    /// Memo for [`Graph::param`]: the same weight matrix is used by every
    /// gate of every step, so caching the leaf node removes both the
    /// duplicate nodes and the per-use whole-matrix copy (historically the
    /// single largest memcpy source on the tape). Invalidated by
    /// [`Graph::reset`] for the same reason as `row_cache`. Caching is
    /// gradient-exact: each use's contribution accumulates into the shared
    /// node's slot in the same reverse-tape order the per-use nodes would
    /// have been visited, so the final parameter gradient is bitwise
    /// unchanged.
    param_cache: HashMap<ParamId, VarId>,
    /// Recycled storage for node values and backward temporaries.
    pool: BufferPool,
    /// Reusable per-node gradient table for [`Graph::backward_into`].
    grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Clears the graph for the next example while retaining capacity:
    /// every node value's storage is parked in the internal buffer pool,
    /// and the `param_row` memo is invalidated (parameter values may have
    /// changed since the rows were cached).
    pub fn reset(&mut self) {
        for t in self.values.drain(..) {
            self.pool.put(t.into_data());
        }
        self.ops.clear();
        self.row_cache.clear();
        self.param_cache.clear();
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g.into_data());
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The forward value of `id`.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.values[id.0]
    }

    /// The [`VarId`] at node position `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn var(&self, index: usize) -> VarId {
        assert!(index < self.ops.len(), "node index {index} out of {}", self.ops.len());
        VarId(index)
    }

    /// Number of buffers currently parked in the internal pool (a
    /// diagnostic for arena-reuse tests and benches).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.buffers()
    }

    /// Pool takes that fell back to a fresh heap allocation (a
    /// diagnostic: in steady state this stops growing).
    pub fn pool_misses(&self) -> u64 {
        self.pool.misses()
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.ops.push(op);
        self.values.push(value);
        VarId(self.ops.len() - 1)
    }

    /// A pooled buffer with unspecified contents; every caller overwrites
    /// all `len` elements before the tensor is published.
    fn buf(&mut self, len: usize) -> Vec<f32> {
        self.pool.take(len)
    }

    /// A constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(Op::Input, value)
    }

    /// A constant all-zero leaf served from the pool — the allocation-free
    /// way to build RNN zero states and padding vectors.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> VarId {
        let data = self.pool.take_zeroed(rows * cols);
        self.push(Op::Input, Tensor::from_vec(rows, cols, data))
    }

    /// A leaf bound to a whole parameter; its gradient accumulates into
    /// the store on [`Graph::backward`]. Repeated lookups within one graph
    /// return the same node (parameters are constant within a forward
    /// pass; the cache is invalidated by [`Graph::reset`]).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        if let Some(&cached) = self.param_cache.get(&id) {
            return cached;
        }
        let p = &store.get(id).value;
        let (rows, cols) = (p.rows(), p.cols());
        let mut data = self.buf(p.len());
        data.copy_from_slice(p.data());
        let var = self.push(Op::Param(id), Tensor::from_vec(rows, cols, data));
        self.param_cache.insert(id, var);
        var
    }

    /// A leaf bound to one row of a parameter matrix, as a column vector —
    /// the embedding-lookup primitive.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn param_row(&mut self, store: &ParamStore, id: ParamId, row: usize) -> VarId {
        if let Some(&cached) = self.row_cache.get(&(id, row)) {
            return cached;
        }
        let p = &store.get(id).value;
        assert!(row < p.rows(), "param_row {row} out of {} rows", p.rows());
        let d = p.cols();
        let mut data = self.pool.take(d);
        data.copy_from_slice(&store.get(id).value.data()[row * d..(row + 1) * d]);
        let var = self.push(Op::ParamRow(id, row), Tensor::vector(data));
        self.row_cache.insert((id, row), var);
        var
    }

    /// Matrix–vector product.
    pub fn matvec(&mut self, w: VarId, x: VarId) -> VarId {
        let mut out = self.buf(self.values[w.0].rows());
        self.values[w.0].matvec_into(&self.values[x.0], &mut out);
        let value = Tensor::vector(out);
        self.push(Op::MatVec(w, x), value)
    }

    /// Fused affine map `w · x + b` (one kernel pass, no intermediate
    /// product node) — the workhorse of every linear/GRU/LSTM layer.
    pub fn affine(&mut self, w: VarId, x: VarId, b: VarId) -> VarId {
        let mut out = self.buf(self.values[w.0].rows());
        self.values[w.0].affine_into(&self.values[x.0], &self.values[b.0], &mut out);
        let value = Tensor::vector(out);
        self.push(Op::Affine(w, x, b), value)
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let (av, bv) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(av.len(), bv.len(), "add shape mismatch");
        for ((d, x), y) in data.iter_mut().zip(av.data()).zip(bv.data()) {
            *d = x + y;
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let (av, bv) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(av.len(), bv.len(), "sub shape mismatch");
        for ((d, x), y) in data.iter_mut().zip(av.data()).zip(bv.data()) {
            *d = x - y;
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let (av, bv) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(av.len(), bv.len(), "mul shape mismatch");
        for ((d, x), y) in data.iter_mut().zip(av.data()).zip(bv.data()) {
            *d = x * y;
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Mul(a, b), value)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let av = &self.values[a.0];
        for (d, x) in data.iter_mut().zip(av.data()) {
            *d = x * c;
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Scale(a, c), value)
    }

    /// Multiplication of a vector by a 1×1 graph scalar.
    pub fn mul_scalar(&mut self, v: VarId, s: VarId) -> VarId {
        let mut data = self.buf(self.values[v.0].len());
        let sv = self.values[s.0].item();
        let vv = &self.values[v.0];
        for (d, x) in data.iter_mut().zip(vv.data()) {
            *d = x * sv;
        }
        let value = Tensor::from_vec(vv.rows(), vv.cols(), data);
        self.push(Op::MulScalar(v, s), value)
    }

    /// Pointwise `tanh`.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let av = &self.values[a.0];
        for (d, x) in data.iter_mut().zip(av.data()) {
            *d = x.tanh();
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Tanh(a), value)
    }

    /// Pointwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let av = &self.values[a.0];
        for (d, x) in data.iter_mut().zip(av.data()) {
            *d = 1.0 / (1.0 + (-x).exp());
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Sigmoid(a), value)
    }

    /// Pointwise rectifier.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let av = &self.values[a.0];
        for (d, x) in data.iter_mut().zip(av.data()) {
            *d = x.max(0.0);
        }
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Relu(a), value)
    }

    /// Concatenation of column vectors.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or a part is not a vector.
    pub fn concat(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat of zero vectors");
        let total: usize = parts.iter().map(|p| self.values[p.0].len()).sum();
        let mut data = self.buf(total);
        let mut offset = 0;
        for p in parts {
            let v = &self.values[p.0];
            assert!(v.is_vector(), "concat parts must be vectors");
            data[offset..offset + v.len()].copy_from_slice(v.data());
            offset += v.len();
        }
        self.push(Op::Concat(parts.to_vec()), Tensor::vector(data))
    }

    /// Dot product of two equal-length vectors, as a 1×1 tensor.
    pub fn dot(&mut self, a: VarId, b: VarId) -> VarId {
        let mut data = self.buf(1);
        data[0] = self.values[a.0].dot(&self.values[b.0]);
        self.push(Op::Dot(a, b), Tensor::from_vec(1, 1, data))
    }

    /// Stacks 1×1 scalars into a vector.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or an entry is not 1×1.
    pub fn stack_scalars(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "stack of zero scalars");
        let mut data = self.buf(parts.len());
        for (d, p) in data.iter_mut().zip(parts) {
            *d = self.values[p.0].item();
        }
        self.push(Op::StackScalars(parts.to_vec()), Tensor::vector(data))
    }

    /// Numerically-stable softmax over a vector.
    pub fn softmax(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(self.values[a.0].len());
        let av = &self.values[a.0];
        softmax_into(av.data(), &mut data);
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Softmax(a), value)
    }

    /// Sum of all elements, as a 1×1 tensor.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(1);
        data[0] = self.values[a.0].data().iter().sum();
        self.push(Op::Sum(a), Tensor::from_vec(1, 1, data))
    }

    /// Mean of all elements, as a 1×1 tensor.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let mut data = self.buf(1);
        let av = &self.values[a.0];
        data[0] = av.data().iter().sum::<f32>() / av.len() as f32;
        self.push(Op::Mean(a), Tensor::from_vec(1, 1, data))
    }

    /// Elementwise sum of same-shaped vectors (e.g. TreeLSTM child sums).
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes differ.
    pub fn sum_vecs(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "sum of zero vectors");
        let mut data = self.buf(self.values[parts[0].0].len());
        let first = &self.values[parts[0].0];
        data.copy_from_slice(first.data());
        let (rows, cols) = (first.rows(), first.cols());
        for p in &parts[1..] {
            let v = &self.values[p.0];
            assert_eq!(v.len(), data.len(), "sum_vecs shape mismatch");
            for (d, x) in data.iter_mut().zip(v.data()) {
                *d += x;
            }
        }
        self.push(Op::SumVecs(parts.to_vec()), Tensor::from_vec(rows, cols, data))
    }

    /// Elementwise max over same-shaped vectors — the paper's
    /// programs-embedding pooling layer.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes differ.
    pub fn max_pool(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "max_pool of zero vectors");
        let mut data = self.buf(self.values[parts[0].0].len());
        let first = &self.values[parts[0].0];
        data.copy_from_slice(first.data());
        let (rows, cols) = (first.rows(), first.cols());
        for p in &parts[1..] {
            let v = &self.values[p.0];
            assert_eq!(v.len(), data.len(), "max_pool shape mismatch");
            for (d, x) in data.iter_mut().zip(v.data()) {
                if *x > *d {
                    *d = *x;
                }
            }
        }
        self.push(Op::MaxPool(parts.to_vec()), Tensor::from_vec(rows, cols, data))
    }

    /// `Σᵢ weights[i] · items[i]` — the attention-weighted combination used
    /// by the fusion layer and the decoder context vector.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty or `weights` is not an `items.len()`
    /// vector.
    pub fn weighted_sum(&mut self, items: &[VarId], weights: VarId) -> VarId {
        assert!(!items.is_empty(), "weighted_sum of zero items");
        let len = self.values[items[0].0].len();
        let mut data = self.pool.take_zeroed(len);
        let wv = &self.values[weights.0];
        assert_eq!(wv.len(), items.len(), "weights/items length mismatch");
        let (rows, cols) = (self.values[items[0].0].rows(), self.values[items[0].0].cols());
        for (i, item) in items.iter().enumerate() {
            let alpha = wv.data()[i];
            let v = &self.values[item.0];
            assert_eq!(v.len(), len, "weighted_sum shape mismatch");
            for (d, x) in data.iter_mut().zip(v.data()) {
                *d += alpha * x;
            }
        }
        let value = Tensor::from_vec(rows, cols, data);
        self.push(Op::WeightedSum { items: items.to_vec(), weights }, value)
    }

    /// Cross-entropy loss `-log softmax(logits)[target]`, as a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics when `target` is out of range.
    pub fn cross_entropy(&mut self, logits: VarId, target: usize) -> VarId {
        let lv = &self.values[logits.0];
        assert!(target < lv.len(), "cross_entropy target out of range");
        let mut probs = self.buf(self.values[logits.0].len());
        softmax_into(self.values[logits.0].data(), &mut probs);
        let loss = -(probs[target].max(1e-12)).ln();
        self.pool.put(probs);
        let mut data = self.buf(1);
        data[0] = loss;
        self.push(Op::CrossEntropy { logits, target }, Tensor::from_vec(1, 1, data))
    }

    /// Fused recurrent gate `act((w·x + u·h) + b)`: one node (and one
    /// value buffer) for the matvec/matvec/add/add/activation chain that
    /// every RNN step and TreeLSTM gate is made of. The two products use
    /// the same blocked kernel as [`Graph::matvec`] and the combine runs
    /// `(wx + uh) + b` per element, so the result is bitwise identical to
    /// the composed five-node form — the tape just carries 5× fewer nodes
    /// through it.
    pub fn gate(&mut self, w: VarId, x: VarId, u: VarId, h: VarId, b: VarId, act: Act) -> VarId {
        let m = self.values[w.0].rows();
        let mut wx = self.buf(m);
        self.values[w.0].matvec_into(&self.values[x.0], &mut wx);
        let mut uh = self.buf(m);
        self.values[u.0].matvec_into(&self.values[h.0], &mut uh);
        let mut out = self.buf(m);
        {
            let bv = self.values[b.0].data();
            assert_eq!(bv.len(), m, "gate bias length mismatch");
            for (o, ((a, c), bb)) in out.iter_mut().zip(wx.iter().zip(&uh).zip(bv)) {
                *o = act.apply((a + c) + bb);
            }
        }
        self.pool.put(wx);
        self.pool.put(uh);
        self.push(Op::Gate { w, x, u, h, b, act }, Tensor::vector(out))
    }

    /// [`Graph::gate`] batched over hidden vectors: row `j` of the
    /// `hs.len() × m` result is `act((w·x + u·hs[j]) + b)`, with `w·x`
    /// computed once. Each row is bitwise identical to the corresponding
    /// single [`Graph::gate`] node (same kernels, same combine order).
    /// This is the TreeLSTM child-forget-gate layer in one node.
    ///
    /// # Panics
    ///
    /// Panics when `hs` is empty.
    pub fn gate_batch(
        &mut self,
        w: VarId,
        x: VarId,
        u: VarId,
        hs: &[VarId],
        b: VarId,
        act: Act,
    ) -> VarId {
        assert!(!hs.is_empty(), "gate_batch over zero hidden vectors");
        let (k, m) = (hs.len(), self.values[w.0].rows());
        let mut wx = self.buf(m);
        self.values[w.0].matvec_into(&self.values[x.0], &mut wx);
        let mut uh = self.buf(m);
        let mut out = self.buf(k * m);
        for (j, hj) in hs.iter().enumerate() {
            self.values[u.0].matvec_into(&self.values[hj.0], &mut uh);
            let bv = self.values[b.0].data();
            for (o, ((a, c), bb)) in
                out[j * m..(j + 1) * m].iter_mut().zip(wx.iter().zip(&uh).zip(bv))
            {
                *o = act.apply((a + c) + bb);
            }
        }
        self.pool.put(wx);
        self.pool.put(uh);
        self.push(
            Op::GateBatch { w, x, u, hs: hs.to_vec(), b, act },
            Tensor::from_vec(k, m, out),
        )
    }

    /// `base + Σⱼ scales[j,·] ⊙ items[j]`, accumulating in ascending `j` —
    /// the TreeLSTM cell state `c = i⊙u + Σₖ fₖ⊙cₖ` in one node, with the
    /// forget activations taken from a [`Graph::gate_batch`] panel. The
    /// per-element operation sequence (`acc = acc + s·v`, one rounded
    /// product then one add per child) matches the mul/add chain it
    /// replaces bitwise.
    ///
    /// # Panics
    ///
    /// Panics when `scales` is not an `items.len() × base.len()` panel.
    pub fn fma_rows(&mut self, base: VarId, scales: VarId, items: &[VarId]) -> VarId {
        let m = self.values[base.0].len();
        let sv = &self.values[scales.0];
        assert_eq!(sv.rows(), items.len(), "fma_rows scale rows mismatch");
        assert_eq!(sv.cols(), m, "fma_rows scale cols mismatch");
        let mut out = self.buf(m);
        out.copy_from_slice(self.values[base.0].data());
        for (j, item) in items.iter().enumerate() {
            let iv = &self.values[item.0];
            assert_eq!(iv.len(), m, "fma_rows item shape mismatch");
            let srow = &self.values[scales.0].data()[j * m..(j + 1) * m];
            for ((o, s), v) in out.iter_mut().zip(srow).zip(iv.data()) {
                *o += s * v;
            }
        }
        let (rows, cols) = (self.values[base.0].rows(), self.values[base.0].cols());
        self.push(
            Op::FmaRows { base, scales, items: items.to_vec() },
            Tensor::from_vec(rows, cols, out),
        )
    }

    /// Packs `k` equal-length vectors as the rows of a `k × n` panel —
    /// the input-marshalling step in front of [`Graph::affine_batch`].
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes differ.
    pub fn pack(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "pack of zero vectors");
        let n = self.values[parts[0].0].len();
        let mut data = self.buf(parts.len() * n);
        for (j, p) in parts.iter().enumerate() {
            let v = &self.values[p.0];
            assert_eq!(v.len(), n, "pack shape mismatch");
            data[j * n..(j + 1) * n].copy_from_slice(v.data());
        }
        self.push(Op::Pack(parts.to_vec()), Tensor::from_vec(parts.len(), n, data))
    }

    /// Batch-major fused GEMM node: one packed kernel call computes
    /// `w · xs[j,·] (+ b)` for every row `j` of the `xs` panel. Each output
    /// row is bitwise identical to the per-program [`Graph::affine`] /
    /// [`Graph::matvec`] it replaces (see [`crate::tensor::gemm_batch`]).
    pub fn affine_batch(&mut self, w: VarId, xs: VarId, b: Option<VarId>) -> VarId {
        let _span = obs::span!("tensor.gemm");
        let (m, k) = (self.values[w.0].rows(), self.values[xs.0].rows());
        obs::counter!("tensor.gemm.dispatch_f32").inc();
        obs::counter!("tensor.gemm.batched_rows").add(k as u64);
        let mut out = self.buf(k * m);
        {
            let wv = &self.values[w.0];
            let xsv = &self.values[xs.0];
            let bias = b.map(|bv| self.values[bv.0].data());
            crate::tensor::gemm_batch(
                wv.data(),
                wv.rows(),
                wv.cols(),
                xsv.data(),
                k,
                bias,
                &mut out,
            );
        }
        self.push(Op::AffineBatch { w, xs, b }, Tensor::from_vec(k, m, out))
    }

    /// Adds a vector to every row of a panel (bias broadcast for the
    /// batched step: per row the combine is `row + b`, elementwise, like
    /// the per-program [`Graph::add`]).
    pub fn add_rows(&mut self, m: VarId, b: VarId) -> VarId {
        let (rows, cols) = (self.values[m.0].rows(), self.values[m.0].cols());
        assert_eq!(self.values[b.0].len(), cols, "add_rows bias length mismatch");
        let mut data = self.buf(rows * cols);
        {
            let mv = self.values[m.0].data();
            let bv = self.values[b.0].data();
            for j in 0..rows {
                for ((d, x), y) in data[j * cols..(j + 1) * cols].iter_mut().zip(&mv[j * cols..(j + 1) * cols]).zip(bv) {
                    *d = x + y;
                }
            }
        }
        self.push(Op::AddRows(m, b), Tensor::from_vec(rows, cols, data))
    }

    /// Per-row dot products of a panel with a vector, as a `k × 1`
    /// column — the batched attention-score reduction. Each row uses the
    /// same serial reduction as [`Graph::dot`].
    pub fn row_dots(&mut self, m: VarId, v: VarId) -> VarId {
        let (rows, cols) = (self.values[m.0].rows(), self.values[m.0].cols());
        assert_eq!(self.values[v.0].len(), cols, "row_dots vector length mismatch");
        let mut data = self.buf(rows);
        {
            let mv = self.values[m.0].data();
            let vv = self.values[v.0].data();
            for (j, d) in data.iter_mut().enumerate() {
                *d = mv[j * cols..(j + 1) * cols].iter().zip(vv).map(|(a, b)| a * b).sum();
            }
        }
        self.push(Op::RowDots(m, v), Tensor::vector(data))
    }

    /// Extracts row `row` of a panel as a column vector (the per-program
    /// view back out of a batched step).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn batch_item(&mut self, src: VarId, row: usize) -> VarId {
        let (rows, cols) = (self.values[src.0].rows(), self.values[src.0].cols());
        assert!(row < rows, "batch_item row {row} out of {rows}");
        let mut data = self.buf(cols);
        data.copy_from_slice(&self.values[src.0].data()[row * cols..(row + 1) * cols]);
        self.push(Op::BatchItem(src, row), Tensor::vector(data))
    }

    /// Re-appends a bitwise copy of the recorded node span
    /// `[start, start + len)` at the end of the graph and returns the new
    /// span's starting index. Operands inside the span are shifted to
    /// their copies; operands before the span (stable leaves such as
    /// cached `param_row` nodes) are kept as-is.
    ///
    /// This is the embedding-memoization primitive (DESIGN.md §2b): when
    /// a statement or state recurs within one forward pass, the ops its
    /// embedding *would* push are structurally identical to a previously
    /// recorded occurrence and their values are bitwise equal (the kernels
    /// are deterministic and all leaves are unchanged within a pass), so
    /// copying the span reproduces the exact uncached tape while skipping
    /// every kernel evaluation.
    ///
    /// The span must be self-contained up to stable leaves: in particular
    /// it must not contain first-occurrence `param_row` nodes (record the
    /// *second* occurrence, whose row lookups all hit the cache).
    ///
    /// # Panics
    ///
    /// Panics when the span is out of range.
    pub fn replay_span(&mut self, start: usize, len: usize) -> usize {
        let end = start + len;
        assert!(end <= self.ops.len(), "replay span {start}..{end} out of {}", self.ops.len());
        let new_start = self.ops.len();
        let delta = new_start - start;
        let shift = |v: VarId| {
            if v.0 >= start {
                debug_assert!(v.0 < end, "forward reference inside replay span");
                VarId(v.0 + delta)
            } else {
                v
            }
        };
        for i in start..end {
            let op = match &self.ops[i] {
                Op::Input => Op::Input,
                Op::Param(pid) => Op::Param(*pid),
                Op::ParamRow(..) => {
                    unreachable!("replay span contains a first-occurrence param_row leaf")
                }
                Op::MatVec(w, x) => Op::MatVec(shift(*w), shift(*x)),
                Op::Affine(w, x, b) => Op::Affine(shift(*w), shift(*x), shift(*b)),
                Op::Add(a, b) => Op::Add(shift(*a), shift(*b)),
                Op::Sub(a, b) => Op::Sub(shift(*a), shift(*b)),
                Op::Mul(a, b) => Op::Mul(shift(*a), shift(*b)),
                Op::Scale(a, c) => Op::Scale(shift(*a), *c),
                Op::MulScalar(v, s) => Op::MulScalar(shift(*v), shift(*s)),
                Op::Tanh(a) => Op::Tanh(shift(*a)),
                Op::Sigmoid(a) => Op::Sigmoid(shift(*a)),
                Op::Relu(a) => Op::Relu(shift(*a)),
                Op::Concat(parts) => Op::Concat(parts.iter().map(|&v| shift(v)).collect()),
                Op::Dot(a, b) => Op::Dot(shift(*a), shift(*b)),
                Op::StackScalars(parts) => {
                    Op::StackScalars(parts.iter().map(|&v| shift(v)).collect())
                }
                Op::Softmax(a) => Op::Softmax(shift(*a)),
                Op::Sum(a) => Op::Sum(shift(*a)),
                Op::Mean(a) => Op::Mean(shift(*a)),
                Op::SumVecs(parts) => Op::SumVecs(parts.iter().map(|&v| shift(v)).collect()),
                Op::MaxPool(parts) => Op::MaxPool(parts.iter().map(|&v| shift(v)).collect()),
                Op::WeightedSum { items, weights } => Op::WeightedSum {
                    items: items.iter().map(|&v| shift(v)).collect(),
                    weights: shift(*weights),
                },
                Op::CrossEntropy { logits, target } => {
                    Op::CrossEntropy { logits: shift(*logits), target: *target }
                }
                Op::Gate { w, x, u, h, b, act } => Op::Gate {
                    w: shift(*w),
                    x: shift(*x),
                    u: shift(*u),
                    h: shift(*h),
                    b: shift(*b),
                    act: *act,
                },
                Op::GateBatch { w, x, u, hs, b, act } => Op::GateBatch {
                    w: shift(*w),
                    x: shift(*x),
                    u: shift(*u),
                    hs: hs.iter().map(|&v| shift(v)).collect(),
                    b: shift(*b),
                    act: *act,
                },
                Op::FmaRows { base, scales, items } => Op::FmaRows {
                    base: shift(*base),
                    scales: shift(*scales),
                    items: items.iter().map(|&v| shift(v)).collect(),
                },
                Op::Pack(parts) => Op::Pack(parts.iter().map(|&v| shift(v)).collect()),
                Op::AffineBatch { w, xs, b } => Op::AffineBatch {
                    w: shift(*w),
                    xs: shift(*xs),
                    b: b.map(shift),
                },
                Op::AddRows(m, b) => Op::AddRows(shift(*m), shift(*b)),
                Op::RowDots(m, v) => Op::RowDots(shift(*m), shift(*v)),
                Op::BatchItem(src, row) => Op::BatchItem(shift(*src), *row),
            };
            let (rows, cols, n) = {
                let src = &self.values[i];
                (src.rows(), src.cols(), src.len())
            };
            let mut data = self.pool.take(n);
            data.copy_from_slice(self.values[i].data());
            self.ops.push(op);
            self.values.push(Tensor::from_vec(rows, cols, data));
        }
        new_start
    }

    /// Runs reverse-mode differentiation from the scalar `loss`,
    /// accumulating parameter gradients into `store`. Returns the full
    /// per-node gradient table (useful for tests and for inspecting
    /// attention weights).
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a 1×1 node.
    pub fn backward(&self, loss: VarId, store: &mut ParamStore) -> Vec<Option<Tensor>> {
        let (grads, param_grads) = self.backward_grads(loss, store);
        store.accumulate_grads(&param_grads);
        grads
    }

    /// Runs reverse-mode differentiation from the scalar `loss` without
    /// mutating the store: parameter gradients are returned as a detached
    /// [`ParamGrads`], alongside the per-node gradient table.
    ///
    /// Prefer [`Graph::backward_into`] on hot paths — it produces the same
    /// gradients bit-for-bit while drawing all scratch storage from the
    /// graph's buffer pool.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a 1×1 node.
    pub fn backward_grads(
        &self,
        loss: VarId,
        store: &ParamStore,
    ) -> (Vec<Option<Tensor>>, ParamGrads) {
        let mut grads: Vec<Option<Tensor>> = vec![None; self.ops.len()];
        let mut table = GradTable { grads: &mut grads, pool: None };
        let param_grads = backward_sweep(&self.ops, &self.values, store, &mut table, loss);
        (grads, param_grads)
    }

    /// The hot-path backward: reverse-mode differentiation from the scalar
    /// `loss` against a shared `&ParamStore`, with the per-node gradient
    /// table and every temporary drawn from (and returned to) the graph's
    /// buffer pool. Only the returned [`ParamGrads`] is freshly allocated
    /// — it must outlive the graph and cross back to the reducing thread.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a 1×1 node.
    pub fn backward_into(&mut self, loss: VarId, store: &ParamStore) -> ParamGrads {
        self.grads.clear();
        self.grads.resize(self.ops.len(), None);
        let mut table = GradTable { grads: &mut self.grads, pool: Some(&mut self.pool) };
        backward_sweep(&self.ops, &self.values, store, &mut table, loss)
    }
}

/// Scratch state of one reverse sweep: the per-node gradient table plus an
/// optional buffer pool. With a pool, every tensor the sweep creates comes
/// from recycled storage and is returned as soon as the sweep is done with
/// it; without one, behaviour matches plain allocation. The arithmetic —
/// including the zero-initialise-then-accumulate order — is identical
/// either way, so both modes produce bitwise-equal gradients.
struct GradTable<'a> {
    grads: &'a mut [Option<Tensor>],
    pool: Option<&'a mut BufferPool>,
}

impl GradTable<'_> {
    /// A tensor with unspecified contents; the caller overwrites every
    /// element.
    fn fresh(&mut self, rows: usize, cols: usize) -> Tensor {
        match &mut self.pool {
            Some(p) => Tensor::from_vec(rows, cols, p.take(rows * cols)),
            None => Tensor::zeros(rows, cols),
        }
    }

    fn fresh_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        match &mut self.pool {
            Some(p) => Tensor::from_vec(rows, cols, p.take_zeroed(rows * cols)),
            None => Tensor::zeros(rows, cols),
        }
    }

    fn fresh_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.fresh(src.rows(), src.cols());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    fn fresh_scalar(&mut self, v: f32) -> Tensor {
        let mut t = self.fresh(1, 1);
        t.data_mut()[0] = v;
        t
    }

    /// Returns a tensor's storage to the pool (a no-op without one).
    fn recycle(&mut self, t: Tensor) {
        if let Some(p) = &mut self.pool {
            p.put(t.into_data());
        }
    }

    fn take(&mut self, i: usize) -> Option<Tensor> {
        self.grads[i].take()
    }

    /// `grads[id] += delta`.
    fn acc(&mut self, id: VarId, delta: &Tensor) {
        match &mut self.grads[id.0] {
            Some(g) => g.axpy(1.0, delta),
            None => self.grads[id.0] = Some(self.fresh_copy(delta)),
        }
    }

    /// `grads[id] += alpha · delta` (zero-initialising an empty slot first,
    /// exactly like the allocating path, so signed zeros match bitwise).
    fn acc_scaled(&mut self, id: VarId, alpha: f32, delta: &Tensor) {
        if self.grads[id.0].is_none() {
            self.grads[id.0] = Some(self.fresh_zeroed(delta.rows(), delta.cols()));
        }
        self.grads[id.0].as_mut().expect("just initialized").axpy(alpha, delta);
    }

    /// `grads[id] += t`, consuming `t` (moved into an empty slot, recycled
    /// otherwise).
    fn acc_owned(&mut self, id: VarId, t: Tensor) {
        match &mut self.grads[id.0] {
            Some(g) => {
                g.axpy(1.0, &t);
                self.recycle(t);
            }
            None => self.grads[id.0] = Some(t),
        }
    }

    /// Accumulates into a (rows×cols) gradient through a closure (used for
    /// the outer-product update of matrix gradients).
    fn acc_with(&mut self, id: VarId, rows: usize, cols: usize, f: impl FnOnce(&mut Tensor)) {
        if self.grads[id.0].is_none() {
            self.grads[id.0] = Some(self.fresh_zeroed(rows, cols));
        }
        f(self.grads[id.0].as_mut().expect("just initialized"));
    }
}

/// The shared reverse sweep behind [`Graph::backward`],
/// [`Graph::backward_grads`] and [`Graph::backward_into`].
fn backward_sweep(
    ops: &[Op],
    values: &[Tensor],
    store: &ParamStore,
    table: &mut GradTable<'_>,
    loss: VarId,
) -> ParamGrads {
    assert_eq!(values[loss.0].len(), 1, "backward source must be scalar");
    let _span = obs::span!("graph.backward");
    let mut param_grads = ParamGrads::new();
    let seed = table.fresh_scalar(1.0);
    table.grads[loss.0] = Some(seed);

    for i in (0..ops.len()).rev() {
        let Some(g) = table.take(i) else { continue };
        match &ops[i] {
            Op::Input => {}
            Op::Param(pid) => {
                param_grads.accumulate(*pid, &g);
            }
            Op::ParamRow(pid, row) => {
                let p = &store.get(*pid).value;
                param_grads.accumulate_row(*pid, *row, p.rows(), p.cols(), &g);
            }
            Op::Affine(w, x, b) => {
                let xv = &values[x.0];
                let wv = &values[w.0];
                table.acc_with(*w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &g, xv));
                let mut dx = table.fresh(wv.cols(), 1);
                wv.matvec_t_into(&g, dx.data_mut());
                table.acc_owned(*x, dx);
                table.acc(*b, &g);
            }
            Op::MatVec(w, x) => {
                let xv = &values[x.0];
                let wv = &values[w.0];
                table.acc_with(*w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &g, xv));
                let mut dx = table.fresh(wv.cols(), 1);
                wv.matvec_t_into(&g, dx.data_mut());
                table.acc_owned(*x, dx);
            }
            Op::Add(a, b) => {
                table.acc(*a, &g);
                table.acc(*b, &g);
            }
            Op::Sub(a, b) => {
                table.acc(*a, &g);
                table.acc_scaled(*b, -1.0, &g);
            }
            Op::Mul(a, b) => {
                let mut ga = table.fresh(g.rows(), g.cols());
                for ((d, gv), y) in
                    ga.data_mut().iter_mut().zip(g.data()).zip(values[b.0].data())
                {
                    *d = gv * y;
                }
                let mut gb = table.fresh(g.rows(), g.cols());
                for ((d, gv), y) in
                    gb.data_mut().iter_mut().zip(g.data()).zip(values[a.0].data())
                {
                    *d = gv * y;
                }
                table.acc_owned(*a, ga);
                table.acc_owned(*b, gb);
            }
            Op::Scale(a, c) => table.acc_scaled(*a, *c, &g),
            Op::MulScalar(v, s) => {
                let sv = values[s.0].item();
                table.acc_scaled(*v, sv, &g);
                let ds = table.fresh_scalar(g.dot(&values[v.0]));
                table.acc_owned(*s, ds);
            }
            Op::Tanh(a) => {
                let y = &values[i];
                let mut d = table.fresh(g.rows(), g.cols());
                for ((dv, gv), yv) in d.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                    *dv = gv * (1.0 - yv * yv);
                }
                table.acc_owned(*a, d);
            }
            Op::Sigmoid(a) => {
                let y = &values[i];
                let mut d = table.fresh(g.rows(), g.cols());
                for ((dv, gv), yv) in d.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                    *dv = gv * yv * (1.0 - yv);
                }
                table.acc_owned(*a, d);
            }
            Op::Relu(a) => {
                let x = &values[a.0];
                let mut d = table.fresh(g.rows(), g.cols());
                for ((dv, gv), xv) in d.data_mut().iter_mut().zip(g.data()).zip(x.data()) {
                    *dv = if *xv > 0.0 { *gv } else { 0.0 };
                }
                table.acc_owned(*a, d);
            }
            Op::Concat(parts) => {
                let mut offset = 0;
                for p in parts {
                    let n = values[p.0].len();
                    let mut slice = table.fresh(n, 1);
                    slice.data_mut().copy_from_slice(&g.data()[offset..offset + n]);
                    table.acc_owned(*p, slice);
                    offset += n;
                }
            }
            Op::Dot(a, b) => {
                let g0 = g.item();
                table.acc_scaled(*a, g0, &values[b.0]);
                table.acc_scaled(*b, g0, &values[a.0]);
            }
            Op::StackScalars(parts) => {
                for (k, p) in parts.iter().enumerate() {
                    let d = table.fresh_scalar(g.data()[k]);
                    table.acc_owned(*p, d);
                }
            }
            Op::Softmax(a) => {
                // dx = y ⊙ (g − ⟨g, y⟩)
                let y = &values[i];
                let gy: f32 = g.dot(y);
                let mut d = table.fresh(g.rows(), g.cols());
                for ((dv, yv), gv) in d.data_mut().iter_mut().zip(y.data()).zip(g.data()) {
                    *dv = yv * (gv - gy);
                }
                table.acc_owned(*a, d);
            }
            Op::Sum(a) => {
                let g0 = g.item();
                let av = &values[a.0];
                let mut d = table.fresh(av.rows(), av.cols());
                d.data_mut().iter_mut().for_each(|v| *v = g0);
                table.acc_owned(*a, d);
            }
            Op::Mean(a) => {
                let av = &values[a.0];
                let g0 = g.item() / av.len() as f32;
                let mut d = table.fresh(av.rows(), av.cols());
                d.data_mut().iter_mut().for_each(|v| *v = g0);
                table.acc_owned(*a, d);
            }
            Op::SumVecs(parts) => {
                for p in parts {
                    table.acc(*p, &g);
                }
            }
            Op::MaxPool(parts) => {
                // Route gradient to the argmax contributor per element;
                // ties go to the earliest part (deterministic).
                let y = &values[i];
                for p in parts {
                    let v = &values[p.0];
                    let mut d = table.fresh(v.rows(), v.cols());
                    for (((dv, xv), yv), gv) in
                        d.data_mut().iter_mut().zip(v.data()).zip(y.data()).zip(g.data())
                    {
                        *dv = if xv == yv { *gv } else { 0.0 };
                    }
                    table.acc_owned(*p, d);
                    // Note: exact float ties across different parts are
                    // measure-zero with real activations; duplicating
                    // the gradient there is harmless for training.
                }
            }
            Op::WeightedSum { items, weights } => {
                let mut dw = table.fresh(items.len(), 1);
                for (k, item) in items.iter().enumerate() {
                    let alpha = values[weights.0].data()[k];
                    table.acc_scaled(*item, alpha, &g);
                    dw.data_mut()[k] = g.dot(&values[item.0]);
                }
                table.acc_owned(*weights, dw);
            }
            Op::CrossEntropy { logits, target } => {
                let g0 = g.item();
                let lv = &values[logits.0];
                let mut d = table.fresh(lv.rows(), lv.cols());
                softmax_into(lv.data(), d.data_mut());
                {
                    let data = d.data_mut();
                    data[*target] -= 1.0;
                    data.iter_mut().for_each(|v| *v *= g0);
                }
                table.acc_owned(*logits, d);
            }
            Op::Gate { w, x, u, h, b, act } => {
                // d_pre = g ⊙ act'(y), then the four linear pullbacks in
                // the same order the composed chain's reverse sweep ran
                // them: b, then u/h (the later matvec), then w/x.
                let y = &values[i];
                let mut d = table.fresh(g.rows(), g.cols());
                for ((dv, gv), yv) in d.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                    *dv = act.dfdy(*gv, *yv);
                }
                table.acc(*b, &d);
                let uv = &values[u.0];
                let hv = &values[h.0];
                table.acc_with(*u, uv.rows(), uv.cols(), |t| t.add_outer(1.0, &d, hv));
                let mut dh = table.fresh(uv.cols(), 1);
                uv.matvec_t_into(&d, dh.data_mut());
                table.acc_owned(*h, dh);
                let wv = &values[w.0];
                let xv = &values[x.0];
                table.acc_with(*w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &d, xv));
                let mut dx = table.fresh(wv.cols(), 1);
                wv.matvec_t_into(&d, dx.data_mut());
                table.acc_owned(*x, dx);
                table.recycle(d);
            }
            Op::GateBatch { w, x, u, hs, b, act } => {
                // One row at a time, in descending j — the reverse-tape
                // order of the per-child gate nodes this op fuses — so
                // every shared accumulation (b, u, w, x) sees the same
                // floating-point addition sequence.
                let y = &values[i];
                let m = y.cols();
                let uv = &values[u.0];
                let wv = &values[w.0];
                let xv = &values[x.0];
                for j in (0..hs.len()).rev() {
                    let mut d = table.fresh(m, 1);
                    for ((dv, gv), yv) in d
                        .data_mut()
                        .iter_mut()
                        .zip(&g.data()[j * m..(j + 1) * m])
                        .zip(&y.data()[j * m..(j + 1) * m])
                    {
                        *dv = act.dfdy(*gv, *yv);
                    }
                    table.acc(*b, &d);
                    let hv = &values[hs[j].0];
                    table.acc_with(*u, uv.rows(), uv.cols(), |t| t.add_outer(1.0, &d, hv));
                    let mut dh = table.fresh(uv.cols(), 1);
                    uv.matvec_t_into(&d, dh.data_mut());
                    table.acc_owned(hs[j], dh);
                    table.acc_with(*w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &d, xv));
                    let mut dx = table.fresh(wv.cols(), 1);
                    wv.matvec_t_into(&d, dx.data_mut());
                    table.acc_owned(*x, dx);
                    table.recycle(d);
                }
            }
            Op::FmaRows { base, scales, items } => {
                // d_scales[j,·] = g ⊙ items[j]; d_items[j] = g ⊙ scales[j,·]
                // — the Mul backward expressions, rows written directly so
                // the panel gradient equals the moved per-node tensors of
                // the chain it replaces.
                let m = g.len();
                let mut ds = table.fresh(items.len(), m);
                for (j, item) in items.iter().enumerate() {
                    for ((dv, gv), cv) in ds.data_mut()[j * m..(j + 1) * m]
                        .iter_mut()
                        .zip(g.data())
                        .zip(values[item.0].data())
                    {
                        *dv = gv * cv;
                    }
                }
                for j in (0..items.len()).rev() {
                    let mut di = table.fresh(m, 1);
                    for ((dv, gv), sv) in di
                        .data_mut()
                        .iter_mut()
                        .zip(g.data())
                        .zip(&values[scales.0].data()[j * m..(j + 1) * m])
                    {
                        *dv = gv * sv;
                    }
                    table.acc_owned(items[j], di);
                }
                table.acc(*base, &g);
                table.acc_owned(*scales, ds);
            }
            Op::Pack(parts) => {
                let n = values[i].cols();
                for (j, p) in parts.iter().enumerate() {
                    let mut slice = table.fresh(n, 1);
                    slice.data_mut().copy_from_slice(&g.data()[j * n..(j + 1) * n]);
                    table.acc_owned(*p, slice);
                }
            }
            Op::AffineBatch { w, xs, b } => {
                let wv = &values[w.0];
                let xsv = &values[xs.0];
                let (k, m, n) = (xsv.rows(), wv.rows(), wv.cols());
                let mut dxs = table.fresh(k, n);
                // Descending item order: the reverse-tape order of the k
                // per-program affine nodes this GEMM fuses, so dW/db see
                // the same accumulation sequence.
                for j in (0..k).rev() {
                    let mut gj = table.fresh(m, 1);
                    gj.data_mut().copy_from_slice(&g.data()[j * m..(j + 1) * m]);
                    let mut xj = table.fresh(n, 1);
                    xj.data_mut().copy_from_slice(&xsv.data()[j * n..(j + 1) * n]);
                    table.acc_with(*w, m, n, |t| t.add_outer(1.0, &gj, &xj));
                    wv.matvec_t_into(&gj, &mut dxs.data_mut()[j * n..(j + 1) * n]);
                    if let Some(bv) = b {
                        table.acc(*bv, &gj);
                    }
                    table.recycle(xj);
                    table.recycle(gj);
                }
                table.acc_owned(*xs, dxs);
            }
            Op::AddRows(mv, b) => {
                table.acc(*mv, &g);
                let cols = values[i].cols();
                for j in (0..values[i].rows()).rev() {
                    let mut gj = table.fresh(cols, 1);
                    gj.data_mut().copy_from_slice(&g.data()[j * cols..(j + 1) * cols]);
                    table.acc(*b, &gj);
                    table.recycle(gj);
                }
            }
            Op::RowDots(mv, v) => {
                let vv = &values[v.0];
                let (k, n) = (values[mv.0].rows(), values[mv.0].cols());
                let mut dm = table.fresh(k, n);
                for j in 0..k {
                    let gj = g.data()[j];
                    // `0.0 +` mirrors the zero-init-then-axpy path of the
                    // per-feature Dot backward this op replaces bitwise.
                    for (dv, xv) in
                        dm.data_mut()[j * n..(j + 1) * n].iter_mut().zip(vv.data())
                    {
                        *dv = 0.0 + gj * xv;
                    }
                }
                for j in (0..k).rev() {
                    let mut row = table.fresh(n, 1);
                    row.data_mut()
                        .copy_from_slice(&values[mv.0].data()[j * n..(j + 1) * n]);
                    table.acc_scaled(*v, g.data()[j], &row);
                    table.recycle(row);
                }
                table.acc_owned(*mv, dm);
            }
            Op::BatchItem(src, row) => {
                let cols = values[src.0].cols();
                let (r, k) = (*row, values[src.0].rows());
                table.acc_with(*src, k, cols, |t| {
                    for (dv, gv) in
                        t.data_mut()[r * cols..(r + 1) * cols].iter_mut().zip(g.data())
                    {
                        *dv += gv;
                    }
                });
            }
        }
        table.recycle(g);
    }
    param_grads
}

/// Numerically-stable softmax into a caller-provided buffer (every element
/// is overwritten).
fn softmax_into(x: &[f32], out: &mut [f32]) {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, v) in out.iter_mut().zip(x) {
        *o = (v - max).exp();
        sum += *o;
    }
    out.iter_mut().for_each(|v| *v /= sum);
}

#[cfg(test)]
fn softmax_vec(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    softmax_into(x.data(), out.data_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![1.0, 2.0, 3.0]));
        let y = g.softmax(x);
        let sum: f32 = g.value(y).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Monotone in inputs.
        let d = g.value(y).data();
        assert!(d[0] < d[1] && d[1] < d[2]);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = sum(tanh(W x)); check dW numerically.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]));

        let loss_of = |store: &ParamStore| {
            let mut g = Graph::new();
            let wv = g.param(store, w);
            let x = g.input(Tensor::vector(vec![0.5, -1.0]));
            let h = g.matvec(wv, x);
            let t = g.tanh(h);
            let l = g.sum(t);
            (g, l)
        };

        let (g, l) = loss_of(&store);
        g.backward(l, &mut store);

        let eps = 1e-3f32;
        for k in 0..4 {
            let analytic = store.get(w).grad.data()[k];
            let mut plus = store.clone();
            plus.get_mut(w).value.data_mut()[k] += eps;
            let (gp, lp) = loss_of(&plus);
            let mut minus = store.clone();
            minus.get_mut(w).value.data_mut()[k] -= eps;
            let (gm, lm) = loss_of(&minus);
            let numeric = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "dW[{k}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut store = ParamStore::new();
        let p = store.add("logits", Tensor::vector(vec![0.5, -0.5, 1.0]));
        let mut g = Graph::new();
        let logits = g.param(&store, p);
        let loss = g.cross_entropy(logits, 2);
        g.backward(loss, &mut store);
        let probs = softmax_vec(&store.get(p).value);
        let grad = &store.get(p).grad;
        for k in 0..3 {
            let expected = probs.data()[k] - if k == 2 { 1.0 } else { 0.0 };
            assert!((grad.data()[k] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn affine_matches_matvec_plus_bias_forward_and_backward() {
        let mut store_a = ParamStore::new();
        let w_a = store_a.add("w", Tensor::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]));
        let b_a = store_a.add("b", Tensor::vector(vec![0.05, -0.1, 0.2]));
        let mut store_b = store_a.clone();
        let (w_b, b_b) = (w_a, b_a);

        let x_data = vec![0.7, -1.3];

        let mut ga = Graph::new();
        let wv = ga.param(&store_a, w_a);
        let bv = ga.param(&store_a, b_a);
        let xv = ga.input(Tensor::vector(x_data.clone()));
        let fused = ga.affine(wv, xv, bv);
        let la = ga.sum(fused);
        ga.backward(la, &mut store_a);

        let mut gb = Graph::new();
        let wv = gb.param(&store_b, w_b);
        let bv = gb.param(&store_b, b_b);
        let xv = gb.input(Tensor::vector(x_data));
        let mv = gb.matvec(wv, xv);
        let unfused = gb.add(mv, bv);
        let lb = gb.sum(unfused);
        gb.backward(lb, &mut store_b);

        for (f, u) in ga.value(fused).data().iter().zip(gb.value(unfused).data()) {
            assert!((f - u).abs() < 1e-6, "forward mismatch: {f} vs {u}");
        }
        for (f, u) in store_a.get(w_a).grad.data().iter().zip(store_b.get(w_b).grad.data()) {
            assert!((f - u).abs() < 1e-6, "dW mismatch: {f} vs {u}");
        }
        for (f, u) in store_a.get(b_a).grad.data().iter().zip(store_b.get(b_b).grad.data()) {
            assert!((f - u).abs() < 1e-6, "db mismatch: {f} vs {u}");
        }
    }

    #[test]
    fn backward_grads_leaves_store_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let l = g.sum(wv);
        let (node_grads, param_grads) = g.backward_grads(l, &store);
        assert_eq!(store.get(w).grad.data(), &[0.0, 0.0], "store must stay clean");
        assert_eq!(node_grads.len(), g.len());
        assert_eq!(node_grads[wv.0].as_ref().map(|t| t.data().to_vec()), None,
            "leaf grads are moved into param_grads, not left in the table");
        store.accumulate_grads(&param_grads);
        assert_eq!(store.get(w).grad.data(), &[1.0, 1.0]);
    }

    #[test]
    fn backward_into_matches_backward_grads_bitwise() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]));
        let b = store.add("b", Tensor::vector(vec![0.05, -0.1, 0.2]));
        let emb = store.add("emb", Tensor::from_vec(4, 2, vec![0.1; 8]));

        let build = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let bv = g.param(s, b);
            let x = g.param_row(s, emb, 2);
            let h = g.affine(wv, x, bv);
            let t = g.tanh(h);
            let sm = g.softmax(t);
            let row2 = g.param_row(s, emb, 2); // cache hit
            let d = g.dot(x, row2);
            let ssum = g.sum(sm);
            let l2 = g.add(ssum, d);
            g.cross_entropy(l2, 0)
        };

        let mut ga = Graph::new();
        let la = build(&mut ga, &store);
        let (_, pga) = ga.backward_grads(la, &store);

        let mut gb = Graph::new();
        let lb = build(&mut gb, &store);
        let pgb = gb.backward_into(lb, &store);

        let bits = |pg: &ParamGrads| -> Vec<(usize, Vec<u32>)> {
            pg.iter()
                .map(|(id, t)| (id.0, t.data().iter().map(|v| v.to_bits()).collect()))
                .collect()
        };
        assert_eq!(bits(&pga), bits(&pgb));
    }

    #[test]
    fn reset_retains_capacity_and_recycles_buffers() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(4, 4, vec![0.01; 16]));
        let mut g = Graph::new();

        let run = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x = g.input(Tensor::vector(vec![1.0, -1.0, 0.5, 0.25]));
            let h = g.matvec(wv, x);
            let t = g.tanh(h);
            let l = g.sum(t);
            g.backward_into(l, s)
        };

        let _ = run(&mut g, &store);
        let misses_after_cold = g.pool_misses();
        assert!(misses_after_cold > 0, "cold pass must populate the pool");

        g.reset();
        assert!(g.is_empty());
        assert!(g.pooled_buffers() > 0, "reset parks value buffers in the pool");

        let _ = run(&mut g, &store);
        assert_eq!(
            g.pool_misses(),
            misses_after_cold,
            "steady-state pass must be served entirely from the pool"
        );
    }

    #[test]
    fn reset_runs_produce_bitwise_identical_results() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(3, 3, vec![0.3, -0.1, 0.2, 0.5, 0.4, -0.6, 0.7, 0.1, -0.2]));
        let run = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x = g.input(Tensor::vector(vec![0.2, -0.4, 0.6]));
            let h = g.matvec(wv, x);
            let t = g.sigmoid(h);
            let l = g.cross_entropy(t, 1);
            let pg = g.backward_into(l, s);
            let loss_bits = g.value(l).item().to_bits();
            let grad_bits: Vec<u32> = pg
                .iter()
                .flat_map(|(_, t)| t.data().iter().map(|v| v.to_bits()))
                .collect();
            (loss_bits, grad_bits)
        };
        let mut fresh = Graph::new();
        let want = run(&mut fresh, &store);
        let mut reused = Graph::new();
        for _ in 0..3 {
            reused.reset();
            assert_eq!(run(&mut reused, &store), want, "reused graph diverged");
        }
    }

    #[test]
    fn param_row_lookups_are_cached_per_graph() {
        let mut store = ParamStore::new();
        let emb = store.add("emb", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let a = g.param_row(&store, emb, 1);
        let b = g.param_row(&store, emb, 1);
        assert_eq!(a, b, "repeated lookup must reuse the node");
        let c = g.param_row(&store, emb, 0);
        assert_ne!(a, c);
        // Gradient still accumulates once per use of the shared node.
        let s = g.sum_vecs(&[a, b]);
        let l = g.sum(s);
        g.backward(l, &mut store);
        assert_eq!(store.get(emb).grad.data(), &[0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn param_row_cache_is_invalidated_by_reset() {
        // Regression test: a stale row cache surviving reset() would hand
        // out dangling VarIds and pre-update parameter values.
        let mut store = ParamStore::new();
        let emb = store.add("emb", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let before = g.param_row(&store, emb, 1);
        assert_eq!(g.value(before).data(), &[3.0, 4.0]);

        // An optimizer step changes the parameter between examples.
        store.get_mut(emb).value.data_mut()[2] = 30.0;
        g.reset();

        let after = g.param_row(&store, emb, 1);
        assert_eq!(after.index(), 0, "reset graph must hand out fresh node ids");
        assert_eq!(
            g.value(after).data(),
            &[30.0, 4.0],
            "stale cached row value survived reset"
        );
    }

    #[test]
    fn replay_span_copies_values_and_gradients_bitwise() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![0.4, -0.3, 0.2, 0.1]));
        let emb = store.add("emb", Tensor::from_vec(3, 2, vec![0.5, -0.5, 0.25, 0.75, -0.1, 0.9]));

        // Reference: the same sub-expression built twice, as an uncached
        // pass would (the row leaf is cached, everything else re-pushed).
        let build_once = |g: &mut Graph, s: &ParamStore| {
            let x = g.param_row(s, emb, 1);
            let wv = g.param(s, w);
            let h = g.matvec(wv, x);
            g.tanh(h)
        };
        let mut reference = Graph::new();
        let r1 = build_once(&mut reference, &store);
        let r2 = build_once(&mut reference, &store);
        let rsum = reference.sum_vecs(&[r1, r2]);
        let rloss = reference.sum(rsum);
        let (_, ref_grads) = reference.backward_grads(rloss, &store);

        // Replayed: record the second occurrence (all rows cached), then
        // copy its span instead of recomputing.
        let mut g = Graph::new();
        let _warm = build_once(&mut g, &store); // occurrence 1 fills the row cache
        g.reset();
        let a1 = build_once(&mut g, &store);
        // In a reset graph occurrence 1 is also occurrence-2-like only if
        // rows are pre-cached; build the real recording setup instead:
        let start = g.len();
        let a2 = build_once(&mut g, &store);
        let len = g.len() - start;
        let result_rel = a2.index() - start;
        let new_start = g.replay_span(start, len);
        let a3 = g.var(new_start + result_rel);
        assert_eq!(
            g.value(a3).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            g.value(a2).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );

        // Gradients of (a1 + a2) through the replayed graph match the
        // reference's first two occurrences; and a three-way sum stays
        // differentiable through the copied span.
        let sum2 = g.sum_vecs(&[a1, a2]);
        let loss2 = g.sum(sum2);
        let (_, got_grads) = g.backward_grads(loss2, &store);
        let bits = |pg: &ParamGrads| -> Vec<(usize, Vec<u32>)> {
            pg.iter()
                .map(|(id, t)| (id.0, t.data().iter().map(|v| v.to_bits()).collect()))
                .collect()
        };
        assert_eq!(bits(&ref_grads), bits(&got_grads));

        let sum3 = g.sum_vecs(&[a1, a2, a3]);
        let loss3 = g.sum(sum3);
        let mut s3 = store.clone();
        g.backward(loss3, &mut s3);
        assert!(s3.grad_norm() > 0.0, "no gradient flowed through the replayed span");
    }

    #[test]
    fn zeros_leaf_is_a_zero_input() {
        let mut g = Graph::new();
        let z = g.zeros(3, 1);
        assert_eq!(g.value(z).data(), &[0.0; 3]);
        // Pooled storage must still come back zeroed after a reset parks a
        // dirty buffer of the same size.
        let x = g.input(Tensor::vector(vec![5.0, 6.0, 7.0]));
        let _ = g.add(z, x);
        g.reset();
        let z2 = g.zeros(3, 1);
        assert_eq!(g.value(z2).data(), &[0.0; 3]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0, 5.0]));
        let b = store.add("b", Tensor::vector(vec![2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let m = g.max_pool(&[av, bv]);
        assert_eq!(g.value(m).data(), &[2.0, 5.0]);
        let s = g.sum(m);
        g.backward(s, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0.0, 1.0]);
        assert_eq!(store.get(b).grad.data(), &[1.0, 0.0]);
    }

    #[test]
    fn param_row_accumulates_into_embedding_matrix() {
        let mut store = ParamStore::new();
        let emb = store.add("emb", Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let mut g = Graph::new();
        let row1 = g.param_row(&store, emb, 1);
        assert_eq!(g.value(row1).data(), &[3.0, 4.0]);
        let s = g.sum(row1);
        g.backward(s, &mut store);
        assert_eq!(store.get(emb).grad.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn weighted_sum_gradients() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0, 0.0]));
        let b = store.add("b", Tensor::vector(vec![0.0, 1.0]));
        let w = store.add("w", Tensor::vector(vec![0.25, 0.75]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let wv = g.param(&store, w);
        let combo = g.weighted_sum(&[av, bv], wv);
        assert_eq!(g.value(combo).data(), &[0.25, 0.75]);
        let s = g.sum(combo);
        g.backward(s, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0.25, 0.25]);
        assert_eq!(store.get(b).grad.data(), &[0.75, 0.75]);
        // dL/dw[k] = sum(items[k]) = 1 for both.
        assert_eq!(store.get(w).grad.data(), &[1.0, 1.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0]));
        let b = store.add("b", Tensor::vector(vec![2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let c = g.concat(&[av, bv]);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 3.0]);
        let w = g.input(Tensor::vector(vec![10.0, 20.0, 30.0]));
        let d = g.dot(c, w);
        g.backward(d, &mut store);
        assert_eq!(store.get(a).grad.data(), &[10.0]);
        assert_eq!(store.get(b).grad.data(), &[20.0, 30.0]);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // loss = sum(x) + dot(x, x): dL/dx = 1 + 2x.
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![1.0, -2.0]));
        let mut g = Graph::new();
        let xv = g.param(&store, x);
        let s = g.sum(xv);
        let d = g.dot(xv, xv);
        let loss = g.add(s, d);
        g.backward(loss, &mut store);
        assert_eq!(store.get(x).grad.data(), &[3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![1.0, 2.0]));
        g.backward(x, &mut store);
    }

    /// Deterministic pseudo-random fill for the kernel-equivalence tests.
    fn lcg(seed: &mut u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn param_cache_dedupes_repeated_param_nodes() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let len_after_first = g.len();
        let b = g.param(&store, w);
        assert_eq!(a, b, "second use must hit the cache");
        assert_eq!(g.len(), len_after_first, "cache hit must not push a node");
        g.reset();
        let c = g.param(&store, w);
        assert_eq!(c.0, 0, "reset must clear the param cache");
        // Gradients through a cached (shared) node still accumulate per use:
        // loss = sum(w) + dot(w, w) ⇒ dL/dw = 1 + 2w.
        let s = g.sum(c);
        let d = g.dot(c, c);
        let loss = g.add(s, d);
        g.backward(loss, &mut store);
        assert_eq!(store.get(w).grad.data(), &[3.0, 5.0]);
    }

    /// Builds the five-node chain `act((w·x + u·h) + b)` the fused gate
    /// replaces.
    fn composed_gate(
        g: &mut Graph,
        w: VarId,
        x: VarId,
        u: VarId,
        h: VarId,
        b: VarId,
        act: Act,
    ) -> VarId {
        let wx = g.matvec(w, x);
        let uh = g.matvec(u, h);
        let s = g.add(wx, uh);
        let sb = g.add(s, b);
        match act {
            Act::Tanh => g.tanh(sb),
            Act::Sigmoid => g.sigmoid(sb),
        }
    }

    #[test]
    fn gate_is_bitwise_identical_to_composed_chain() {
        // m=5 is deliberately not a multiple of the kernel row block.
        let (m, nx, nh) = (5, 3, 4);
        let mut seed = 0x5eed;
        for act in [Act::Tanh, Act::Sigmoid] {
            let mut store_f = ParamStore::new();
            let w = store_f.add("w", Tensor::from_vec(m, nx, lcg(&mut seed, m * nx)));
            let u = store_f.add("u", Tensor::from_vec(m, nh, lcg(&mut seed, m * nh)));
            let b = store_f.add("b", Tensor::vector(lcg(&mut seed, m)));
            let x = store_f.add("x", Tensor::vector(lcg(&mut seed, nx)));
            let h = store_f.add("h", Tensor::vector(lcg(&mut seed, nh)));
            let mut store_c = store_f.clone();
            let probe = lcg(&mut seed, m);

            let mut gf = Graph::new();
            let (wv, uv) = (gf.param(&store_f, w), gf.param(&store_f, u));
            let (bv, xv, hv) = (gf.param(&store_f, b), gf.param(&store_f, x), gf.param(&store_f, h));
            let yf = gf.gate(wv, xv, uv, hv, bv, act);
            let pf = gf.input(Tensor::vector(probe.clone()));
            let lf = gf.dot(yf, pf);
            gf.backward(lf, &mut store_f);

            let mut gc = Graph::new();
            let (wv, uv) = (gc.param(&store_c, w), gc.param(&store_c, u));
            let (bv, xv, hv) = (gc.param(&store_c, b), gc.param(&store_c, x), gc.param(&store_c, h));
            let yc = composed_gate(&mut gc, wv, xv, uv, hv, bv, act);
            let pc = gc.input(Tensor::vector(probe));
            let lc = gc.dot(yc, pc);
            gc.backward(lc, &mut store_c);

            assert_eq!(bits(gf.value(yf)), bits(gc.value(yc)), "forward ({act:?})");
            for p in [w, u, b, x, h] {
                assert_eq!(
                    bits(&store_f.get(p).grad),
                    bits(&store_c.get(p).grad),
                    "grad mismatch ({act:?})"
                );
            }
        }
    }

    #[test]
    fn gate_batch_rows_are_bitwise_identical_to_individual_gates() {
        let (k, m, nx) = (3, 5, 3);
        let mut seed = 0xbeef;
        let mut store_f = ParamStore::new();
        let w = store_f.add("w", Tensor::from_vec(m, nx, lcg(&mut seed, m * nx)));
        let u = store_f.add("u", Tensor::from_vec(m, m, lcg(&mut seed, m * m)));
        let b = store_f.add("b", Tensor::vector(lcg(&mut seed, m)));
        let x = store_f.add("x", Tensor::vector(lcg(&mut seed, nx)));
        let hs_ids: Vec<_> = (0..k)
            .map(|j| store_f.add(format!("h{j}"), Tensor::vector(lcg(&mut seed, m))))
            .collect();
        let mut store_c = store_f.clone();

        let mut gf = Graph::new();
        let (wv, uv) = (gf.param(&store_f, w), gf.param(&store_f, u));
        let (bv, xv) = (gf.param(&store_f, b), gf.param(&store_f, x));
        let hs: Vec<_> = hs_ids.iter().map(|&h| gf.param(&store_f, h)).collect();
        let panel = gf.gate_batch(wv, xv, uv, &hs, bv, Act::Sigmoid);
        let lf = gf.sum(panel);
        gf.backward(lf, &mut store_f);

        let mut gc = Graph::new();
        let (wv, uv) = (gc.param(&store_c, w), gc.param(&store_c, u));
        let (bv, xv) = (gc.param(&store_c, b), gc.param(&store_c, x));
        let mut rows = Vec::new();
        let mut loss = None;
        for &h in &hs_ids {
            let hv = gc.param(&store_c, h);
            let y = gc.gate(wv, xv, uv, hv, bv, Act::Sigmoid);
            rows.push(y);
            let s = gc.sum(y);
            loss = Some(match loss {
                None => s,
                Some(acc) => gc.add(acc, s),
            });
        }
        gc.backward(loss.unwrap(), &mut store_c);

        for (j, y) in rows.iter().enumerate() {
            assert_eq!(
                gf.value(panel).data()[j * m..(j + 1) * m]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                bits(gc.value(*y)),
                "row {j} forward"
            );
        }
        for p in [w, u, b, x].into_iter().chain(hs_ids) {
            assert_eq!(bits(&store_f.get(p).grad), bits(&store_c.get(p).grad));
        }
    }

    #[test]
    fn fma_rows_is_bitwise_identical_to_mul_add_chain() {
        let (k, m) = (3, 5);
        let mut seed = 0xfa15e;
        let scale_rows: Vec<Vec<f32>> = (0..k).map(|_| lcg(&mut seed, m)).collect();
        let base_data = lcg(&mut seed, m);
        let item_data: Vec<Vec<f32>> = (0..k).map(|_| lcg(&mut seed, m)).collect();
        let probe = lcg(&mut seed, m);

        let mut store_f = ParamStore::new();
        let base = store_f.add("base", Tensor::vector(base_data.clone()));
        let scales =
            store_f.add("scales", Tensor::from_vec(k, m, scale_rows.concat()));
        let items_f: Vec<_> = (0..k)
            .map(|j| store_f.add(format!("c{j}"), Tensor::vector(item_data[j].clone())))
            .collect();

        let mut store_c = ParamStore::new();
        let base_c = store_c.add("base", Tensor::vector(base_data));
        let srow_ids: Vec<_> = (0..k)
            .map(|j| store_c.add(format!("s{j}"), Tensor::vector(scale_rows[j].clone())))
            .collect();
        let items_c: Vec<_> = (0..k)
            .map(|j| store_c.add(format!("c{j}"), Tensor::vector(item_data[j].clone())))
            .collect();

        let mut gf = Graph::new();
        let bv = gf.param(&store_f, base);
        let sv = gf.param(&store_f, scales);
        let iv: Vec<_> = items_f.iter().map(|&p| gf.param(&store_f, p)).collect();
        let yf = gf.fma_rows(bv, sv, &iv);
        let pf = gf.input(Tensor::vector(probe.clone()));
        let lf = gf.dot(yf, pf);
        gf.backward(lf, &mut store_f);

        let mut gc = Graph::new();
        let mut acc = gc.param(&store_c, base_c);
        let yc = {
            for j in 0..k {
                let s = gc.param(&store_c, srow_ids[j]);
                let c = gc.param(&store_c, items_c[j]);
                let t = gc.mul(s, c);
                acc = gc.add(acc, t);
            }
            acc
        };
        let pc = gc.input(Tensor::vector(probe));
        let lc = gc.dot(yc, pc);
        gc.backward(lc, &mut store_c);

        assert_eq!(bits(gf.value(yf)), bits(gc.value(yc)), "forward");
        assert_eq!(bits(&store_f.get(base).grad), bits(&store_c.get(base_c).grad));
        for j in 0..k {
            assert_eq!(
                store_f.get(scales).grad.data()[j * m..(j + 1) * m]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                bits(&store_c.get(srow_ids[j]).grad),
                "d_scales row {j}"
            );
            assert_eq!(
                bits(&store_f.get(items_f[j]).grad),
                bits(&store_c.get(items_c[j]).grad),
                "d_item {j}"
            );
        }
    }

    #[test]
    fn affine_batch_is_bitwise_identical_to_per_item_affine() {
        // Odd shapes on purpose: 5 output rows (not a block multiple),
        // including the k=1 and n=1 edge panels.
        for (k, m, n) in [(3, 5, 3), (1, 5, 3), (3, 5, 1), (4, 1, 3)] {
            let mut seed = 0xabcd ^ (k * 100 + m * 10 + n) as u64;
            let mut store_f = ParamStore::new();
            let w = store_f.add("w", Tensor::from_vec(m, n, lcg(&mut seed, m * n)));
            let b = store_f.add("b", Tensor::vector(lcg(&mut seed, m)));
            let xs_ids: Vec<_> = (0..k)
                .map(|j| store_f.add(format!("x{j}"), Tensor::vector(lcg(&mut seed, n))))
                .collect();
            let mut store_c = store_f.clone();

            let mut gf = Graph::new();
            let (wv, bv) = (gf.param(&store_f, w), gf.param(&store_f, b));
            let xs: Vec<_> = xs_ids.iter().map(|&x| gf.param(&store_f, x)).collect();
            let packed = gf.pack(&xs);
            let panel = gf.affine_batch(wv, packed, Some(bv));
            // Route the loss through batch_item so its backward runs too.
            let mut loss = None;
            let mut items_f = Vec::new();
            for j in 0..k {
                let row = gf.batch_item(panel, j);
                items_f.push(row);
                let s = gf.sum(row);
                loss = Some(match loss {
                    None => s,
                    Some(acc) => gf.add(acc, s),
                });
            }
            gf.backward(loss.unwrap(), &mut store_f);

            let mut gc = Graph::new();
            let (wv, bv) = (gc.param(&store_c, w), gc.param(&store_c, b));
            let mut loss = None;
            let mut items_c = Vec::new();
            for &x in &xs_ids {
                let xv = gc.param(&store_c, x);
                let y = gc.affine(wv, xv, bv);
                items_c.push(y);
                let s = gc.sum(y);
                loss = Some(match loss {
                    None => s,
                    Some(acc) => gc.add(acc, s),
                });
            }
            gc.backward(loss.unwrap(), &mut store_c);

            for j in 0..k {
                assert_eq!(
                    bits(gf.value(items_f[j])),
                    bits(gc.value(items_c[j])),
                    "row {j} forward (k={k} m={m} n={n})"
                );
            }
            for p in [w, b].into_iter().chain(xs_ids) {
                assert_eq!(
                    bits(&store_f.get(p).grad),
                    bits(&store_c.get(p).grad),
                    "grad (k={k} m={m} n={n})"
                );
            }
        }
    }

    #[test]
    fn batched_attention_panel_matches_per_key_chain_bitwise() {
        // add_rows + tanh-on-panel + row_dots vs the per-key
        // add/tanh/dot/stack_scalars chain.
        let (k, n) = (3, 5);
        let mut seed = 0xa77e;
        let mut store_f = ParamStore::new();
        let b = store_f.add("b", Tensor::vector(lcg(&mut seed, n)));
        let v = store_f.add("v", Tensor::vector(lcg(&mut seed, n)));
        let key_ids: Vec<_> = (0..k)
            .map(|j| store_f.add(format!("k{j}"), Tensor::vector(lcg(&mut seed, n))))
            .collect();
        let mut store_c = store_f.clone();
        let probe = lcg(&mut seed, k);

        let mut gf = Graph::new();
        let (bv, vv) = (gf.param(&store_f, b), gf.param(&store_f, v));
        let keys: Vec<_> = key_ids.iter().map(|&p| gf.param(&store_f, p)).collect();
        let packed = gf.pack(&keys);
        let shifted = gf.add_rows(packed, bv);
        let panel = gf.tanh(shifted);
        let scores_f = gf.row_dots(panel, vv);
        let pf = gf.input(Tensor::vector(probe.clone()));
        let lf = gf.dot(scores_f, pf);
        gf.backward(lf, &mut store_f);

        let mut gc = Graph::new();
        let (bv, vv) = (gc.param(&store_c, b), gc.param(&store_c, v));
        let mut dots = Vec::new();
        for &p in &key_ids {
            let kv = gc.param(&store_c, p);
            let s = gc.add(kv, bv);
            let t = gc.tanh(s);
            dots.push(gc.dot(t, vv));
        }
        let scores_c = gc.stack_scalars(&dots);
        let pc = gc.input(Tensor::vector(probe));
        let lc = gc.dot(scores_c, pc);
        gc.backward(lc, &mut store_c);

        assert_eq!(bits(gf.value(scores_f)), bits(gc.value(scores_c)), "scores");
        for p in [b, v].into_iter().chain(key_ids) {
            assert_eq!(bits(&store_f.get(p).grad), bits(&store_c.get(p).grad));
        }
    }
}
