//! The computation graph with reverse-mode automatic differentiation.
//!
//! A fresh [`Graph`] is built per example (define-by-run, like the
//! TensorFlow-eager/PyTorch style the paper's models would use today).
//! Leaves are constants ([`Graph::input`]), whole parameters
//! ([`Graph::param`]) or single embedding rows ([`Graph::param_row`]);
//! interior nodes are the operators the paper's architecture needs: affine
//! maps, pointwise nonlinearities, concatenation, softmax/attention
//! weighting, max-pooling over path embeddings, and cross-entropy loss.
//!
//! Differentiation comes in two flavours: [`Graph::backward_grads`]
//! computes a detached [`ParamGrads`] against a shared `&ParamStore`
//! (the form the data-parallel training engine needs — many graphs can
//! run backward concurrently over one store), and [`Graph::backward`]
//! is the convenience wrapper that immediately folds those gradients
//! into a `&mut ParamStore`.

use crate::store::{ParamGrads, ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    ParamRow(ParamId, usize),
    MatVec(VarId, VarId),
    Affine(VarId, VarId, VarId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    Scale(VarId, f32),
    MulScalar(VarId, VarId),
    Tanh(VarId),
    Sigmoid(VarId),
    Relu(VarId),
    Concat(Vec<VarId>),
    Dot(VarId, VarId),
    StackScalars(Vec<VarId>),
    Softmax(VarId),
    Sum(VarId),
    Mean(VarId),
    SumVecs(Vec<VarId>),
    MaxPool(Vec<VarId>),
    WeightedSum { items: Vec<VarId>, weights: VarId },
    CrossEntropy { logits: VarId, target: usize },
}

/// A define-by-run computation graph.
#[derive(Debug, Default)]
pub struct Graph {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    /// Memo for [`Graph::param_row`]: repeated lookups of the same
    /// embedding row (ubiquitous in trace encodings — the same variable
    /// or opcode appears many times per example) reuse one node instead
    /// of cloning the row again.
    row_cache: HashMap<(ParamId, usize), VarId>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The forward value of `id`.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.values[id.0]
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.ops.push(op);
        self.values.push(value);
        VarId(self.ops.len() - 1)
    }

    /// A constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(Op::Input, value)
    }

    /// A leaf bound to a whole parameter; its gradient accumulates into
    /// the store on [`Graph::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        let value = store.get(id).value.clone();
        self.push(Op::Param(id), value)
    }

    /// A leaf bound to one row of a parameter matrix, as a column vector —
    /// the embedding-lookup primitive.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn param_row(&mut self, store: &ParamStore, id: ParamId, row: usize) -> VarId {
        if let Some(&cached) = self.row_cache.get(&(id, row)) {
            return cached;
        }
        let p = &store.get(id).value;
        assert!(row < p.rows(), "param_row {row} out of {} rows", p.rows());
        let d = p.cols();
        let data = p.data()[row * d..(row + 1) * d].to_vec();
        let var = self.push(Op::ParamRow(id, row), Tensor::vector(data));
        self.row_cache.insert((id, row), var);
        var
    }

    /// Matrix–vector product.
    pub fn matvec(&mut self, w: VarId, x: VarId) -> VarId {
        let value = self.values[w.0].matvec(&self.values[x.0]);
        self.push(Op::MatVec(w, x), value)
    }

    /// Fused affine map `w · x + b` (one kernel pass, no intermediate
    /// product node) — the workhorse of every linear/GRU/LSTM layer.
    pub fn affine(&mut self, w: VarId, x: VarId, b: VarId) -> VarId {
        let value = self.values[w.0].affine(&self.values[x.0], &self.values[b.0]);
        self.push(Op::Affine(w, x, b), value)
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut value = self.values[a.0].clone();
        value.axpy(1.0, &self.values[b.0]);
        self.push(Op::Add(a, b), value)
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let mut value = self.values[a.0].clone();
        value.axpy(-1.0, &self.values[b.0]);
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let av = &self.values[a.0];
        let bv = &self.values[b.0];
        assert_eq!(av.len(), bv.len(), "mul shape mismatch");
        let data = av.data().iter().zip(bv.data()).map(|(x, y)| x * y).collect();
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Mul(a, b), value)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let av = &self.values[a.0];
        let data = av.data().iter().map(|x| x * c).collect();
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Scale(a, c), value)
    }

    /// Multiplication of a vector by a 1×1 graph scalar.
    pub fn mul_scalar(&mut self, v: VarId, s: VarId) -> VarId {
        let sv = self.values[s.0].item();
        let vv = &self.values[v.0];
        let data = vv.data().iter().map(|x| x * sv).collect();
        let value = Tensor::from_vec(vv.rows(), vv.cols(), data);
        self.push(Op::MulScalar(v, s), value)
    }

    /// Pointwise `tanh`.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let av = &self.values[a.0];
        let data = av.data().iter().map(|x| x.tanh()).collect();
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Tanh(a), value)
    }

    /// Pointwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let av = &self.values[a.0];
        let data = av.data().iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect();
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Sigmoid(a), value)
    }

    /// Pointwise rectifier.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let av = &self.values[a.0];
        let data = av.data().iter().map(|x| x.max(0.0)).collect();
        let value = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Relu(a), value)
    }

    /// Concatenation of column vectors.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or a part is not a vector.
    pub fn concat(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat of zero vectors");
        let mut data = Vec::new();
        for p in parts {
            let v = &self.values[p.0];
            assert!(v.is_vector(), "concat parts must be vectors");
            data.extend_from_slice(v.data());
        }
        self.push(Op::Concat(parts.to_vec()), Tensor::vector(data))
    }

    /// Dot product of two equal-length vectors, as a 1×1 tensor.
    pub fn dot(&mut self, a: VarId, b: VarId) -> VarId {
        let value = Tensor::scalar(self.values[a.0].dot(&self.values[b.0]));
        self.push(Op::Dot(a, b), value)
    }

    /// Stacks 1×1 scalars into a vector.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or an entry is not 1×1.
    pub fn stack_scalars(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "stack of zero scalars");
        let data: Vec<f32> = parts.iter().map(|p| self.values[p.0].item()).collect();
        self.push(Op::StackScalars(parts.to_vec()), Tensor::vector(data))
    }

    /// Numerically-stable softmax over a vector.
    pub fn softmax(&mut self, a: VarId) -> VarId {
        let value = softmax_vec(&self.values[a.0]);
        self.push(Op::Softmax(a), value)
    }

    /// Sum of all elements, as a 1×1 tensor.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let value = Tensor::scalar(self.values[a.0].data().iter().sum());
        self.push(Op::Sum(a), value)
    }

    /// Mean of all elements, as a 1×1 tensor.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let av = &self.values[a.0];
        let value = Tensor::scalar(av.data().iter().sum::<f32>() / av.len() as f32);
        self.push(Op::Mean(a), value)
    }

    /// Elementwise sum of same-shaped vectors (e.g. TreeLSTM child sums).
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes differ.
    pub fn sum_vecs(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "sum of zero vectors");
        let mut value = self.values[parts[0].0].clone();
        for p in &parts[1..] {
            value.axpy(1.0, &self.values[p.0]);
        }
        self.push(Op::SumVecs(parts.to_vec()), value)
    }

    /// Elementwise max over same-shaped vectors — the paper's
    /// programs-embedding pooling layer.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes differ.
    pub fn max_pool(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "max_pool of zero vectors");
        let first = &self.values[parts[0].0];
        let mut data = first.data().to_vec();
        for p in &parts[1..] {
            let v = &self.values[p.0];
            assert_eq!(v.len(), data.len(), "max_pool shape mismatch");
            for (d, x) in data.iter_mut().zip(v.data()) {
                if *x > *d {
                    *d = *x;
                }
            }
        }
        let value = Tensor::from_vec(first.rows(), first.cols(), data);
        self.push(Op::MaxPool(parts.to_vec()), value)
    }

    /// `Σᵢ weights[i] · items[i]` — the attention-weighted combination used
    /// by the fusion layer and the decoder context vector.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty or `weights` is not an `items.len()`
    /// vector.
    pub fn weighted_sum(&mut self, items: &[VarId], weights: VarId) -> VarId {
        assert!(!items.is_empty(), "weighted_sum of zero items");
        let wv = self.values[weights.0].clone();
        assert_eq!(wv.len(), items.len(), "weights/items length mismatch");
        let mut value = Tensor::zeros(self.values[items[0].0].rows(), self.values[items[0].0].cols());
        for (i, item) in items.iter().enumerate() {
            value.axpy(wv.data()[i], &self.values[item.0]);
        }
        self.push(Op::WeightedSum { items: items.to_vec(), weights }, value)
    }

    /// Cross-entropy loss `-log softmax(logits)[target]`, as a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics when `target` is out of range.
    pub fn cross_entropy(&mut self, logits: VarId, target: usize) -> VarId {
        let lv = &self.values[logits.0];
        assert!(target < lv.len(), "cross_entropy target out of range");
        let probs = softmax_vec(lv);
        let loss = -(probs.data()[target].max(1e-12)).ln();
        self.push(Op::CrossEntropy { logits, target }, Tensor::scalar(loss))
    }

    /// Runs reverse-mode differentiation from the scalar `loss`,
    /// accumulating parameter gradients into `store`. Returns the full
    /// per-node gradient table (useful for tests and for inspecting
    /// attention weights).
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a 1×1 node.
    pub fn backward(&self, loss: VarId, store: &mut ParamStore) -> Vec<Option<Tensor>> {
        let (grads, param_grads) = self.backward_grads(loss, store);
        store.accumulate_grads(&param_grads);
        grads
    }

    /// Runs reverse-mode differentiation from the scalar `loss` without
    /// mutating the store: parameter gradients are returned as a detached
    /// [`ParamGrads`], alongside the per-node gradient table.
    ///
    /// This is the entry point the data-parallel training engine uses —
    /// each worker holds only `&ParamStore` and produces its own
    /// `ParamGrads`, which the main thread folds back in example order.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a 1×1 node.
    pub fn backward_grads(
        &self,
        loss: VarId,
        store: &ParamStore,
    ) -> (Vec<Option<Tensor>>, ParamGrads) {
        assert_eq!(self.values[loss.0].len(), 1, "backward source must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.ops.len()];
        let mut param_grads = ParamGrads::new();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.ops.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Input => {}
                Op::Param(pid) => {
                    param_grads.accumulate(*pid, &g);
                }
                Op::ParamRow(pid, row) => {
                    let p = &store.get(*pid).value;
                    param_grads.accumulate_row(*pid, *row, p.rows(), p.cols(), &g);
                }
                Op::Affine(w, x, b) => {
                    let xv = &self.values[x.0];
                    let wv = &self.values[w.0];
                    acc_with(&mut grads, *w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &g, xv));
                    let dx = wv.matvec_t(&g);
                    acc(&mut grads, *x, &dx);
                    acc(&mut grads, *b, &g);
                }
                Op::MatVec(w, x) => {
                    let xv = &self.values[x.0];
                    let wv = &self.values[w.0];
                    acc_with(&mut grads, *w, wv.rows(), wv.cols(), |t| t.add_outer(1.0, &g, xv));
                    let dx = wv.matvec_t(&g);
                    acc(&mut grads, *x, &dx);
                }
                Op::Add(a, b) => {
                    acc(&mut grads, *a, &g);
                    acc(&mut grads, *b, &g);
                }
                Op::Sub(a, b) => {
                    acc(&mut grads, *a, &g);
                    acc_scaled(&mut grads, *b, -1.0, &g);
                }
                Op::Mul(a, b) => {
                    let ga = elementwise_mul(&g, &self.values[b.0]);
                    let gb = elementwise_mul(&g, &self.values[a.0]);
                    acc(&mut grads, *a, &ga);
                    acc(&mut grads, *b, &gb);
                }
                Op::Scale(a, c) => acc_scaled(&mut grads, *a, *c, &g),
                Op::MulScalar(v, s) => {
                    let sv = self.values[s.0].item();
                    acc_scaled(&mut grads, *v, sv, &g);
                    let ds = Tensor::scalar(g.dot(&self.values[v.0]));
                    acc(&mut grads, *s, &ds);
                }
                Op::Tanh(a) => {
                    let y = &self.values[i];
                    let data = g
                        .data()
                        .iter()
                        .zip(y.data())
                        .map(|(gv, yv)| gv * (1.0 - yv * yv))
                        .collect();
                    let d = Tensor::from_vec(g.rows(), g.cols(), data);
                    acc(&mut grads, *a, &d);
                }
                Op::Sigmoid(a) => {
                    let y = &self.values[i];
                    let data = g
                        .data()
                        .iter()
                        .zip(y.data())
                        .map(|(gv, yv)| gv * yv * (1.0 - yv))
                        .collect();
                    let d = Tensor::from_vec(g.rows(), g.cols(), data);
                    acc(&mut grads, *a, &d);
                }
                Op::Relu(a) => {
                    let x = &self.values[a.0];
                    let data = g
                        .data()
                        .iter()
                        .zip(x.data())
                        .map(|(gv, xv)| if *xv > 0.0 { *gv } else { 0.0 })
                        .collect();
                    let d = Tensor::from_vec(g.rows(), g.cols(), data);
                    acc(&mut grads, *a, &d);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let n = self.values[p.0].len();
                        let slice = Tensor::vector(g.data()[offset..offset + n].to_vec());
                        acc(&mut grads, *p, &slice);
                        offset += n;
                    }
                }
                Op::Dot(a, b) => {
                    let g0 = g.item();
                    acc_scaled(&mut grads, *a, g0, &self.values[b.0]);
                    acc_scaled(&mut grads, *b, g0, &self.values[a.0]);
                }
                Op::StackScalars(parts) => {
                    for (k, p) in parts.iter().enumerate() {
                        acc(&mut grads, *p, &Tensor::scalar(g.data()[k]));
                    }
                }
                Op::Softmax(a) => {
                    // dx = y ⊙ (g − ⟨g, y⟩)
                    let y = &self.values[i];
                    let gy: f32 = g.dot(y);
                    let data = y
                        .data()
                        .iter()
                        .zip(g.data())
                        .map(|(yv, gv)| yv * (gv - gy))
                        .collect();
                    let d = Tensor::from_vec(g.rows(), g.cols(), data);
                    acc(&mut grads, *a, &d);
                }
                Op::Sum(a) => {
                    let g0 = g.item();
                    let av = &self.values[a.0];
                    let d = Tensor::full(av.rows(), av.cols(), g0);
                    acc(&mut grads, *a, &d);
                }
                Op::Mean(a) => {
                    let av = &self.values[a.0];
                    let g0 = g.item() / av.len() as f32;
                    let d = Tensor::full(av.rows(), av.cols(), g0);
                    acc(&mut grads, *a, &d);
                }
                Op::SumVecs(parts) => {
                    for p in parts {
                        acc(&mut grads, *p, &g);
                    }
                }
                Op::MaxPool(parts) => {
                    // Route gradient to the argmax contributor per element;
                    // ties go to the earliest part (deterministic).
                    let y = &self.values[i];
                    for p in parts {
                        let v = &self.values[p.0];
                        let data: Vec<f32> = v
                            .data()
                            .iter()
                            .zip(y.data())
                            .zip(g.data())
                            .map(|((xv, yv), gv)| if xv == yv { *gv } else { 0.0 })
                            .collect();
                        // Only the first part matching the max receives the
                        // gradient: mask out later duplicates.
                        let d = Tensor::from_vec(v.rows(), v.cols(), data);
                        acc(&mut grads, *p, &d);
                        // Note: exact float ties across different parts are
                        // measure-zero with real activations; duplicating
                        // the gradient there is harmless for training.
                    }
                }
                Op::WeightedSum { items, weights } => {
                    let wv = self.values[weights.0].clone();
                    let mut dw = vec![0.0f32; items.len()];
                    for (k, item) in items.iter().enumerate() {
                        acc_scaled(&mut grads, *item, wv.data()[k], &g);
                        dw[k] = g.dot(&self.values[item.0]);
                    }
                    acc(&mut grads, *weights, &Tensor::vector(dw));
                }
                Op::CrossEntropy { logits, target } => {
                    let g0 = g.item();
                    let mut d = softmax_vec(&self.values[logits.0]);
                    {
                        let data = d.data_mut();
                        data[*target] -= 1.0;
                        data.iter_mut().for_each(|v| *v *= g0);
                    }
                    acc(&mut grads, *logits, &d);
                }
            }
        }
        (grads, param_grads)
    }
}

fn softmax_vec(x: &Tensor) -> Tensor {
    let max = x.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.data().iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(x.rows(), x.cols(), exps.into_iter().map(|v| v / sum).collect())
}

fn elementwise_mul(a: &Tensor, b: &Tensor) -> Tensor {
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

fn acc(grads: &mut [Option<Tensor>], id: VarId, delta: &Tensor) {
    match &mut grads[id.0] {
        Some(g) => g.axpy(1.0, delta),
        slot @ None => *slot = Some(delta.clone()),
    }
}

fn acc_scaled(grads: &mut [Option<Tensor>], id: VarId, alpha: f32, delta: &Tensor) {
    match &mut grads[id.0] {
        Some(g) => g.axpy(alpha, delta),
        slot @ None => {
            let mut t = Tensor::zeros(delta.rows(), delta.cols());
            t.axpy(alpha, delta);
            *slot = Some(t);
        }
    }
}

/// Accumulates into a (rows×cols) gradient through a closure (used for the
/// outer-product update of matrix gradients).
fn acc_with(
    grads: &mut [Option<Tensor>],
    id: VarId,
    rows: usize,
    cols: usize,
    f: impl FnOnce(&mut Tensor),
) {
    let slot = &mut grads[id.0];
    if slot.is_none() {
        *slot = Some(Tensor::zeros(rows, cols));
    }
    f(slot.as_mut().expect("just initialized"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![1.0, 2.0, 3.0]));
        let y = g.softmax(x);
        let sum: f32 = g.value(y).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Monotone in inputs.
        let d = g.value(y).data();
        assert!(d[0] < d[1] && d[1] < d[2]);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = sum(tanh(W x)); check dW numerically.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]));

        let loss_of = |store: &ParamStore| {
            let mut g = Graph::new();
            let wv = g.param(store, w);
            let x = g.input(Tensor::vector(vec![0.5, -1.0]));
            let h = g.matvec(wv, x);
            let t = g.tanh(h);
            let l = g.sum(t);
            (g, l)
        };

        let (g, l) = loss_of(&store);
        g.backward(l, &mut store);

        let eps = 1e-3f32;
        for k in 0..4 {
            let analytic = store.get(w).grad.data()[k];
            let mut plus = store.clone();
            plus.get_mut(w).value.data_mut()[k] += eps;
            let (gp, lp) = loss_of(&plus);
            let mut minus = store.clone();
            minus.get_mut(w).value.data_mut()[k] -= eps;
            let (gm, lm) = loss_of(&minus);
            let numeric = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "dW[{k}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut store = ParamStore::new();
        let p = store.add("logits", Tensor::vector(vec![0.5, -0.5, 1.0]));
        let mut g = Graph::new();
        let logits = g.param(&store, p);
        let loss = g.cross_entropy(logits, 2);
        g.backward(loss, &mut store);
        let probs = softmax_vec(&store.get(p).value);
        let grad = &store.get(p).grad;
        for k in 0..3 {
            let expected = probs.data()[k] - if k == 2 { 1.0 } else { 0.0 };
            assert!((grad.data()[k] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn affine_matches_matvec_plus_bias_forward_and_backward() {
        let mut store_a = ParamStore::new();
        let w_a = store_a.add("w", Tensor::from_vec(3, 2, vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]));
        let b_a = store_a.add("b", Tensor::vector(vec![0.05, -0.1, 0.2]));
        let mut store_b = store_a.clone();
        let (w_b, b_b) = (w_a, b_a);

        let x_data = vec![0.7, -1.3];

        let mut ga = Graph::new();
        let wv = ga.param(&store_a, w_a);
        let bv = ga.param(&store_a, b_a);
        let xv = ga.input(Tensor::vector(x_data.clone()));
        let fused = ga.affine(wv, xv, bv);
        let la = ga.sum(fused);
        ga.backward(la, &mut store_a);

        let mut gb = Graph::new();
        let wv = gb.param(&store_b, w_b);
        let bv = gb.param(&store_b, b_b);
        let xv = gb.input(Tensor::vector(x_data));
        let mv = gb.matvec(wv, xv);
        let unfused = gb.add(mv, bv);
        let lb = gb.sum(unfused);
        gb.backward(lb, &mut store_b);

        for (f, u) in ga.value(fused).data().iter().zip(gb.value(unfused).data()) {
            assert!((f - u).abs() < 1e-6, "forward mismatch: {f} vs {u}");
        }
        for (f, u) in store_a.get(w_a).grad.data().iter().zip(store_b.get(w_b).grad.data()) {
            assert!((f - u).abs() < 1e-6, "dW mismatch: {f} vs {u}");
        }
        for (f, u) in store_a.get(b_a).grad.data().iter().zip(store_b.get(b_b).grad.data()) {
            assert!((f - u).abs() < 1e-6, "db mismatch: {f} vs {u}");
        }
    }

    #[test]
    fn backward_grads_leaves_store_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::vector(vec![1.0, 2.0]));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let l = g.sum(wv);
        let (node_grads, param_grads) = g.backward_grads(l, &store);
        assert_eq!(store.get(w).grad.data(), &[0.0, 0.0], "store must stay clean");
        assert_eq!(node_grads.len(), g.len());
        assert_eq!(node_grads[wv.0].as_ref().map(|t| t.data().to_vec()), None,
            "leaf grads are moved into param_grads, not left in the table");
        store.accumulate_grads(&param_grads);
        assert_eq!(store.get(w).grad.data(), &[1.0, 1.0]);
    }

    #[test]
    fn param_row_lookups_are_cached_per_graph() {
        let mut store = ParamStore::new();
        let emb = store.add("emb", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let a = g.param_row(&store, emb, 1);
        let b = g.param_row(&store, emb, 1);
        assert_eq!(a, b, "repeated lookup must reuse the node");
        let c = g.param_row(&store, emb, 0);
        assert_ne!(a, c);
        // Gradient still accumulates once per use of the shared node.
        let s = g.sum_vecs(&[a, b]);
        let l = g.sum(s);
        g.backward(l, &mut store);
        assert_eq!(store.get(emb).grad.data(), &[0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn param_row_accumulates_into_embedding_matrix() {
        let mut store = ParamStore::new();
        let emb = store.add("emb", Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let mut g = Graph::new();
        let row1 = g.param_row(&store, emb, 1);
        assert_eq!(g.value(row1).data(), &[3.0, 4.0]);
        let s = g.sum(row1);
        g.backward(s, &mut store);
        assert_eq!(store.get(emb).grad.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0, 5.0]));
        let b = store.add("b", Tensor::vector(vec![2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let m = g.max_pool(&[av, bv]);
        assert_eq!(g.value(m).data(), &[2.0, 5.0]);
        let s = g.sum(m);
        g.backward(s, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0.0, 1.0]);
        assert_eq!(store.get(b).grad.data(), &[1.0, 0.0]);
    }

    #[test]
    fn weighted_sum_gradients() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0, 0.0]));
        let b = store.add("b", Tensor::vector(vec![0.0, 1.0]));
        let w = store.add("w", Tensor::vector(vec![0.25, 0.75]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let wv = g.param(&store, w);
        let combo = g.weighted_sum(&[av, bv], wv);
        assert_eq!(g.value(combo).data(), &[0.25, 0.75]);
        let s = g.sum(combo);
        g.backward(s, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0.25, 0.25]);
        assert_eq!(store.get(b).grad.data(), &[0.75, 0.75]);
        // dL/dw[k] = sum(items[k]) = 1 for both.
        assert_eq!(store.get(w).grad.data(), &[1.0, 1.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::vector(vec![1.0]));
        let b = store.add("b", Tensor::vector(vec![2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let c = g.concat(&[av, bv]);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 3.0]);
        let w = g.input(Tensor::vector(vec![10.0, 20.0, 30.0]));
        let d = g.dot(c, w);
        g.backward(d, &mut store);
        assert_eq!(store.get(a).grad.data(), &[10.0]);
        assert_eq!(store.get(b).grad.data(), &[20.0, 30.0]);
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // loss = sum(x) + dot(x, x): dL/dx = 1 + 2x.
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::vector(vec![1.0, -2.0]));
        let mut g = Graph::new();
        let xv = g.param(&store, x);
        let s = g.sum(xv);
        let d = g.dot(xv, xv);
        let loss = g.add(s, d);
        g.backward(loss, &mut store);
        assert_eq!(store.get(x).grad.data(), &[3.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(vec![1.0, 2.0]));
        g.backward(x, &mut store);
    }
}
