//! Recycled tensor storage.
//!
//! Training builds and tears down one computation graph per example; every
//! node value and every backward temporary is an `f32` buffer whose shape
//! is a pure function of the model configuration. Instead of returning
//! those buffers to the heap after each example, a [`BufferPool`] keeps
//! them bucketed by length so the next example's graph can be built with
//! near-zero allocation: in steady state every `take` is served from a
//! bucket filled by the previous `Graph::reset`.
//!
//! ## Invariants
//!
//! - `take(len)` returns a buffer of exactly `len` elements with
//!   **unspecified contents** — callers must overwrite every element (all
//!   kernel `*_into` entry points do). Use [`BufferPool::take_zeroed`]
//!   when the computation accumulates into the buffer.
//! - `put` accepts buffers of any length and files them under their exact
//!   length; a buffer is only ever handed back out at that same length,
//!   so `rows × cols == data.len()` always holds for pooled tensors.
//! - The pool never shrinks on its own: its footprint is bounded by the
//!   high-water mark of live buffers between two `reset`s (one graph's
//!   values plus one backward pass's temporaries), which is exactly the
//!   working set the allocator would otherwise churn through per example.

use std::collections::HashMap;

/// A free-list of `f32` buffers bucketed by exact length.
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// A buffer of exactly `len` elements with **unspecified contents**;
    /// the caller must overwrite every element before reading any.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        match self.buckets.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                vec![0.0; len]
            }
        }
    }

    /// A buffer of exactly `len` zeros.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.iter_mut().for_each(|v| *v = 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse. Empty buffers are dropped.
    pub fn put(&mut self, buf: Vec<f32>) {
        if !buf.is_empty() {
            self.buckets.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn buffers(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Takes served from a bucket since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Takes that had to fall back to a fresh heap allocation.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_storage() {
        let mut pool = BufferPool::new();
        let a = pool.take(4);
        assert_eq!(a.len(), 4);
        assert_eq!(pool.misses(), 1);
        pool.put(a);
        assert_eq!(pool.buffers(), 1);
        let b = pool.take(4);
        assert_eq!(b.len(), 4);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.buffers(), 0);
    }

    #[test]
    fn lengths_are_bucketed_exactly() {
        let mut pool = BufferPool::new();
        pool.put(vec![1.0; 3]);
        let b = pool.take(4);
        assert_eq!(b.len(), 4);
        assert_eq!(pool.misses(), 1, "a 3-buffer must not serve a 4-take");
        assert_eq!(pool.buffers(), 1);
    }

    #[test]
    fn take_zeroed_scrubs_stale_contents() {
        let mut pool = BufferPool::new();
        pool.put(vec![7.0; 2]);
        assert_eq!(pool.take_zeroed(2), vec![0.0, 0.0]);
    }

    #[test]
    fn zero_length_takes_do_not_touch_the_pool() {
        let mut pool = BufferPool::new();
        assert!(pool.take(0).is_empty());
        pool.put(Vec::new());
        assert_eq!(pool.buffers(), 0);
        assert_eq!(pool.misses(), 0);
    }
}
