//! Numerical gradient checking.
//!
//! Every layer in the reproduction is validated against central-difference
//! numerical gradients; this module holds the shared harness.

use crate::store::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Result of a gradient check: the largest absolute deviation observed and
/// where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest |analytic − numeric| over all checked scalars.
    pub max_abs_error: f32,
    /// The parameter and flat element index of the worst deviation.
    pub worst: Option<(ParamId, usize)>,
}

impl GradCheckReport {
    /// True when the worst deviation is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_error <= tol
    }
}

/// Checks analytic gradients in `store` (already populated by a backward
/// pass) against central differences of `loss_fn` with step `eps`.
///
/// `loss_fn` must be a pure function of the store's parameter values that
/// rebuilds the graph and returns the scalar loss.
pub fn grad_check(
    store: &ParamStore,
    params: &[ParamId],
    eps: f32,
    loss_fn: impl Fn(&ParamStore) -> f32,
) -> GradCheckReport {
    let mut report = GradCheckReport { max_abs_error: 0.0, worst: None };
    for &pid in params {
        let n = store.get(pid).value.len();
        for k in 0..n {
            let analytic = store.get(pid).grad.data()[k];
            let mut plus = store.clone();
            plus.get_mut(pid).value.data_mut()[k] += eps;
            let mut minus = store.clone();
            minus.get_mut(pid).value.data_mut()[k] -= eps;
            let numeric = (loss_fn(&plus) - loss_fn(&minus)) / (2.0 * eps);
            let err = (analytic - numeric).abs();
            if err > report.max_abs_error {
                report.max_abs_error = err;
                report.worst = Some((pid, k));
            }
        }
    }
    report
}

/// Convenience: asserts that a model's gradients pass a check, with a
/// helpful failure message.
///
/// # Panics
///
/// Panics when the worst deviation exceeds `tol`.
pub fn assert_grads_close(
    store: &ParamStore,
    params: &[ParamId],
    eps: f32,
    tol: f32,
    loss_fn: impl Fn(&ParamStore) -> f32,
) {
    let report = grad_check(store, params, eps, loss_fn);
    assert!(
        report.passes(tol),
        "gradient check failed: max error {} at {:?} (tol {tol})",
        report.max_abs_error,
        report.worst.map(|(p, k)| (store.get(p).name.clone(), k)),
    );
}

/// Builds a small deterministic pseudo-random tensor (for tests that need
/// varied values without an RNG dependency).
pub fn pseudo_tensor(rows: usize, cols: usize, seed: u32) -> Tensor {
    let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 9) as f32 / (1u32 << 23) as f32) - 1.0 // in (-1, 1)
        })
        .map(|v| v * 0.5)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn detects_correct_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", pseudo_tensor(3, 3, 1));
        let b = store.add("b", pseudo_tensor(3, 1, 2));
        let loss_fn = |s: &ParamStore| {
            let mut g = Graph::new();
            let wv = g.param(s, w);
            let bv = g.param(s, b);
            let x = g.input(Tensor::vector(vec![0.3, -0.7, 0.2]));
            let h = g.matvec(wv, x);
            let h = g.add(h, bv);
            let h = g.sigmoid(h);
            let l = g.cross_entropy(h, 1);
            g.value(l).item()
        };
        // Populate analytic grads.
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let bv = g.param(&store, b);
        let x = g.input(Tensor::vector(vec![0.3, -0.7, 0.2]));
        let h = g.matvec(wv, x);
        let h = g.add(h, bv);
        let h = g.sigmoid(h);
        let l = g.cross_entropy(h, 1);
        g.backward(l, &mut store);

        assert_grads_close(&store, &[w, b], 1e-3, 1e-2, loss_fn);
    }

    #[test]
    fn detects_wrong_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", pseudo_tensor(2, 1, 3));
        // Deliberately wrong analytic gradient.
        store.get_mut(w).grad = Tensor::vector(vec![100.0, -100.0]);
        let loss_fn = |s: &ParamStore| s.get(w).value.data().iter().sum::<f32>();
        let report = grad_check(&store, &[w], 1e-3, loss_fn);
        assert!(!report.passes(1e-2));
    }

    #[test]
    fn pseudo_tensor_is_deterministic_and_bounded() {
        let a = pseudo_tensor(4, 4, 9);
        let b = pseudo_tensor(4, 4, 9);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
        assert!(a.norm() > 0.0);
    }
}
