//! Quantized parameter stores: the `LGRq` checkpoint extension.
//!
//! A [`QuantStore`] is the inference-only counterpart of a
//! [`ParamStore`]: every weight matrix is held as an int8 [`QuantMat`]
//! (per-row absmax scales, DESIGN.md §2f) and every vector (biases,
//! attention probes) as f16-rounded f32 values. Matrices never get
//! dequantized on the hot path — [`QuantMat::matvec_quant`] consumes the
//! codes directly — so a quantized checkpoint is both ~4× smaller on disk
//! and faster to run than its f32 source.
//!
//! On disk the format reuses the `LGR` magic with version byte `q`, so
//! pre-quantization loaders reject it with a typed
//! [`LoadError::VersionMismatch`] instead of reading garbage:
//!
//! ```text
//! "LGR" 'q'
//! u32 count
//! per parameter:
//!   u32 name_len, name bytes (UTF-8)
//!   u32 rows, u32 cols
//!   u8 tag          — 0: f16 vector, 1: int8 matrix
//!   payload         — tag 0: rows·cols × u16 (IEEE binary16, LE)
//!                     tag 1: rows × f32 scales (LE), rows·cols × i8 codes
//! ```

use crate::serialize::{LoadError, Reader, MAGIC};
use crate::store::{ParamId, ParamStore};
use crate::tensor::{f16_bits_to_f32, f32_to_f16_bits, QuantMat, Tensor};
use std::collections::HashSet;

/// The version byte of quantized checkpoints (`LGRq`).
pub const QUANT_VERSION: u8 = b'q';

/// One quantized parameter's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantData {
    /// An int8 weight matrix with per-row absmax scales.
    Mat(QuantMat),
    /// A vector stored as f16 (held dequantized for direct use).
    Vecf(Vec<f32>),
}

/// One quantized parameter: name, shape, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantParam {
    /// The registration name (matches the f32 checkpoint).
    pub name: String,
    /// Row count of the original tensor.
    pub rows: usize,
    /// Column count of the original tensor.
    pub cols: usize,
    /// The quantized payload.
    pub data: QuantData,
}

/// A full quantized parameter store, indexed by the same [`ParamId`]s as
/// the [`ParamStore`] it was built from (registration order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantStore {
    params: Vec<QuantParam>,
}

impl QuantStore {
    /// Quantizes every parameter of `store`: matrices (`cols > 1`) to
    /// int8 with per-row absmax scales, vectors to f16.
    pub fn quantize(store: &ParamStore) -> QuantStore {
        let params = store
            .iter()
            .map(|p| {
                let (rows, cols) = (p.value.rows(), p.value.cols());
                let data = if cols > 1 {
                    QuantData::Mat(QuantMat::quantize(&p.value))
                } else {
                    QuantData::Vecf(
                        p.value
                            .data()
                            .iter()
                            .map(|&v| f16_bits_to_f32(f32_to_f16_bits(v)))
                            .collect(),
                    )
                };
                QuantParam { name: p.name.clone(), rows, cols, data }
            })
            .collect();
        QuantStore { params }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameter registered as `id`.
    pub fn get(&self, id: ParamId) -> &QuantParam {
        &self.params[id.0]
    }

    /// The int8 matrix registered as `id`.
    ///
    /// # Panics
    ///
    /// Panics when the parameter is a vector.
    pub fn mat(&self, id: ParamId) -> &QuantMat {
        match &self.params[id.0].data {
            QuantData::Mat(m) => m,
            QuantData::Vecf(_) => {
                panic!("parameter {:?} is a vector, not a matrix", self.params[id.0].name)
            }
        }
    }

    /// The f16-stored vector registered as `id`.
    ///
    /// # Panics
    ///
    /// Panics when the parameter is a matrix.
    pub fn vecf(&self, id: ParamId) -> &[f32] {
        match &self.params[id.0].data {
            QuantData::Vecf(v) => v,
            QuantData::Mat(_) => {
                panic!("parameter {:?} is a matrix, not a vector", self.params[id.0].name)
            }
        }
    }

    /// Dequantizes row `r` of matrix `id` into `out` (embedding lookups).
    ///
    /// # Panics
    ///
    /// Panics when the parameter is a vector, `r` is out of range, or
    /// `out` is not `cols` long.
    pub fn row(&self, id: ParamId, r: usize, out: &mut [f32]) {
        let m = self.mat(id);
        assert!(r < m.rows(), "row {r} out of {}", m.rows());
        assert_eq!(out.len(), m.cols(), "row buffer length mismatch");
        let s = m.scales()[r];
        for (o, &q) in out.iter_mut().zip(&m.codes()[r * m.cols()..(r + 1) * m.cols()]) {
            *o = q as f32 * s;
        }
    }

    /// Rebuilds an f32 [`ParamStore`] from the quantized values (lossy:
    /// int8/f16 precision). Lets f32-only consumers read a quantized
    /// checkpoint.
    pub fn dequantize(&self) -> ParamStore {
        let mut store = ParamStore::new();
        for p in &self.params {
            let value = match &p.data {
                QuantData::Mat(m) => m.dequantize(),
                QuantData::Vecf(v) => Tensor::from_vec(p.rows, p.cols, v.clone()),
            };
            store.add(p.name.clone(), value);
        }
        store
    }

    /// The serialized payload size in bytes (codes + scales + f16s,
    /// without record framing) — the number behind the "~4× smaller"
    /// claim in the README.
    pub fn payload_bytes(&self) -> usize {
        self.params
            .iter()
            .map(|p| match &p.data {
                QuantData::Mat(m) => m.codes().len() + 4 * m.scales().len(),
                QuantData::Vecf(v) => 2 * v.len(),
            })
            .sum()
    }
}

/// Serializes a quantized store in the binary `LGRq` format.
pub fn save_store_quantized(qs: &QuantStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + qs.payload_bytes() + qs.len() * 32);
    out.extend_from_slice(MAGIC);
    out.push(QUANT_VERSION);
    out.extend_from_slice(&(qs.len() as u32).to_le_bytes());
    for p in &qs.params {
        out.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
        out.extend_from_slice(p.name.as_bytes());
        out.extend_from_slice(&(p.rows as u32).to_le_bytes());
        out.extend_from_slice(&(p.cols as u32).to_le_bytes());
        match &p.data {
            QuantData::Vecf(v) => {
                out.push(0);
                for &x in v {
                    out.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
                }
            }
            QuantData::Mat(m) => {
                out.push(1);
                for &s in m.scales() {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                out.extend_from_slice(unsafe {
                    // i8 and u8 share layout; no values are reinterpreted.
                    std::slice::from_raw_parts(m.codes().as_ptr().cast::<u8>(), m.codes().len())
                });
            }
        }
    }
    out
}

/// Reconstructs a quantized store from [`save_store_quantized`] output.
///
/// # Errors
///
/// Returns [`LoadError::BadMagic`] / [`LoadError::VersionMismatch`] for
/// foreign inputs (an `LGR1` f32 checkpoint reports version `'1'`),
/// [`LoadError::DuplicateParam`] when a name repeats, and
/// [`LoadError::UnexpectedEof`] / [`LoadError::BadRecord`] on truncation
/// or malformed records.
pub fn load_store_quantized(bytes: &[u8]) -> Result<QuantStore, LoadError> {
    if bytes.len() < 4 || &bytes[..3] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    if bytes[3] != QUANT_VERSION {
        return Err(LoadError::VersionMismatch { found: bytes[3] });
    }
    let mut r = Reader { bytes, pos: 4 };
    let count = r.u32()? as usize;
    let mut params = Vec::with_capacity(count.min(1024));
    let mut seen: HashSet<String> = HashSet::new();
    for index in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| LoadError::BadRecord { index })?
            .to_string();
        if !seen.insert(name.clone()) {
            return Err(LoadError::DuplicateParam { name });
        }
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let len = rows.checked_mul(cols).ok_or(LoadError::BadRecord { index })?;
        let tag = r.take(1)?[0];
        let data = match tag {
            0 => {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(f16_bits_to_f32(r.u16()?));
                }
                QuantData::Vecf(v)
            }
            1 => {
                let mut scales = Vec::with_capacity(rows);
                for _ in 0..rows {
                    scales.push(r.f32()?);
                }
                let codes: Vec<i8> = r.take(len)?.iter().map(|&b| b as i8).collect();
                QuantData::Mat(QuantMat::from_parts(rows, cols, codes, scales))
            }
            _ => return Err(LoadError::BadRecord { index }),
        };
        params.push(QuantParam { name, rows, cols, data });
    }
    if r.pos != bytes.len() {
        return Err(LoadError::BadRecord { index: count });
    }
    Ok(QuantStore { params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::load_store_binary;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add(
            "enc.w",
            Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 - 5.5) * 0.17).collect()),
        );
        store.add("enc.b", Tensor::vector(vec![0.125, -0.75, 1.0e-3]));
        store.add("zero.w", Tensor::from_vec(2, 3, vec![0.0; 6]));
        store
    }

    #[test]
    fn quantized_roundtrip_is_bitwise() {
        let qs = QuantStore::quantize(&sample_store());
        let loaded = load_store_quantized(&save_store_quantized(&qs)).unwrap();
        assert_eq!(qs, loaded);
    }

    #[test]
    fn f32_loader_rejects_quantized_checkpoints() {
        let qs = QuantStore::quantize(&sample_store());
        let bytes = save_store_quantized(&qs);
        assert_eq!(
            load_store_binary(&bytes).unwrap_err(),
            LoadError::VersionMismatch { found: b'q' }
        );
    }

    #[test]
    fn quantized_loader_rejects_f32_checkpoints() {
        let bytes = crate::serialize::save_store_binary(&sample_store());
        assert_eq!(
            load_store_quantized(&bytes).unwrap_err(),
            LoadError::VersionMismatch { found: b'1' }
        );
    }

    #[test]
    fn truncated_quantized_checkpoint_is_rejected() {
        let qs = QuantStore::quantize(&sample_store());
        let bytes = save_store_quantized(&qs);
        assert!(load_store_quantized(&bytes[..bytes.len() - 2]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(load_store_quantized(&extended).is_err());
    }

    #[test]
    fn dequantize_stays_within_half_a_step() {
        let store = sample_store();
        let qs = QuantStore::quantize(&store);
        let deq = qs.dequantize();
        let id = ParamId(0);
        let (orig, back) = (&store.get(id).value, &deq.get(id).value);
        let m = qs.mat(id);
        for r in 0..orig.rows() {
            let bound = m.scales()[r] / 2.0 + 1e-12;
            for c in 0..orig.cols() {
                let err = (orig.data()[r * 4 + c] - back.data()[r * 4 + c]).abs();
                assert!(err <= bound, "row {r} col {c}: err {err} > {bound}");
            }
        }
        // Vectors hold the f16 rounding of the originals.
        let want: Vec<f32> = [0.125f32, -0.75, 1.0e-3]
            .iter()
            .map(|&v| f16_bits_to_f32(f32_to_f16_bits(v)))
            .collect();
        assert_eq!(deq.get(ParamId(1)).value.data(), &want[..]);
    }

    #[test]
    fn row_matches_dequantized_matrix() {
        let qs = QuantStore::quantize(&sample_store());
        let deq = qs.mat(ParamId(0)).dequantize();
        let mut row = vec![0.0; 4];
        qs.row(ParamId(0), 2, &mut row);
        assert_eq!(&row[..], &deq.data()[8..12]);
    }

    #[test]
    fn payload_is_about_four_times_smaller() {
        let mut store = ParamStore::new();
        store.add("big.w", crate::gradcheck::pseudo_tensor(64, 64, 3));
        let qs = QuantStore::quantize(&store);
        // 4096 i8 codes + 64 f32 scales vs 4096 f32 values.
        assert!(qs.payload_bytes() * 3 < 4096 * 4);
    }
}
