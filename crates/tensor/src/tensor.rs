//! Dense `f32` tensors (vectors and matrices).
//!
//! The reproduction's models only ever need rank-1 and rank-2 tensors
//! (hidden states, weight matrices), so [`Tensor`] is a row-major 2-D
//! array; vectors are `n × 1`. The hot kernels ([`Tensor::matvec`] and
//! the fused [`Tensor::affine`]) are blocked and unrolled — four rows at
//! a time, four independent column accumulators per row — but remain
//! single-threaded and fully deterministic: for a given shape the
//! floating-point reduction order is fixed, so repeated runs (and the
//! data-parallel training engine in `par`, which only parallelizes
//! *across* examples) are bitwise reproducible.

use std::fmt;

/// A row-major 2-D tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape ({rows}×{cols}) does not match data length");
        Tensor { rows, cols, data }
    }

    /// A column vector from data.
    pub fn vector(data: Vec<f32>) -> Tensor {
        let rows = data.len();
        Tensor { rows, cols: 1, data }
    }

    /// A 1×1 tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor { rows: 1, cols: 1, data: vec![v] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for `n × 1` tensors.
    pub fn is_vector(&self) -> bool {
        self.cols == 1
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its backing buffer (so the storage
    /// can be recycled through a [`crate::BufferPool`]).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of ({}, {})", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix–vector product `self · x` (self is `m × n`, `x` is `n × 1`).
    ///
    /// Uses the blocked kernel: rows are processed four at a time so each
    /// load of `x[c]` feeds four independent accumulators.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert!(x.is_vector(), "matvec rhs must be a vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        let mut out = vec![0.0f32; self.rows];
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, None, &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::matvec`] writing into a caller-provided buffer (which may
    /// hold stale contents — every element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != rows`.
    pub fn matvec_into(&self, x: &Tensor, out: &mut [f32]) {
        assert!(x.is_vector(), "matvec rhs must be a vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, None, out);
    }

    /// Fused affine map `self · x + b` in one pass (self is `m × n`, `x`
    /// is `n × 1`, `b` is `m × 1`). Equivalent to `matvec` followed by an
    /// add, without materialising the intermediate product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn affine(&self, x: &Tensor, b: &Tensor) -> Tensor {
        assert!(x.is_vector(), "affine rhs must be a vector");
        assert!(b.is_vector(), "affine bias must be a vector");
        assert_eq!(self.cols, x.rows, "affine shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(self.rows, b.rows, "affine bias length mismatch {} vs {}", self.rows, b.rows);
        let mut out = vec![0.0f32; self.rows];
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, Some(&b.data), &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::affine`] writing into a caller-provided buffer (which may
    /// hold stale contents — every element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != rows`.
    pub fn affine_into(&self, x: &Tensor, b: &Tensor, out: &mut [f32]) {
        assert!(x.is_vector(), "affine rhs must be a vector");
        assert!(b.is_vector(), "affine bias must be a vector");
        assert_eq!(self.cols, x.rows, "affine shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(self.rows, b.rows, "affine bias length mismatch {} vs {}", self.rows, b.rows);
        assert_eq!(out.len(), self.rows, "affine output length mismatch");
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, Some(&b.data), out);
    }

    /// `self · x (+ bias)` over raw slices — the same blocked kernel (and
    /// therefore the same accumulation order, bitwise) as
    /// [`Tensor::matvec_into`] / [`Tensor::affine_into`], without
    /// requiring the operands to be wrapped in tensors. This is the
    /// weight-product primitive of the tape-free inference engines.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn matvec_slice(&self, x: &[f32], bias: Option<&[f32]>, out: &mut [f32]) {
        assert_eq!(self.cols, x.len(), "matvec_slice input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec_slice output length mismatch");
        if let Some(b) = bias {
            assert_eq!(b.len(), self.rows, "matvec_slice bias length mismatch");
        }
        matvec_blocked(&self.data, self.rows, self.cols, x, bias, out);
    }

    /// Transposed matrix–vector product `selfᵀ · g`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_t(&self, g: &Tensor) -> Tensor {
        assert!(g.is_vector());
        assert_eq!(self.rows, g.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0f32; self.cols];
        self.matvec_t_accumulate(g, &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::matvec_t`] writing into a caller-provided buffer (which
    /// may hold stale contents — it is zeroed first, preserving the exact
    /// accumulation order of the allocating variant).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != cols`.
    pub fn matvec_t_into(&self, g: &Tensor, out: &mut [f32]) {
        assert!(g.is_vector());
        assert_eq!(self.rows, g.rows, "matvec_t shape mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t output length mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        self.matvec_t_accumulate(g, out);
    }

    fn matvec_t_accumulate(&self, g: &Tensor, out: &mut [f32]) {
        for r in 0..self.rows {
            let gv = g.data[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * gv;
            }
        }
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Accumulates the outer product `alpha * g ⊗ x` into `self`
    /// (`self` is `m × n`, `g` is `m × 1`, `x` is `n × 1`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_outer(&mut self, alpha: f32, g: &Tensor, x: &Tensor) {
        assert_eq!(self.rows, g.rows, "add_outer shape mismatch");
        assert_eq!(self.cols, x.rows, "add_outer shape mismatch");
        for r in 0..self.rows {
            let gv = alpha * g.data[r];
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, v) in row.iter_mut().zip(&x.data) {
                *w += gv * v;
            }
        }
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Batch-major fused GEMM: `self · xsᵀ (+ b)`, one call per layer for a
    /// whole minibatch. `xs` packs `k` input vectors as its rows (`k × n`);
    /// the result packs the `k` outputs as rows (`k × m`). Row `j` of the
    /// result is bitwise identical to `self.affine(x_j, b)` — see
    /// [`gemm_batch`] for the reduction-order contract.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn affine_batch(&self, xs: &Tensor, bias: Option<&Tensor>) -> Tensor {
        assert_eq!(self.cols, xs.cols, "affine_batch shape mismatch {}×{} · ({}×{})ᵀ", self.rows, self.cols, xs.rows, xs.cols);
        if let Some(b) = bias {
            assert!(b.is_vector(), "affine_batch bias must be a vector");
            assert_eq!(self.rows, b.rows, "affine_batch bias length mismatch");
        }
        let k = xs.rows;
        let mut out = vec![0.0f32; k * self.rows];
        gemm_batch(&self.data, self.rows, self.cols, &xs.data, k, bias.map(|b| b.data.as_slice()), &mut out);
        Tensor::from_vec(k, self.rows, out)
    }

    /// Fills the tensor with zeros.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Shared blocked kernel behind [`Tensor::matvec`] and [`Tensor::affine`]:
/// `out[r] = bias[r] + Σ_c w[r,c] · x[c]` (bias treated as zero when absent).
///
/// Rows are processed in blocks of four so each load of `x[c]` feeds four
/// independent accumulators; leftover rows use a 4-way column-unrolled dot
/// product. The floating-point reduction order is a pure function of the
/// shape, so results are reproducible run-to-run and thread-count has no
/// way to influence them (the kernel itself is single-threaded).
fn matvec_blocked(
    w: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    const ROW_BLOCK: usize = 4;
    let bias_at = |r: usize| bias.map_or(0.0, |b| b[r]);
    let mut r = 0;
    while r + ROW_BLOCK <= rows {
        let r0 = &w[r * cols..(r + 1) * cols];
        let r1 = &w[(r + 1) * cols..(r + 2) * cols];
        let r2 = &w[(r + 2) * cols..(r + 3) * cols];
        let r3 = &w[(r + 3) * cols..(r + 4) * cols];
        let (mut a0, mut a1, mut a2, mut a3) =
            (bias_at(r), bias_at(r + 1), bias_at(r + 2), bias_at(r + 3));
        for c in 0..cols {
            let xv = x[c];
            a0 += r0[c] * xv;
            a1 += r1[c] * xv;
            a2 += r2[c] * xv;
            a3 += r3[c] * xv;
        }
        out[r] = a0;
        out[r + 1] = a1;
        out[r + 2] = a2;
        out[r + 3] = a3;
        r += ROW_BLOCK;
    }
    while r < rows {
        out[r] = bias_at(r) + dot_unrolled(&w[r * cols..(r + 1) * cols], x);
        r += 1;
    }
}

/// 4-way unrolled dot product with independent accumulators and a serial
/// tail; the reduction order depends only on the vector length.
fn dot_unrolled(row: &[f32], x: &[f32]) -> f32 {
    let n = row.len();
    let quads = n / 4 * 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut c = 0;
    while c < quads {
        a0 += row[c] * x[c];
        a1 += row[c + 1] * x[c + 1];
        a2 += row[c + 2] * x[c + 2];
        a3 += row[c + 3] * x[c + 3];
        c += 4;
    }
    let mut tail = 0.0f32;
    while c < n {
        tail += row[c] * x[c];
        c += 1;
    }
    (a0 + a1) + (a2 + a3) + tail
}

/// Packed batch-major GEMM kernel: for each of the `k` input rows of `xs`
/// (`k × cols`, row-major), `out[j·rows + r] = bias[r] + Σ_c w[r,c] · xs[j,c]`.
///
/// The weight panel is streamed once per four-row block and reused across
/// every batch item while it is hot in L1, instead of re-reading it per
/// program the way per-example matvecs do. The per-output reduction order
/// (ascending `c`, four independent row accumulators, `dot_unrolled` for
/// leftover rows) is exactly [`Tensor::affine`]'s, so each output row is
/// bitwise identical to the corresponding per-program matvec — this is the
/// equivalence the kernel proptests pin down.
///
/// The inner loops are written tile-shaped (fixed trip counts, independent
/// accumulators, contiguous loads) so LLVM autovectorizes them; the
/// `throughput_kernels` bench asserts a GFLOP/s floor so a codegen
/// regression to scalar code fails CI.
pub fn gemm_batch(
    w: &[f32],
    rows: usize,
    cols: usize,
    xs: &[f32],
    k: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    const ROW_BLOCK: usize = 4;
    assert_eq!(w.len(), rows * cols, "gemm_batch weight length mismatch");
    assert_eq!(xs.len(), k * cols, "gemm_batch input panel length mismatch");
    assert_eq!(out.len(), k * rows, "gemm_batch output panel length mismatch");
    let bias_at = |r: usize| bias.map_or(0.0, |b| b[r]);
    let mut r = 0;
    while r + ROW_BLOCK <= rows {
        let r0 = &w[r * cols..(r + 1) * cols];
        let r1 = &w[(r + 1) * cols..(r + 2) * cols];
        let r2 = &w[(r + 2) * cols..(r + 3) * cols];
        let r3 = &w[(r + 3) * cols..(r + 4) * cols];
        let (b0, b1, b2, b3) = (bias_at(r), bias_at(r + 1), bias_at(r + 2), bias_at(r + 3));
        for j in 0..k {
            let x = &xs[j * cols..(j + 1) * cols];
            let (mut a0, mut a1, mut a2, mut a3) = (b0, b1, b2, b3);
            for c in 0..cols {
                let xv = x[c];
                a0 += r0[c] * xv;
                a1 += r1[c] * xv;
                a2 += r2[c] * xv;
                a3 += r3[c] * xv;
            }
            let o = &mut out[j * rows + r..j * rows + r + ROW_BLOCK];
            o[0] = a0;
            o[1] = a1;
            o[2] = a2;
            o[3] = a3;
        }
        r += ROW_BLOCK;
    }
    while r < rows {
        let row = &w[r * cols..(r + 1) * cols];
        let b = bias_at(r);
        for j in 0..k {
            out[j * rows + r] = b + dot_unrolled(row, &xs[j * cols..(j + 1) * cols]);
        }
        r += 1;
    }
}

/// The embedding-index search kernel: similarity scores of `k` query
/// vectors against a packed corpus matrix, batch-major over the stored
/// rows. `out[j * rows + r]` is the dot product of query `j` with corpus
/// row `r` — the cosine similarity when both sides are L2-normalized
/// (the `EmbeddingStore` invariant).
///
/// This is a thin entry point over [`gemm_batch`] with no bias, so
/// search rides the same 4-row weight-panel streaming the fused encoder
/// kernels use: each score is one independent dot product, making the
/// result bitwise independent of corpus row order and batch shape.
///
/// # Panics
///
/// Panics on mismatched slice lengths (programming errors, not data
/// errors — callers validate dimensions before reaching the kernel).
pub fn cosine_scores(
    matrix: &[f32],
    rows: usize,
    dim: usize,
    queries: &[f32],
    k: usize,
    out: &mut [f32],
) {
    gemm_batch(matrix, rows, dim, queries, k, None, out);
}

/// An int8-quantized matrix with per-row absmax scales: the storage and
/// inference format behind the `--quantize` checkpoint extension.
///
/// Row `r` of the original matrix is stored as `q[r,c] · scales[r]` with
/// `q ∈ [-127, 127]` and `scales[r] = absmax(row r) / 127`, so the
/// worst-case per-element reconstruction error is `scales[r] / 2` (half a
/// quantization step — the bound the roundtrip proptest asserts).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMat {
    rows: usize,
    cols: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMat {
    /// Quantizes a matrix row-by-row (absmax scaling).
    pub fn quantize(w: &Tensor) -> QuantMat {
        let (rows, cols) = (w.rows(), w.cols());
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &w.data()[r * cols..(r + 1) * cols];
            let absmax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if absmax == 0.0 {
                continue; // all-zero row: scale 0, q all zero.
            }
            let scale = absmax / 127.0;
            scales[r] = scale;
            for (qv, v) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *qv = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantMat { rows, cols, q, scales }
    }

    /// Rebuilds from stored parts (the checkpoint loader).
    ///
    /// # Panics
    ///
    /// Panics when the part lengths do not match the shape.
    pub fn from_parts(rows: usize, cols: usize, q: Vec<i8>, scales: Vec<f32>) -> QuantMat {
        assert_eq!(q.len(), rows * cols, "quantized data length mismatch");
        assert_eq!(scales.len(), rows, "scale count mismatch");
        QuantMat { rows, cols, q, scales }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The int8 codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.q
    }

    /// The per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The dequantized f32 matrix (`q[r,c] · scales[r]`).
    pub fn dequantize(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, qv) in data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(&self.q[r * self.cols..(r + 1) * self.cols])
            {
                *o = *qv as f32 * s;
            }
        }
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Dequantize-free quantized matvec: `out[r] = bias[r] +
    /// (scales[r]·s_x) · Σ_c q[r,c]·xq[c]`, where `xq` is the input
    /// quantized on the fly with one absmax scale `s_x` and the reduction
    /// runs in exact i32 arithmetic (so the quantized path is itself
    /// deterministic). `xq` is caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn matvec_quant(&self, x: &[f32], xq: &mut Vec<i8>, bias: Option<&[f32]>, out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec_quant input length mismatch");
        assert_eq!(out.len(), self.rows, "matvec_quant output length mismatch");
        let bias_at = |r: usize| bias.map_or(0.0, |b| b[r]);
        let absmax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if absmax == 0.0 {
            for (r, o) in out.iter_mut().enumerate() {
                *o = bias_at(r);
            }
            return;
        }
        let s_x = absmax / 127.0;
        xq.clear();
        xq.extend(x.iter().map(|v| (v / s_x).round().clamp(-127.0, 127.0) as i8));
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.q[r * self.cols..(r + 1) * self.cols];
            // Four independent i32 accumulators: integer adds are exact and
            // associative, so this unrolling is pure throughput.
            let quads = self.cols / 4 * 4;
            let (mut a0, mut a1, mut a2, mut a3) = (0i32, 0i32, 0i32, 0i32);
            let mut c = 0;
            while c < quads {
                a0 += row[c] as i32 * xq[c] as i32;
                a1 += row[c + 1] as i32 * xq[c + 1] as i32;
                a2 += row[c + 2] as i32 * xq[c + 2] as i32;
                a3 += row[c + 3] as i32 * xq[c + 3] as i32;
                c += 4;
            }
            let mut acc = a0 + a1 + a2 + a3;
            while c < self.cols {
                acc += row[c] as i32 * xq[c] as i32;
                c += 1;
            }
            *o = bias_at(r) + (self.scales[r] * s_x) * acc as f32;
        }
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits (round-to-nearest-even),
/// the storage format for unquantized vectors in quantized checkpoints.
/// Std-only: no `half` dependency.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;
    if exp == 0xff {
        // Inf / NaN (force a quiet-NaN payload bit so NaN survives).
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits, round to nearest even.
        let mut half_exp = (unbiased + 15) as u32;
        let mut half_mant = mant >> 13;
        let rem = mant & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && half_mant & 1 == 1) {
            half_mant += 1;
            if half_mant == 0x400 {
                half_mant = 0;
                half_exp += 1;
                if half_exp >= 31 {
                    return sign | 0x7c00;
                }
            }
        }
        return sign | ((half_exp as u16) << 10) | half_mant as u16;
    }
    if unbiased < -25 {
        return sign; // underflows to ±0 even after rounding
    }
    // Subnormal half: shift the implicit-1 mantissa into place, round.
    let full_mant = mant | 0x80_0000;
    let shift = (13 - 14 - unbiased) as u32;
    let mut half_mant = full_mant >> shift;
    let rem = full_mant & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && half_mant & 1 == 1) {
        half_mant += 1; // may carry into the exponent: smallest normal, still valid
    }
    sign | half_mant as u16
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact: every f16 value
/// is representable in f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (mant << 13));
    }
    if exp == 0 {
        // ±0 or subnormal: value = mant · 2⁻²⁴, exact in f32.
        let v = mant as f32 / 16_777_216.0;
        return if sign != 0 { -v } else { v };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})[", self.rows, self.cols)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_scores_are_per_row_dot_products() {
        // 3 corpus rows × dim 2, 2 queries; all hand-checkable.
        let matrix = [1.0, 0.0, 0.0, 1.0, 0.6, 0.8];
        let queries = [1.0, 0.0, 0.0, -1.0];
        let mut out = [0.0f32; 6];
        cosine_scores(&matrix, 3, 2, &queries, 2, &mut out);
        assert_eq!(&out[..3], &[1.0, 0.0, 0.6]);
        assert_eq!(&out[3..], &[0.0, -1.0, -0.8]);
        // Row order must not change any individual score (no cross-row
        // accumulation) — swap rows 0 and 2 and compare.
        let swapped = [0.6, 0.8, 0.0, 1.0, 1.0, 0.0];
        let mut out2 = [0.0f32; 6];
        cosine_scores(&swapped, 3, 2, &queries, 2, &mut out2);
        assert_eq!(out[0].to_bits(), out2[2].to_bits());
        assert_eq!(out[2].to_bits(), out2[0].to_bits());
    }

    #[test]
    fn matvec_matches_manual() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = w.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let y = w.matvec_t(&g);
        assert_eq!(y.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut w = Tensor::zeros(2, 2);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let x = Tensor::vector(vec![3.0, 4.0]);
        w.add_outer(1.0, &g, &x);
        assert_eq!(w.data(), &[3.0, 4.0, 6.0, 8.0]);
        w.add_outer(-1.0, &g, &x);
        assert_eq!(w.data(), &[0.0; 4]);
    }

    /// Textbook row-by-row accumulation, the reference the blocked kernel
    /// is checked against.
    fn matvec_naive(w: &Tensor, x: &Tensor, bias: Option<&Tensor>) -> Vec<f32> {
        (0..w.rows())
            .map(|r| {
                let mut acc = bias.map_or(0.0, |b| b.data()[r]);
                for c in 0..w.cols() {
                    acc += w.at(r, c) * x.data()[c];
                }
                acc
            })
            .collect()
    }

    fn pseudo(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Small LCG so values are varied but reproducible without deps.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-5 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn blocked_matvec_matches_naive_on_odd_shapes() {
        // 1×1, 1×n, n×1, and sizes straddling the 4-row / 4-col blocks.
        for &(rows, cols) in
            &[(1, 1), (1, 9), (9, 1), (3, 3), (4, 4), (5, 7), (7, 5), (8, 13), (13, 8), (17, 17)]
        {
            let w = pseudo(rows, cols, (rows * 31 + cols) as u32);
            let x = pseudo(cols, 1, cols as u32 + 1);
            assert_close(w.matvec(&x).data(), &matvec_naive(&w, &x, None));
        }
    }

    #[test]
    fn fused_affine_matches_naive_on_odd_shapes() {
        for &(rows, cols) in &[(1, 1), (1, 6), (6, 1), (4, 4), (5, 5), (6, 10), (11, 3), (19, 7)] {
            let w = pseudo(rows, cols, (rows * 17 + cols) as u32);
            let x = pseudo(cols, 1, rows as u32);
            let b = pseudo(rows, 1, cols as u32 + 99);
            assert_close(w.affine(&x, &b).data(), &matvec_naive(&w, &x, Some(&b)));
        }
    }

    #[test]
    fn affine_equals_matvec_plus_bias() {
        let w = pseudo(6, 5, 1);
        let x = pseudo(5, 1, 2);
        let b = pseudo(6, 1, 3);
        let mut expect = w.matvec(&x);
        expect.axpy(1.0, &b);
        assert_close(w.affine(&x, &b).data(), expect.data());
    }

    #[test]
    fn matvec_is_reproducible_bitwise() {
        let w = pseudo(13, 11, 7);
        let x = pseudo(11, 1, 8);
        let a: Vec<u32> = w.matvec(&x).data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = w.matvec(&x).data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn affine_bias_mismatch_panics() {
        let w = Tensor::zeros(3, 2);
        let x = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![1.0, 2.0]);
        let _ = w.affine(&x, &b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let w = Tensor::zeros(2, 3);
        let x = Tensor::vector(vec![1.0, 2.0]);
        let _ = w.matvec(&x);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Tensor::zeros(1, 1)).is_empty());
    }

    #[test]
    fn gemm_batch_rows_are_bitwise_identical_to_affine() {
        // Odd shapes on purpose: leftover rows (non-multiple of the 4-row
        // block), 1×N, N×1, and single-item panels.
        for (k, m, n) in [(3, 6, 5), (5, 7, 3), (1, 4, 4), (4, 1, 6), (2, 5, 1)] {
            let w = pseudo(m, n, (k * 100 + m * 10 + n) as u32);
            let b = pseudo(m, 1, 7 + k as u32);
            let xs = pseudo(k, n, 31 + m as u32);
            for bias in [Some(&b), None] {
                let panel = w.affine_batch(&xs, bias);
                assert_eq!(panel.rows(), k);
                assert_eq!(panel.cols(), m);
                for j in 0..k {
                    let x = Tensor::vector(xs.data()[j * n..(j + 1) * n].to_vec());
                    let want = match bias {
                        Some(b) => w.affine(&x, b),
                        None => w.matvec(&x),
                    };
                    let got = &panel.data()[j * m..(j + 1) * m];
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "row {j} (k={k} m={m} n={n} bias={})",
                        bias.is_some()
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_roundtrip_error_is_within_half_a_step() {
        let w = pseudo(7, 13, 99);
        let q = QuantMat::quantize(&w);
        let back = q.dequantize();
        for r in 0..7 {
            let bound = q.scales()[r] / 2.0 + 1e-12;
            for c in 0..13 {
                let err = (w.data()[r * 13 + c] - back.data()[r * 13 + c]).abs();
                assert!(err <= bound, "w[{r},{c}]: err {err} > scale/2 {bound}");
            }
        }
        // Round-trip through the checkpoint representation is exact.
        let rebuilt =
            QuantMat::from_parts(q.rows(), q.cols(), q.codes().to_vec(), q.scales().to_vec());
        assert_eq!(q, rebuilt);
    }

    #[test]
    fn quantize_handles_zero_rows() {
        let mut w = pseudo(3, 4, 5);
        w.data_mut()[4..8].fill(0.0);
        let q = QuantMat::quantize(&w);
        assert_eq!(q.scales()[1], 0.0);
        assert_eq!(q.dequantize().data()[4..8], [0.0; 4]);
        // And the quantized matvec treats the zero row as exactly bias.
        let x = pseudo(4, 1, 17);
        let bias = pseudo(3, 1, 23);
        let mut xq = Vec::new();
        let mut out = vec![0.0f32; 3];
        q.matvec_quant(x.data(), &mut xq, Some(bias.data()), &mut out);
        assert_eq!(out[1].to_bits(), bias.data()[1].to_bits());
    }

    #[test]
    fn matvec_quant_tracks_f32_matvec() {
        let w = pseudo(9, 14, 41);
        let x = pseudo(14, 1, 43);
        let b = pseudo(9, 1, 47);
        let exact = w.affine(&x, &b);
        let q = QuantMat::quantize(&w);
        let mut xq = Vec::new();
        let mut out = vec![0.0f32; 9];
        q.matvec_quant(x.data(), &mut xq, Some(b.data()), &mut out);
        // Error budget: per-element weight error ≤ scale_r/2 and input error
        // ≤ s_x/2 compound over the reduction; a loose additive bound
        // suffices to catch scaling/transposition bugs.
        let s_x = x.data().iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
        for (r, (o, e)) in out.iter().zip(exact.data()).enumerate() {
            let x_norm1: f32 = x.data().iter().map(|v| v.abs()).sum();
            let w_norm1: f32 =
                w.data()[r * 14..(r + 1) * 14].iter().map(|v| v.abs()).sum();
            let bound = q.scales()[r] / 2.0 * (x_norm1 + 14.0 * s_x / 2.0)
                + s_x / 2.0 * w_norm1
                + 1e-5;
            let err = (o - e).abs();
            assert!(err <= bound, "row {r}: err {err} > bound {bound}");
        }
        // Zero input short-circuits to bias.
        let mut out2 = vec![9.0f32; 9];
        q.matvec_quant(&[0.0; 14], &mut xq, Some(b.data()), &mut out2);
        assert_eq!(out2, b.data());
    }

    #[test]
    fn f16_roundtrip_is_exact_for_all_f16_values() {
        // Every finite f16 → f32 → f16 round-trip must reproduce the bits;
        // the sweep covers normals, subnormals, zeros and infinities.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let mant = h & 0x3ff;
            if exp == 0x1f && mant != 0 {
                // NaN: payload may be canonicalised, but NaN-ness survives.
                assert!(f16_bits_to_f32(h).is_nan());
                assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)) & 0x7c00, 0x7c00);
                continue;
            }
            let v = f16_bits_to_f32(h);
            assert_eq!(f32_to_f16_bits(v), h, "h={h:#06x} v={v}");
        }
    }

    #[test]
    fn f32_to_f16_rounds_to_nearest_even_and_clamps() {
        assert_eq!(f32_to_f16_bits(0.0), 0);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16::MAX
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // 1 + 2⁻¹¹ is exactly halfway between two halves: ties to even (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + f32::powi(2.0, -11)), 0x3c00);
        // 1 + 3·2⁻¹¹ halfway again: ties to even rounds UP to 1 + 2·2⁻¹⁰.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * f32::powi(2.0, -11)), 0x3c02);
        // Smallest positive subnormal and values below half of it.
        assert_eq!(f32_to_f16_bits(f16_bits_to_f32(0x0001)), 0x0001);
        assert_eq!(f32_to_f16_bits(2.8e-8), 0); // < 2⁻²⁵: underflow to zero
        // f16 precision loss round-trips through the nearest representable.
        let v = 0.1f32;
        let r = f16_bits_to_f32(f32_to_f16_bits(v));
        assert!((v - r).abs() < 1e-4);
    }
}
