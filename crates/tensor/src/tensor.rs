//! Dense `f32` tensors (vectors and matrices).
//!
//! The reproduction's models only ever need rank-1 and rank-2 tensors
//! (hidden states, weight matrices), so [`Tensor`] is a row-major 2-D
//! array; vectors are `n × 1`. Kernels are deliberately simple and
//! deterministic — no BLAS, no threading — so gradient checks and paper
//! experiments are exactly reproducible.

use std::fmt;

/// A row-major 2-D tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape ({rows}×{cols}) does not match data length");
        Tensor { rows, cols, data }
    }

    /// A column vector from data.
    pub fn vector(data: Vec<f32>) -> Tensor {
        let rows = data.len();
        Tensor { rows, cols: 1, data }
    }

    /// A 1×1 tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor { rows: 1, cols: 1, data: vec![v] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for `n × 1` tensors.
    pub fn is_vector(&self) -> bool {
        self.cols == 1
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of ({}, {})", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix–vector product `self · x` (self is `m × n`, `x` is `n × 1`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert!(x.is_vector(), "matvec rhs must be a vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        let mut out = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, v) in row.iter().zip(&x.data) {
                acc += w * v;
            }
            out[r] = acc;
        }
        Tensor::vector(out)
    }

    /// Transposed matrix–vector product `selfᵀ · g`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_t(&self, g: &Tensor) -> Tensor {
        assert!(g.is_vector());
        assert_eq!(self.rows, g.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            let gv = g.data[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * gv;
            }
        }
        Tensor::vector(out)
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Accumulates the outer product `alpha * g ⊗ x` into `self`
    /// (`self` is `m × n`, `g` is `m × 1`, `x` is `n × 1`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_outer(&mut self, alpha: f32, g: &Tensor, x: &Tensor) {
        assert_eq!(self.rows, g.rows, "add_outer shape mismatch");
        assert_eq!(self.cols, x.rows, "add_outer shape mismatch");
        for r in 0..self.rows {
            let gv = alpha * g.data[r];
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, v) in row.iter_mut().zip(&x.data) {
                *w += gv * v;
            }
        }
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Fills the tensor with zeros.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})[", self.rows, self.cols)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = w.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let y = w.matvec_t(&g);
        assert_eq!(y.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut w = Tensor::zeros(2, 2);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let x = Tensor::vector(vec![3.0, 4.0]);
        w.add_outer(1.0, &g, &x);
        assert_eq!(w.data(), &[3.0, 4.0, 6.0, 8.0]);
        w.add_outer(-1.0, &g, &x);
        assert_eq!(w.data(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let w = Tensor::zeros(2, 3);
        let x = Tensor::vector(vec![1.0, 2.0]);
        let _ = w.matvec(&x);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Tensor::zeros(1, 1)).is_empty());
    }
}
