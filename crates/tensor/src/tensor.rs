//! Dense `f32` tensors (vectors and matrices).
//!
//! The reproduction's models only ever need rank-1 and rank-2 tensors
//! (hidden states, weight matrices), so [`Tensor`] is a row-major 2-D
//! array; vectors are `n × 1`. The hot kernels ([`Tensor::matvec`] and
//! the fused [`Tensor::affine`]) are blocked and unrolled — four rows at
//! a time, four independent column accumulators per row — but remain
//! single-threaded and fully deterministic: for a given shape the
//! floating-point reduction order is fixed, so repeated runs (and the
//! data-parallel training engine in `par`, which only parallelizes
//! *across* examples) are bitwise reproducible.

use std::fmt;

/// A row-major 2-D tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape ({rows}×{cols}) does not match data length");
        Tensor { rows, cols, data }
    }

    /// A column vector from data.
    pub fn vector(data: Vec<f32>) -> Tensor {
        let rows = data.len();
        Tensor { rows, cols: 1, data }
    }

    /// A 1×1 tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor { rows: 1, cols: 1, data: vec![v] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for `n × 1` tensors.
    pub fn is_vector(&self) -> bool {
        self.cols == 1
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its backing buffer (so the storage
    /// can be recycled through a [`crate::BufferPool`]).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of ({}, {})", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix–vector product `self · x` (self is `m × n`, `x` is `n × 1`).
    ///
    /// Uses the blocked kernel: rows are processed four at a time so each
    /// load of `x[c]` feeds four independent accumulators.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert!(x.is_vector(), "matvec rhs must be a vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        let mut out = vec![0.0f32; self.rows];
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, None, &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::matvec`] writing into a caller-provided buffer (which may
    /// hold stale contents — every element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != rows`.
    pub fn matvec_into(&self, x: &Tensor, out: &mut [f32]) {
        assert!(x.is_vector(), "matvec rhs must be a vector");
        assert_eq!(self.cols, x.rows, "matvec shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, None, out);
    }

    /// Fused affine map `self · x + b` in one pass (self is `m × n`, `x`
    /// is `n × 1`, `b` is `m × 1`). Equivalent to `matvec` followed by an
    /// add, without materialising the intermediate product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn affine(&self, x: &Tensor, b: &Tensor) -> Tensor {
        assert!(x.is_vector(), "affine rhs must be a vector");
        assert!(b.is_vector(), "affine bias must be a vector");
        assert_eq!(self.cols, x.rows, "affine shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(self.rows, b.rows, "affine bias length mismatch {} vs {}", self.rows, b.rows);
        let mut out = vec![0.0f32; self.rows];
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, Some(&b.data), &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::affine`] writing into a caller-provided buffer (which may
    /// hold stale contents — every element is overwritten).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != rows`.
    pub fn affine_into(&self, x: &Tensor, b: &Tensor, out: &mut [f32]) {
        assert!(x.is_vector(), "affine rhs must be a vector");
        assert!(b.is_vector(), "affine bias must be a vector");
        assert_eq!(self.cols, x.rows, "affine shape mismatch {}×{} · {}", self.rows, self.cols, x.rows);
        assert_eq!(self.rows, b.rows, "affine bias length mismatch {} vs {}", self.rows, b.rows);
        assert_eq!(out.len(), self.rows, "affine output length mismatch");
        matvec_blocked(&self.data, self.rows, self.cols, &x.data, Some(&b.data), out);
    }

    /// Transposed matrix–vector product `selfᵀ · g`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_t(&self, g: &Tensor) -> Tensor {
        assert!(g.is_vector());
        assert_eq!(self.rows, g.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0f32; self.cols];
        self.matvec_t_accumulate(g, &mut out);
        Tensor::vector(out)
    }

    /// [`Tensor::matvec_t`] writing into a caller-provided buffer (which
    /// may hold stale contents — it is zeroed first, preserving the exact
    /// accumulation order of the allocating variant).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `out.len() != cols`.
    pub fn matvec_t_into(&self, g: &Tensor, out: &mut [f32]) {
        assert!(g.is_vector());
        assert_eq!(self.rows, g.rows, "matvec_t shape mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t output length mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        self.matvec_t_accumulate(g, out);
    }

    fn matvec_t_accumulate(&self, g: &Tensor, out: &mut [f32]) {
        for r in 0..self.rows {
            let gv = g.data[r];
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * gv;
            }
        }
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Accumulates the outer product `alpha * g ⊗ x` into `self`
    /// (`self` is `m × n`, `g` is `m × 1`, `x` is `n × 1`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_outer(&mut self, alpha: f32, g: &Tensor, x: &Tensor) {
        assert_eq!(self.rows, g.rows, "add_outer shape mismatch");
        assert_eq!(self.cols, x.rows, "add_outer shape mismatch");
        for r in 0..self.rows {
            let gv = alpha * g.data[r];
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, v) in row.iter_mut().zip(&x.data) {
                *w += gv * v;
            }
        }
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Fills the tensor with zeros.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Shared blocked kernel behind [`Tensor::matvec`] and [`Tensor::affine`]:
/// `out[r] = bias[r] + Σ_c w[r,c] · x[c]` (bias treated as zero when absent).
///
/// Rows are processed in blocks of four so each load of `x[c]` feeds four
/// independent accumulators; leftover rows use a 4-way column-unrolled dot
/// product. The floating-point reduction order is a pure function of the
/// shape, so results are reproducible run-to-run and thread-count has no
/// way to influence them (the kernel itself is single-threaded).
fn matvec_blocked(
    w: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    const ROW_BLOCK: usize = 4;
    let bias_at = |r: usize| bias.map_or(0.0, |b| b[r]);
    let mut r = 0;
    while r + ROW_BLOCK <= rows {
        let r0 = &w[r * cols..(r + 1) * cols];
        let r1 = &w[(r + 1) * cols..(r + 2) * cols];
        let r2 = &w[(r + 2) * cols..(r + 3) * cols];
        let r3 = &w[(r + 3) * cols..(r + 4) * cols];
        let (mut a0, mut a1, mut a2, mut a3) =
            (bias_at(r), bias_at(r + 1), bias_at(r + 2), bias_at(r + 3));
        for c in 0..cols {
            let xv = x[c];
            a0 += r0[c] * xv;
            a1 += r1[c] * xv;
            a2 += r2[c] * xv;
            a3 += r3[c] * xv;
        }
        out[r] = a0;
        out[r + 1] = a1;
        out[r + 2] = a2;
        out[r + 3] = a3;
        r += ROW_BLOCK;
    }
    while r < rows {
        out[r] = bias_at(r) + dot_unrolled(&w[r * cols..(r + 1) * cols], x);
        r += 1;
    }
}

/// 4-way unrolled dot product with independent accumulators and a serial
/// tail; the reduction order depends only on the vector length.
fn dot_unrolled(row: &[f32], x: &[f32]) -> f32 {
    let n = row.len();
    let quads = n / 4 * 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut c = 0;
    while c < quads {
        a0 += row[c] * x[c];
        a1 += row[c + 1] * x[c + 1];
        a2 += row[c + 2] * x[c + 2];
        a3 += row[c + 3] * x[c + 3];
        c += 4;
    }
    let mut tail = 0.0f32;
    while c < n {
        tail += row[c] * x[c];
        c += 1;
    }
    (a0 + a1) + (a2 + a3) + tail
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})[", self.rows, self.cols)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::vector(vec![1.0, 0.0, -1.0]);
        let y = w.matvec(&x);
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let w = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let y = w.matvec_t(&g);
        assert_eq!(y.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut w = Tensor::zeros(2, 2);
        let g = Tensor::vector(vec![1.0, 2.0]);
        let x = Tensor::vector(vec![3.0, 4.0]);
        w.add_outer(1.0, &g, &x);
        assert_eq!(w.data(), &[3.0, 4.0, 6.0, 8.0]);
        w.add_outer(-1.0, &g, &x);
        assert_eq!(w.data(), &[0.0; 4]);
    }

    /// Textbook row-by-row accumulation, the reference the blocked kernel
    /// is checked against.
    fn matvec_naive(w: &Tensor, x: &Tensor, bias: Option<&Tensor>) -> Vec<f32> {
        (0..w.rows())
            .map(|r| {
                let mut acc = bias.map_or(0.0, |b| b.data()[r]);
                for c in 0..w.cols() {
                    acc += w.at(r, c) * x.data()[c];
                }
                acc
            })
            .collect()
    }

    fn pseudo(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Small LCG so values are varied but reproducible without deps.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-5 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn blocked_matvec_matches_naive_on_odd_shapes() {
        // 1×1, 1×n, n×1, and sizes straddling the 4-row / 4-col blocks.
        for &(rows, cols) in
            &[(1, 1), (1, 9), (9, 1), (3, 3), (4, 4), (5, 7), (7, 5), (8, 13), (13, 8), (17, 17)]
        {
            let w = pseudo(rows, cols, (rows * 31 + cols) as u32);
            let x = pseudo(cols, 1, cols as u32 + 1);
            assert_close(w.matvec(&x).data(), &matvec_naive(&w, &x, None));
        }
    }

    #[test]
    fn fused_affine_matches_naive_on_odd_shapes() {
        for &(rows, cols) in &[(1, 1), (1, 6), (6, 1), (4, 4), (5, 5), (6, 10), (11, 3), (19, 7)] {
            let w = pseudo(rows, cols, (rows * 17 + cols) as u32);
            let x = pseudo(cols, 1, rows as u32);
            let b = pseudo(rows, 1, cols as u32 + 99);
            assert_close(w.affine(&x, &b).data(), &matvec_naive(&w, &x, Some(&b)));
        }
    }

    #[test]
    fn affine_equals_matvec_plus_bias() {
        let w = pseudo(6, 5, 1);
        let x = pseudo(5, 1, 2);
        let b = pseudo(6, 1, 3);
        let mut expect = w.matvec(&x);
        expect.axpy(1.0, &b);
        assert_close(w.affine(&x, &b).data(), expect.data());
    }

    #[test]
    fn matvec_is_reproducible_bitwise() {
        let w = pseudo(13, 11, 7);
        let x = pseudo(11, 1, 8);
        let a: Vec<u32> = w.matvec(&x).data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = w.matvec(&x).data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn affine_bias_mismatch_panics() {
        let w = Tensor::zeros(3, 2);
        let x = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![1.0, 2.0]);
        let _ = w.affine(&x, &b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let w = Tensor::zeros(2, 3);
        let x = Tensor::vector(vec![1.0, 2.0]);
        let _ = w.matvec(&x);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Tensor::zeros(1, 1)).is_empty());
    }
}
