//! Checkpoint serialization of parameter stores: a legacy line-oriented
//! text format and the versioned binary `LGR1` format.
//!
//! Trained weights can be saved and reloaded so experiments can be
//! checkpointed, predictions reproduced without retraining, and the
//! `liger-serve` inference service fed from offline training runs. Two
//! on-disk formats exist:
//!
//! * **Text** ([`save_store`]/[`load_store`]) — one header line per
//!   parameter (`name rows cols`, with the name percent-escaped) followed
//!   by one line of whitespace-separated float values in Rust's
//!   roundtrip-exact `{:?}` rendering. Human-greppable, ~10× larger than
//!   the weights it stores.
//! * **Binary** ([`save_store_binary`]/[`load_store_binary`]) — magic
//!   `LGR` + one version byte (`1`), a little-endian `u32` parameter
//!   count, then per parameter: `u32` name length + UTF-8 name bytes,
//!   `u32` rows, `u32` cols, and `rows × cols` little-endian `f64`
//!   values. `f32 → f64` widening is exact, so the round trip is bitwise
//!   lossless while the payload layout stays stable if the tensor element
//!   type ever widens.
//!
//! The two formats convert losslessly into each other
//! ([`text_to_binary`]/[`binary_to_text`]), and both loaders reject
//! duplicate parameter names — a checkpoint that binds one name twice is
//! corrupt, not "last one wins".
//!
//! [`ParamStore::save_to_path`] / [`ParamStore::load_from_path`] are the
//! file-level helpers: saving writes the binary format, loading sniffs
//! the magic bytes and accepts either format.

use crate::store::ParamStore;
use crate::tensor::Tensor;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;

/// The checkpoint magic prefix (followed by one ASCII version byte).
pub const MAGIC: &[u8; 3] = b"LGR";
/// The current binary checkpoint version byte.
pub const VERSION: u8 = b'1';

/// Errors from [`load_store`] / [`load_store_binary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A header line was malformed.
    BadHeader {
        /// The 1-based line number.
        line: usize,
    },
    /// A value line had the wrong number of entries or a non-float.
    BadValues {
        /// The 1-based line number.
        line: usize,
    },
    /// The input ended in the middle of a record.
    UnexpectedEof,
    /// The input does not start with the `LGR` magic bytes.
    BadMagic,
    /// The magic matched but the version byte is not [`VERSION`].
    VersionMismatch {
        /// The version byte found in the input.
        found: u8,
    },
    /// A parameter name was bound twice in one checkpoint.
    DuplicateParam {
        /// The repeated name.
        name: String,
    },
    /// A binary record carried a non-UTF-8 or oversized name, or a shape
    /// whose element count overflows.
    BadRecord {
        /// The 0-based parameter index.
        index: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader { line } => write!(f, "malformed header at line {line}"),
            LoadError::BadValues { line } => write!(f, "malformed values at line {line}"),
            LoadError::UnexpectedEof => write!(f, "unexpected end of input"),
            LoadError::BadMagic => write!(f, "not a LIGER checkpoint (bad magic)"),
            LoadError::VersionMismatch { found } => {
                write!(f, "unsupported checkpoint version {:?}", char::from(*found))
            }
            LoadError::DuplicateParam { name } => {
                write!(f, "parameter {name:?} bound twice in checkpoint")
            }
            LoadError::BadRecord { index } => write!(f, "malformed record for parameter {index}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Errors from the path-level checkpoint helpers: either the file could
/// not be read/written or its contents failed to parse.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file's contents are not a valid checkpoint.
    Load(LoadError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Load(e) => write!(f, "checkpoint parse error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

impl From<LoadError> for CheckpointError {
    fn from(e: LoadError) -> CheckpointError {
        CheckpointError::Load(e)
    }
}

fn escape(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(name: &str) -> String {
    name.replace("%20", " ").replace("%0A", "\n").replace("%25", "%")
}

/// Serializes every parameter's *value* in the text format (gradients and
/// optimizer state are transient and not saved).
pub fn save_store(store: &ParamStore) -> String {
    let mut out = String::new();
    for p in store.iter() {
        writeln!(out, "{} {} {}", escape(&p.name), p.value.rows(), p.value.cols()).unwrap();
        let mut first = true;
        for v in p.value.data() {
            if !first {
                out.push(' ');
            }
            write!(out, "{v:?}").unwrap();
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Reconstructs a parameter store from [`save_store`] output.
///
/// # Errors
///
/// Returns [`LoadError`] on malformed input or duplicate parameter names.
pub fn load_store(text: &str) -> Result<ParamStore, LoadError> {
    let mut store = ParamStore::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut lines = text.lines().enumerate();
    while let Some((header_idx, header)) = lines.next() {
        if header.trim().is_empty() {
            continue;
        }
        let mut parts = header.split_whitespace();
        let (name, rows, cols) = (|| {
            let name = unescape(parts.next()?);
            let rows: usize = parts.next()?.parse().ok()?;
            let cols: usize = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some((name, rows, cols))
        })()
        .ok_or(LoadError::BadHeader { line: header_idx + 1 })?;
        if !seen.insert(name.clone()) {
            return Err(LoadError::DuplicateParam { name });
        }

        let (value_idx, value_line) = lines.next().ok_or(LoadError::UnexpectedEof)?;
        let values: Vec<f32> = value_line
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| LoadError::BadValues { line: value_idx + 1 })?;
        if values.len() != rows * cols {
            return Err(LoadError::BadValues { line: value_idx + 1 });
        }
        store.add(name, Tensor::from_vec(rows, cols, values));
    }
    Ok(store)
}

/// Serializes every parameter's value in the binary `LGR1` format.
pub fn save_store_binary(store: &ParamStore) -> Vec<u8> {
    // Header + per-param records; payload dominates, so reserve for it.
    let payload: usize = store.iter().map(|p| p.value.len() * 8 + 16).sum();
    let mut out = Vec::with_capacity(8 + payload);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for p in store.iter() {
        out.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
        out.extend_from_slice(p.name.as_bytes());
        out.extend_from_slice(&(p.value.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(p.value.cols() as u32).to_le_bytes());
        for &v in p.value.data() {
            out.extend_from_slice(&f64::from(v).to_le_bytes());
        }
    }
    out
}

/// A cursor over the binary checkpoint body (shared with the quantized
/// `LGRq` loader in [`crate::quant`]).
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let end = self.pos.checked_add(n).ok_or(LoadError::UnexpectedEof)?;
        if end > self.bytes.len() {
            return Err(LoadError::UnexpectedEof);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, LoadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u16(&mut self) -> Result<u16, LoadError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, LoadError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, LoadError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
}

/// Reconstructs a parameter store from [`save_store_binary`] output.
///
/// # Errors
///
/// Returns [`LoadError::BadMagic`] / [`LoadError::VersionMismatch`] for
/// foreign or future inputs, [`LoadError::DuplicateParam`] when a name is
/// bound twice, and [`LoadError::UnexpectedEof`] / [`LoadError::BadRecord`]
/// on truncation or malformed records.
pub fn load_store_binary(bytes: &[u8]) -> Result<ParamStore, LoadError> {
    if bytes.len() < 4 || &bytes[..3] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    if bytes[3] != VERSION {
        return Err(LoadError::VersionMismatch { found: bytes[3] });
    }
    let mut r = Reader { bytes, pos: 4 };
    let count = r.u32()? as usize;
    let mut store = ParamStore::new();
    let mut seen: HashSet<String> = HashSet::new();
    for index in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| LoadError::BadRecord { index })?
            .to_string();
        if !seen.insert(name.clone()) {
            return Err(LoadError::DuplicateParam { name });
        }
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let len = rows.checked_mul(cols).ok_or(LoadError::BadRecord { index })?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(r.f64()? as f32);
        }
        store.add(name, Tensor::from_vec(rows, cols, values));
    }
    if r.pos != bytes.len() {
        // Trailing garbage means the writer and reader disagree about the
        // record layout; refuse rather than silently ignore.
        return Err(LoadError::BadRecord { index: count });
    }
    Ok(store)
}

/// Converts a text checkpoint to the binary format (lossless).
pub fn text_to_binary(text: &str) -> Result<Vec<u8>, LoadError> {
    Ok(save_store_binary(&load_store(text)?))
}

/// Converts a binary checkpoint to the text format (lossless).
pub fn binary_to_text(bytes: &[u8]) -> Result<String, LoadError> {
    Ok(save_store(&load_store_binary(bytes)?))
}

impl ParamStore {
    /// Writes this store to `path` in the binary `LGR1` format.
    ///
    /// # Errors
    ///
    /// Returns the underlying filesystem error.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, save_store_binary(self))
    }

    /// Reads a checkpoint from `path`, accepting either format: files
    /// starting with the `LGR` magic parse as binary, anything else as
    /// the text format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on I/O failure or malformed contents.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() >= 3 && &bytes[..3] == MAGIC {
            return Ok(load_store_binary(&bytes)?);
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| CheckpointError::Load(LoadError::BadMagic))?;
        Ok(load_store(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(store: &ParamStore) -> Vec<(String, usize, usize, Vec<u32>)> {
        store
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.value.rows(),
                    p.value.cols(),
                    p.value.data().iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect()
    }

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add("layer.w", Tensor::from_vec(2, 2, vec![0.1, -2.5e-7, f32::MIN_POSITIVE, 3.0]));
        store.add("odd name %x", Tensor::vector(vec![1.5]));
        store.add("empty", Tensor::from_vec(0, 7, Vec::new()));
        store
    }

    #[test]
    fn roundtrip_preserves_values_exactly() {
        let store = sample_store();
        let text = save_store(&store);
        let loaded = load_store(&text).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.get(crate::ParamId(0)).value, store.get(crate::ParamId(0)).value);
        assert_eq!(loaded.get(crate::ParamId(1)).name, "odd name %x");
        assert_eq!(loaded.get(crate::ParamId(1)).value.item(), 1.5);
    }

    #[test]
    fn binary_roundtrip_is_bitwise_lossless() {
        let store = sample_store();
        let blob = save_store_binary(&store);
        assert_eq!(&blob[..3], MAGIC);
        assert_eq!(blob[3], VERSION);
        let loaded = load_store_binary(&blob).unwrap();
        assert_eq!(bits(&store), bits(&loaded));
        // Zero-element tensors keep their shape.
        assert_eq!(loaded.get(crate::ParamId(2)).value.rows(), 0);
        assert_eq!(loaded.get(crate::ParamId(2)).value.cols(), 7);
    }

    #[test]
    fn text_binary_conversion_is_lossless_both_ways() {
        let store = sample_store();
        let text = save_store(&store);
        let blob = text_to_binary(&text).unwrap();
        assert_eq!(bits(&load_store_binary(&blob).unwrap()), bits(&store));
        let text2 = binary_to_text(&blob).unwrap();
        assert_eq!(text, text2, "text → binary → text must be the identity");
    }

    #[test]
    fn empty_store_roundtrips() {
        let loaded = load_store(&save_store(&ParamStore::new())).unwrap();
        assert!(loaded.is_empty());
        let loaded = load_store_binary(&save_store_binary(&ParamStore::new())).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn malformed_header_is_rejected() {
        assert_eq!(load_store("just-a-name\n1.0\n").unwrap_err(), LoadError::BadHeader { line: 1 });
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        assert_eq!(load_store("w 2 1\n1.0\n").unwrap_err(), LoadError::BadValues { line: 2 });
    }

    #[test]
    fn truncated_record_is_rejected() {
        assert_eq!(load_store("w 1 1\n").unwrap_err(), LoadError::UnexpectedEof);
    }

    #[test]
    fn duplicate_names_are_rejected_in_both_formats() {
        let text = "w 1 1\n1.0\nw 1 1\n2.0\n";
        assert_eq!(
            load_store(text).unwrap_err(),
            LoadError::DuplicateParam { name: "w".into() }
        );
        let mut store = ParamStore::new();
        store.add("dup", Tensor::scalar(1.0));
        store.add("dup", Tensor::scalar(2.0));
        assert_eq!(
            load_store_binary(&save_store_binary(&store)).unwrap_err(),
            LoadError::DuplicateParam { name: "dup".into() }
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(load_store_binary(b"NOPE").unwrap_err(), LoadError::BadMagic);
        assert_eq!(load_store_binary(b"LG").unwrap_err(), LoadError::BadMagic);
        let mut blob = save_store_binary(&ParamStore::new());
        blob[3] = b'9';
        assert_eq!(load_store_binary(&blob).unwrap_err(), LoadError::VersionMismatch { found: b'9' });
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let blob = save_store_binary(&sample_store());
        for cut in [4, 8, 10, blob.len() - 1] {
            assert_eq!(
                load_store_binary(&blob[..cut]).unwrap_err(),
                LoadError::UnexpectedEof,
                "cut at {cut}"
            );
        }
        let mut padded = blob.clone();
        padded.push(0);
        assert!(matches!(load_store_binary(&padded).unwrap_err(), LoadError::BadRecord { .. }));
    }

    #[test]
    fn path_helpers_roundtrip_and_sniff_formats() {
        let store = sample_store();
        let dir = std::env::temp_dir();
        let bin_path = dir.join(format!("liger_ckpt_test_{}.lgr", std::process::id()));
        let text_path = dir.join(format!("liger_ckpt_test_{}.txt", std::process::id()));

        store.save_to_path(&bin_path).unwrap();
        let loaded = ParamStore::load_from_path(&bin_path).unwrap();
        assert_eq!(bits(&store), bits(&loaded));

        std::fs::write(&text_path, save_store(&store)).unwrap();
        let loaded = ParamStore::load_from_path(&text_path).unwrap();
        assert_eq!(bits(&store), bits(&loaded));

        assert!(ParamStore::load_from_path(dir.join("liger_ckpt_missing")).is_err());
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&text_path).ok();
    }
}
