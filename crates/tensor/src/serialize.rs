//! Plain-text serialization of parameter stores.
//!
//! Trained weights can be saved and reloaded so experiments can be
//! checkpointed and predictions reproduced without retraining. The format
//! is a deliberately simple line-oriented text format (no external
//! dependencies): one header line per parameter
//! (`name rows cols`, with the name percent-escaped) followed by one line
//! of whitespace-separated float values in Rust's roundtrip-exact `{:?}`
//! rendering.

use crate::store::{ParamStore};
use crate::tensor::Tensor;
use std::fmt::Write as _;

/// Errors from [`load_store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A header line was malformed.
    BadHeader {
        /// The 1-based line number.
        line: usize,
    },
    /// A value line had the wrong number of entries or a non-float.
    BadValues {
        /// The 1-based line number.
        line: usize,
    },
    /// The file ended in the middle of a record.
    UnexpectedEof,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader { line } => write!(f, "malformed header at line {line}"),
            LoadError::BadValues { line } => write!(f, "malformed values at line {line}"),
            LoadError::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for LoadError {}

fn escape(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        match c {
            ' ' => out.push_str("%20"),
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(name: &str) -> String {
    name.replace("%20", " ").replace("%0A", "\n").replace("%25", "%")
}

/// Serializes every parameter's *value* (gradients and optimizer state are
/// transient and not saved).
pub fn save_store(store: &ParamStore) -> String {
    let mut out = String::new();
    for p in store.iter() {
        writeln!(out, "{} {} {}", escape(&p.name), p.value.rows(), p.value.cols()).unwrap();
        let mut first = true;
        for v in p.value.data() {
            if !first {
                out.push(' ');
            }
            write!(out, "{v:?}").unwrap();
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Reconstructs a parameter store from [`save_store`] output.
///
/// # Errors
///
/// Returns [`LoadError`] on malformed input.
pub fn load_store(text: &str) -> Result<ParamStore, LoadError> {
    let mut store = ParamStore::new();
    let mut lines = text.lines().enumerate();
    while let Some((header_idx, header)) = lines.next() {
        if header.trim().is_empty() {
            continue;
        }
        let mut parts = header.split_whitespace();
        let (name, rows, cols) = (|| {
            let name = unescape(parts.next()?);
            let rows: usize = parts.next()?.parse().ok()?;
            let cols: usize = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some((name, rows, cols))
        })()
        .ok_or(LoadError::BadHeader { line: header_idx + 1 })?;

        let (value_idx, value_line) = lines.next().ok_or(LoadError::UnexpectedEof)?;
        let values: Vec<f32> = value_line
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| LoadError::BadValues { line: value_idx + 1 })?;
        if values.len() != rows * cols {
            return Err(LoadError::BadValues { line: value_idx + 1 });
        }
        store.add(name, Tensor::from_vec(rows, cols, values));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values_exactly() {
        let mut store = ParamStore::new();
        store.add("layer.w", Tensor::from_vec(2, 2, vec![0.1, -2.5e-7, f32::MIN_POSITIVE, 3.0]));
        store.add("odd name %x", Tensor::vector(vec![1.5]));
        let text = save_store(&store);
        let loaded = load_store(&text).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(crate::ParamId(0)).value, store.get(crate::ParamId(0)).value);
        assert_eq!(loaded.get(crate::ParamId(1)).name, "odd name %x");
        assert_eq!(loaded.get(crate::ParamId(1)).value.item(), 1.5);
    }

    #[test]
    fn empty_store_roundtrips() {
        let loaded = load_store(&save_store(&ParamStore::new())).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn malformed_header_is_rejected() {
        assert_eq!(load_store("just-a-name\n1.0\n").unwrap_err(), LoadError::BadHeader { line: 1 });
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        assert_eq!(load_store("w 2 1\n1.0\n").unwrap_err(), LoadError::BadValues { line: 2 });
    }

    #[test]
    fn truncated_record_is_rejected() {
        assert_eq!(load_store("w 1 1\n").unwrap_err(), LoadError::UnexpectedEof);
    }
}
