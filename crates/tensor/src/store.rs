//! Trainable parameter storage.
//!
//! Parameters outlive any single computation graph (a fresh [`crate::Graph`]
//! is built per training example), so they live in a [`ParamStore`]:
//! values, accumulated gradients, and optimizer state side by side. Graph
//! leaves reference parameters by [`ParamId`]. `Graph::backward_grads`
//! computes a detached [`ParamGrads`] against a shared `&ParamStore`
//! (which is what lets the training engine fan examples out across
//! threads), and [`ParamStore::accumulate_grads`] folds those back into
//! the store's gradient buffers in a caller-chosen (deterministic) order.

use crate::tensor::Tensor;
use rand::{Rng, RngExt as _};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// One trainable parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name (used in debugging and serialization).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by the optimizer step).
    pub grad: Tensor,
}

/// The set of all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Registers a `rows × cols` parameter with scaled-uniform (Xavier)
    /// initialization.
    pub fn add_xavier<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data: Vec<f32> =
            (0..rows * cols).map(|_| rng.random_range(-bound..=bound)).collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialized parameter (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// The parameter behind `id`.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access to the parameter behind `id`.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero_();
        }
    }

    /// Global L2 norm of all gradients (used for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Folds a detached gradient set into the store's gradient buffers.
    ///
    /// The data-parallel training engine calls this once per example, in
    /// example order, so the floating-point accumulation order — and thus
    /// the resulting parameters — are independent of the thread count.
    pub fn accumulate_grads(&mut self, grads: &ParamGrads) {
        for (id, g) in grads.iter() {
            self.params[id.0].grad.axpy(1.0, g);
        }
    }
}

/// Per-parameter gradients detached from any store: the result of one
/// example's backward pass ([`crate::Graph::backward_grads`]).
///
/// Workers each produce their own `ParamGrads` against a shared
/// `&ParamStore`; the main thread then folds them back with
/// [`ParamStore::accumulate_grads`]. Slots are lazily allocated, so an
/// example that never touches a parameter costs nothing for it.
#[derive(Debug, Clone, Default)]
pub struct ParamGrads {
    grads: Vec<Option<Tensor>>,
}

impl ParamGrads {
    /// An empty gradient set.
    pub fn new() -> ParamGrads {
        ParamGrads::default()
    }

    fn slot(&mut self, id: ParamId) -> &mut Option<Tensor> {
        if self.grads.len() <= id.0 {
            self.grads.resize(id.0 + 1, None);
        }
        &mut self.grads[id.0]
    }

    /// Adds `delta` to the gradient of `id` (whole-tensor accumulation).
    pub fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        match self.slot(id) {
            Some(g) => g.axpy(1.0, delta),
            empty => *empty = Some(delta.clone()),
        }
    }

    /// Adds the vector `g` to row `row` of the gradient of `id`, where the
    /// full parameter has shape `rows × cols` (embedding-row updates).
    pub fn accumulate_row(
        &mut self,
        id: ParamId,
        row: usize,
        rows: usize,
        cols: usize,
        g: &Tensor,
    ) {
        let t = self.slot(id).get_or_insert_with(|| Tensor::zeros(rows, cols));
        let slice = &mut t.data_mut()[row * cols..(row + 1) * cols];
        for (s, gv) in slice.iter_mut().zip(g.data()) {
            *s += gv;
        }
    }

    /// Folds another gradient set into this one (`self += other`).
    pub fn merge(&mut self, other: &ParamGrads) {
        for (id, g) in other.iter() {
            self.accumulate(id, g);
        }
    }

    /// Iterates over the parameters this set has gradients for, in
    /// [`ParamId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|t| (ParamId(i), t)))
    }

    /// True when no gradients have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.grads.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_retrieve() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(2.0));
        assert_eq!(store.get(id).value.item(), 2.0);
        assert_eq!(store.get(id).name, "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 1);
    }

    #[test]
    fn xavier_init_is_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let id = store.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(store.get(id).value.data().iter().all(|v| v.abs() <= bound));
        // Not all zeros.
        assert!(store.get(id).value.norm() > 0.0);
    }

    #[test]
    fn param_grads_accumulate_and_fold() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![0.0; 4]));
        let b = store.add("b", Tensor::vector(vec![0.0, 0.0]));

        let mut g1 = ParamGrads::new();
        g1.accumulate(b, &Tensor::vector(vec![1.0, 2.0]));
        g1.accumulate_row(w, 1, 2, 2, &Tensor::vector(vec![3.0, 4.0]));
        assert!(!g1.is_empty());

        let mut g2 = ParamGrads::new();
        g2.accumulate(b, &Tensor::vector(vec![10.0, 20.0]));
        g1.merge(&g2);

        store.accumulate_grads(&g1);
        assert_eq!(store.get(b).grad.data(), &[11.0, 22.0]);
        assert_eq!(store.get(w).grad.data(), &[0.0, 0.0, 3.0, 4.0]);

        // A second fold adds on top, mirroring per-example accumulation.
        store.accumulate_grads(&g2);
        assert_eq!(store.get(b).grad.data(), &[21.0, 42.0]);
    }

    #[test]
    fn empty_param_grads_is_a_noop() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        store.accumulate_grads(&ParamGrads::new());
        assert_eq!(store.get(id).grad.item(), 0.0);
        assert!(ParamGrads::new().is_empty());
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        store.get_mut(id).grad = Tensor::scalar(5.0);
        assert!(store.grad_norm() > 0.0);
        store.zero_grads();
        assert_eq!(store.grad_norm(), 0.0);
    }
}
