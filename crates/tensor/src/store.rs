//! Trainable parameter storage.
//!
//! Parameters outlive any single computation graph (a fresh [`crate::Graph`]
//! is built per training example), so they live in a [`ParamStore`]:
//! values, accumulated gradients, and optimizer state side by side. Graph
//! leaves reference parameters by [`ParamId`]; `Graph::backward`
//! accumulates into the store's gradient buffers.

use crate::tensor::Tensor;
use rand::{Rng, RngExt as _};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// One trainable parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name (used in debugging and serialization).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by the optimizer step).
    pub grad: Tensor,
}

/// The set of all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Registers a `rows × cols` parameter with scaled-uniform (Xavier)
    /// initialization.
    pub fn add_xavier<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data: Vec<f32> =
            (0..rows * cols).map(|_| rng.random_range(-bound..=bound)).collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialized parameter (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// The parameter behind `id`.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access to the parameter behind `id`.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero_();
        }
    }

    /// Global L2 norm of all gradients (used for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_retrieve() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(2.0));
        assert_eq!(store.get(id).value.item(), 2.0);
        assert_eq!(store.get(id).name, "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 1);
    }

    #[test]
    fn xavier_init_is_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let id = store.add_xavier("w", 10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(store.get(id).value.data().iter().all(|v| v.abs() <= bound));
        // Not all zeros.
        assert!(store.get(id).value.norm() > 0.0);
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::scalar(1.0));
        store.get_mut(id).grad = Tensor::scalar(5.0);
        assert!(store.grad_norm() > 0.0);
        store.zero_grads();
        assert_eq!(store.grad_norm(), 0.0);
    }
}
