//! # tensor — a small reverse-mode autodiff engine
//!
//! The paper implements LIGER in TensorFlow; no comparable stack exists
//! offline in Rust, so this crate is the reproduction's deep-learning
//! substrate (DESIGN.md §1):
//!
//! - [`Tensor`] — dense `f32` vectors/matrices with deterministic kernels,
//! - [`ParamStore`] — trainable parameters (values + gradients) shared
//!   across per-example graphs,
//! - [`Graph`] — a define-by-run computation graph with the operators the
//!   paper's architecture needs (affine maps, gates, concat, softmax
//!   attention weighting, max-pooling, cross-entropy) and full
//!   reverse-mode differentiation,
//! - [`gradcheck`] — the numerical-gradient harness every layer is tested
//!   against.
//!
//! # Examples
//!
//! ```
//! use tensor::{Graph, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::from_vec(2, 2, vec![0.5, 0.0, 0.0, 0.5]));
//!
//! let mut g = Graph::new();
//! let wv = g.param(&store, w);
//! let x = g.input(Tensor::vector(vec![1.0, -1.0]));
//! let h = g.matvec(wv, x);
//! let h = g.tanh(h);
//! let loss = g.cross_entropy(h, 0);
//!
//! g.backward(loss, &mut store);
//! assert!(store.grad_norm() > 0.0);
//! ```

pub mod gradcheck;
pub mod serialize;
pub mod graph;
pub mod pool;
pub mod quant;
pub mod store;
pub mod tensor;

pub use gradcheck::{assert_grads_close, grad_check, pseudo_tensor, GradCheckReport};
pub use graph::{Act, Graph, VarId};
pub use pool::BufferPool;
pub use quant::{
    load_store_quantized, save_store_quantized, QuantData, QuantParam, QuantStore, QUANT_VERSION,
};
pub use serialize::{
    binary_to_text, load_store, load_store_binary, save_store, save_store_binary,
    text_to_binary, CheckpointError, LoadError,
};
pub use store::{Param, ParamGrads, ParamId, ParamStore};
pub use tensor::{cosine_scores, f16_bits_to_f32, f32_to_f16_bits, gemm_batch, QuantMat, Tensor};
