//! # bench — the benchmark harness regenerating every table and figure
//!
//! Each Criterion bench target corresponds to one table or figure of the
//! paper's §6 (see `DESIGN.md` §3 for the index). Every target first
//! *regenerates and prints* its table's rows at the scale selected by the
//! `LIGER_SCALE` environment variable (`tiny`/`bench`/`med`/`large`;
//! default `bench`), then times a representative kernel so Criterion has
//! something meaningful to measure.
//!
//! Run one experiment:
//!
//! ```text
//! cargo bench -p bench --bench table2_method_name
//! LIGER_SCALE=med cargo bench -p bench --bench fig6_concrete_reduction
//! ```

use eval::Scale;

/// Banner printed before each regenerated table.
pub fn banner(id: &str, paper: &str, scale: &Scale) {
    println!("\n==============================================================");
    println!("{id} — {paper}");
    println!("scale = {} (set LIGER_SCALE=tiny|bench|med|large to change)", scale.name);
    println!("==============================================================");
}

/// A tiny shared workload for Criterion kernels: one prepared dataset at
/// tiny scale (built once, reused by the timed closures).
pub fn tiny_dataset() -> eval::MethodDataset {
    eval::build_method_dataset(&Scale::tiny()).0
}

/// The scale used by the *figure* benches (each retrains models at many
/// reduction levels, so their default is lighter than the single-table
/// benches'). `LIGER_SCALE` overrides it like everywhere else.
pub fn figure_scale() -> Scale {
    if let Ok(name) = std::env::var("LIGER_SCALE") {
        if let Some(scale) = Scale::by_name(&name) {
            return scale;
        }
    }
    // Calibration note: below ~5 variants per family and ~16 epochs the
    // blended model is undertrained and the paper's orderings invert —
    // the figure scale must stay above that threshold.
    Scale {
        name: "fig".into(),
        variants_per_family: 5,
        hidden: 16,
        epochs: 16,
        lr: 0.015,
        target_paths: 6,
        concrete_per_path: 4,
        max_steps: 18,
        max_traces: 6,
        seed: 5,
    }
}
