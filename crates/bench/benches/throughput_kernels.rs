//! Raw kernel throughput: fused batch-major GEMM GFLOP/s and end-to-end
//! f32 vs. int8 encoder throughput.
//!
//! Three measurements, each printed as a `KERNEL …` line (parsed by
//! `scripts/bench_json.sh` into `BENCH_kernels.json`):
//!
//! * **gemm** — `tensor::gemm_batch` on representative encoder shapes
//!   (hidden-sized panels and the vocab-projection shape), reported in
//!   GFLOP/s. An in-bench floor asserts the tiled loops actually
//!   autovectorized: a regression to scalar codegen lands well under the
//!   floor and fails CI.
//! * **encode_f32** — the tape-free batch-major `FloatEngine` over the
//!   tiny dataset (the same steady-state path `throughput_encode` gates
//!   at ≥ 5× the 441.9 programs/s PR 2 baseline).
//! * **encode_int8** — the `QuantEngine` over per-row-absmax int8 weights
//!   quantized from the same parameters, reported separately per the
//!   ROADMAP "raw encoder speed" item.

use std::time::Instant;

use liger::{EncodedProgram, FloatEngine, LigerConfig, LigerModel, QuantEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{gemm_batch, ParamStore};

/// PR 2 steady-state baseline (BENCH_encode.json before this PR).
const BASELINE_PROGRAMS_PER_SEC: f64 = 441.9;

/// Autovectorization floor for the fused GEMM on the large shape. The
/// tiled kernel measures an order of magnitude above this on a 1-core
/// container host; scalar (non-SIMD) codegen of the same loops lands
/// well below it.
const GEMM_GFLOPS_FLOOR: f64 = 1.0;

fn time_best<F: FnMut() -> f64>(rounds: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..rounds {
        let start = Instant::now();
        sink += f();
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    assert!(sink.is_finite(), "kernel produced non-finite output");
    best
}

/// Times `gemm_batch` on one `(rows × cols) · (k × cols)ᵀ` shape and
/// prints a `KERNEL mode=gemm` line. Returns the measured GFLOP/s.
fn gemm_shape(rows: usize, cols: usize, k: usize, reps: usize) -> f64 {
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        // xorshift — deterministic fill, no rand dependency in the hot loop
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    let w: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
    let xs: Vec<f32> = (0..k * cols).map(|_| next()).collect();
    let bias: Vec<f32> = (0..rows).map(|_| next()).collect();
    let mut out = vec![0.0f32; k * rows];

    let secs = time_best(5, || {
        for _ in 0..reps {
            gemm_batch(&w, rows, cols, &xs, k, Some(&bias), &mut out);
        }
        out[0] as f64
    });
    // 2 flops (mul + add) per weight element per batch item, plus the bias add.
    let flops = reps as f64 * k as f64 * (2.0 * rows as f64 * cols as f64 + rows as f64);
    let gflops = flops / secs / 1e9;
    println!(
        "KERNEL mode=gemm rows={rows} cols={cols} batch={k} reps={reps} secs={secs:.6} gflops={gflops:.2}"
    );
    gflops
}

fn main() {
    println!("\nfused kernel throughput (GEMM GFLOP/s, f32 vs int8 encode)");

    // Representative encoder shapes: the f3 recurrence panel (hidden x hidden
    // at the dataset's live-lane width), a wider MLP-ish panel, and the
    // vocab-projection shape that dominates decoding.
    gemm_shape(16, 16, 52, 4000);
    let big = gemm_shape(64, 64, 64, 1000);
    gemm_shape(256, 64, 16, 500);

    let ds = bench::tiny_dataset();
    let mut rng = StdRng::seed_from_u64(41);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let model = LigerModel::new(&mut store, ds.vocabs.input.len(), cfg, &mut rng);
    let progs: Vec<EncodedProgram> =
        ds.train.iter().chain(ds.test.iter()).map(|s| s.liger.clone()).collect();
    let prog_refs: Vec<&EncodedProgram> = progs.iter().collect();

    // f32 batch-major engine: whole dataset as one fused minibatch.
    let mut fe = FloatEngine::new(&store);
    let f32_secs = time_best(5, || {
        let outs = fe.encode_batch(&model, &prog_refs);
        outs.iter().map(|o| o.program.iter().sum::<f32>() as f64).sum()
    });
    let f32_rate = progs.len() as f64 / f32_secs;
    println!(
        "KERNEL mode=encode_f32 programs={} secs={f32_secs:.6} programs_per_sec={f32_rate:.2}",
        progs.len()
    );

    // int8 engine: same parameters quantized to per-row-absmax int8.
    let mut qe = QuantEngine::new(&store);
    let int8_secs = time_best(5, || {
        let mut acc = 0.0f64;
        for prog in &progs {
            acc += qe.embed(&model, prog).iter().sum::<f32>() as f64;
        }
        acc
    });
    let int8_rate = progs.len() as f64 / int8_secs;
    println!(
        "KERNEL mode=encode_int8 programs={} secs={int8_secs:.6} programs_per_sec={int8_rate:.2}",
        progs.len()
    );

    println!(
        "KERNEL mode=summary gemm_gflops={big:.2} f32_programs_per_sec={f32_rate:.2} \
         int8_programs_per_sec={int8_rate:.2} baseline_programs_per_sec={BASELINE_PROGRAMS_PER_SEC} \
         f32_speedup_vs_baseline={:.2} int8_speedup_vs_baseline={:.2}",
        f32_rate / BASELINE_PROGRAMS_PER_SEC,
        int8_rate / BASELINE_PROGRAMS_PER_SEC,
    );

    assert!(
        big >= GEMM_GFLOPS_FLOOR,
        "gemm_batch measured {big:.2} GFLOP/s on 64x64xk=64, below the {GEMM_GFLOPS_FLOOR} \
         autovectorization floor — tiled inner loops likely regressed to scalar codegen"
    );
    assert!(
        f32_rate >= 5.0 * BASELINE_PROGRAMS_PER_SEC,
        "f32 batch-major encode {f32_rate:.1} programs/s below 5x the {BASELINE_PROGRAMS_PER_SEC} baseline"
    );
}
