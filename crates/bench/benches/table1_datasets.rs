//! **Table 1** — dataset statistics before and after filtering.
//!
//! Paper shape: a large "Original" pool shrinks to the "Filtered" column
//! through the compile / executions / timeout / size gates. Prints the
//! regenerated rows for the med and large analogues, then times corpus
//! generation as the Criterion kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{table1, table1_markdown, Scale};

fn regenerate() {
    for scale in [Scale::med(), Scale::large()] {
        let stats = table1(&scale);
        bench::banner("Table 1", "Dataset statistics (original vs. filtered)", &scale);
        println!("{}", table1_markdown(&scale.name, &stats));
    }
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_and_filter_tiny_corpus", |b| {
        b.iter(|| {
            let stats = table1(&Scale::tiny());
            assert!(stats.kept > 0);
            stats
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
