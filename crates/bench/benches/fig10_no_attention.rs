//! **Figure 10** (§6.3.3) — ablation: LIGER without the fusion attention
//! (uniform weights across the feature vectors of every ordered pair).
//!
//! Paper shape: a notable F1 drop everywhere (32.30→28.63 on Java-med in
//! the paper) — the constant weights dilute the symbolic dimension's
//! signal, so the model generalizes worse and leans harder on executions.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{
    build_method_dataset, concrete_markdown, fig6_concrete, fig6_symbolic, symbolic_markdown,
    Scale,
};
use liger::Ablation;

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner("Figure 10", "Ablation: LIGER w/o fusion attention", &scale);
    let (ds, _) = build_method_dataset(&scale);
    let c = fig6_concrete(&ds, &scale, Ablation::NoAttention);
    println!("{}", concrete_markdown("fig10-concrete (w/o attention)", &c));
    let s = fig6_symbolic(&ds, &scale, Ablation::NoAttention);
    println!("{}", symbolic_markdown("fig10-symbolic (w/o attention)", &s));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("train_no_attention_tiny", |b| {
        b.iter(|| {
            eval::liger_method_scores(
                &ds,
                &scale,
                Ablation::NoAttention,
                eval::PathLevel::Full,
                scale.concrete_per_path,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
