//! Static-analysis throughput and symexec pruning effect on the datagen
//! corpus.
//!
//! Prints parseable `ANALYSIS …` lines (consumed by
//! `scripts/bench_json.sh` into `BENCH_analysis.json`):
//!
//! - `ANALYSIS mode=lint …` — full lint pipeline (CFG + four dataflow
//!   fixpoints + diagnostic passes) in programs analyzed per second;
//! - `ANALYSIS mode=facts …` — the distilled `program_facts` summary the
//!   symbolic executor consumes;
//! - `ANALYSIS mode=symexec …` — one row per pruning setting over the
//!   whole corpus, verifying the enumerated path multiset is identical
//!   and reporting the solver-call reduction;
//! - `ANALYSIS mode=canon …` — canonicalization cost and dedup power
//!   over a variant-heavy corpus (every behavior rendered under several
//!   random knob draws), gating in-bench that ≥ 30% of same-behavior
//!   variant pairs collapse to a shared `canon_hash` and that zero
//!   lookalike-mutant pairs collide;
//! - `ANALYSIS mode=canon_memo …` — canonical-key memoized encoding
//!   (`liger::CanonEncoder`) vs direct per-variant extraction, gating
//!   in-bench that memo reuse measurably reduces encode work.

use datagen::{with_distractors, with_opaque_distractor, Behavior, Knobs, Strategy};
use minilang::Program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Every shipped template with plain knobs — the corpus `liger-lint`
/// gates in CI, and a realistic mix of loops, branches, and arrays.
fn corpus() -> Vec<Program> {
    let knobs = Knobs::plain();
    Behavior::ALL
        .iter()
        .map(|b| b.render(&knobs))
        .chain(Strategy::ALL.iter().map(|s| s.render(&knobs)))
        .map(|src| minilang::parse(&src).expect("template parses"))
        .collect()
}

/// The corpus as datagen's distractor engine emits it (deterministic
/// seed): constant-initialized dead branches plus one *opaque* dead
/// branch per program whose guard mentions an input. The opaque guards
/// stay symbolic under constant folding, so this is where
/// analysis-guided pruning pays off.
fn corpus_with_distractors() -> Vec<Program> {
    let knobs = Knobs::plain();
    let mut rng = StdRng::seed_from_u64(17);
    Behavior::ALL
        .iter()
        .map(|b| b.render(&knobs))
        .chain(Strategy::ALL.iter().map(|s| s.render(&knobs)))
        .map(|src| {
            let noisy = with_opaque_distractor(&with_distractors(&src, 2, &mut rng), &mut rng);
            minilang::parse(&noisy).expect("distractor template parses")
        })
        .collect()
}

fn bench_analyses(programs: &[Program]) {
    for (mode, work) in [
        ("lint", (|p| analysis::lint::run(p).diagnostics.len()) as fn(&Program) -> usize),
        ("facts", |p| analysis::program_facts(p).reachable.len()),
    ] {
        // Warm up, then measure enough rounds to dominate timer noise.
        let rounds = 20usize;
        let mut sink = 0usize;
        for p in programs {
            sink = sink.wrapping_add(work(p));
        }
        let start = Instant::now();
        for _ in 0..rounds {
            for p in programs {
                sink = sink.wrapping_add(work(p));
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let analyzed = rounds * programs.len();
        println!(
            "ANALYSIS mode={mode} programs={} rounds={rounds} secs={secs:.6} \
             programs_per_sec={:.2} sink={sink}",
            programs.len(),
            analyzed as f64 / secs,
        );
    }
}

fn bench_symexec(programs: &[Program]) {
    let base = symexec::SymExecConfig {
        max_paths: 16,
        max_steps: 200,
        ..symexec::SymExecConfig::default()
    };
    let mut rows = Vec::new();
    let mut paths_unpruned = Vec::new();
    for use_analysis in [false, true] {
        let config = symexec::SymExecConfig { use_analysis, ..base.clone() };
        let mut solver_calls = 0usize;
        let mut pruned_guards = 0usize;
        let mut paths_total = 0usize;
        let start = Instant::now();
        for (i, p) in programs.iter().enumerate() {
            let (paths, stats) = symexec::symbolic_execute(p, &config);
            solver_calls += stats.solver_calls;
            pruned_guards += stats.pruned_guards;
            paths_total += paths.len();
            let mut key: Vec<_> = paths.into_iter().map(|p| p.steps).collect();
            key.sort();
            if use_analysis {
                assert_eq!(paths_unpruned[i], key, "pruning changed the path set");
            } else {
                paths_unpruned.push(key);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        rows.push((use_analysis, paths_total, solver_calls, pruned_guards, secs));
    }
    let (_, _, calls_off, _, _) = rows[0];
    for (use_analysis, paths, calls, pruned, secs) in rows {
        let reduction = if use_analysis && calls_off > 0 {
            1.0 - calls as f64 / calls_off as f64
        } else {
            0.0
        };
        println!(
            "ANALYSIS mode=symexec use_analysis={use_analysis} programs={} paths={paths} \
             solver_calls={calls} pruned_guards={pruned} call_reduction={reduction:.4} \
             secs={secs:.6}",
            programs.len(),
        );
    }
}

/// Lookalike pairs: same loop/branch shape, different semantics. The
/// canonicalizer must never merge them, under any knob draw.
const CONFUSABLE: [(Behavior, Behavior); 5] = [
    (Behavior::SumArray, Behavior::ProductArray),
    (Behavior::MaxArray, Behavior::MinArray),
    (Behavior::CountPositive, Behavior::CountNegative),
    (Behavior::CountEven, Behavior::CountPositive),
    (Behavior::SumEven, Behavior::SumPositive),
];

fn bench_canon() {
    const DRAWS: usize = 6;
    let mut rng = StdRng::seed_from_u64(29);

    // A variant-heavy corpus: every behavior under DRAWS unrestricted
    // knob draws (loop style, increment/doubling spelling, comparison
    // style, misleading-prone identifier assignment).
    let mut sources: Vec<(usize, String)> = Vec::new();
    for (bi, b) in Behavior::ALL.iter().enumerate() {
        for _ in 0..DRAWS {
            sources.push((bi, b.render(&Knobs::random(&mut rng, 0.5))));
        }
    }
    let parsed: Vec<Program> =
        sources.iter().map(|(_, s)| minilang::parse(s).expect("variant parses")).collect();

    let start = Instant::now();
    let canons: Vec<_> = parsed.iter().map(analysis::canonicalize).collect();
    let canon_secs = start.elapsed().as_secs_f64();
    let canon_us = canon_secs * 1e6 / parsed.len() as f64;

    // Same-behavior pair collapse + corpus dedup ratio.
    let mut pairs = 0usize;
    let mut collapsed = 0usize;
    for bi in 0..Behavior::ALL.len() {
        let hashes: Vec<u64> = sources
            .iter()
            .zip(&canons)
            .filter(|((owner, _), _)| *owner == bi)
            .map(|(_, c)| c.hash)
            .collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                pairs += 1;
                collapsed += usize::from(hashes[i] == hashes[j]);
            }
        }
    }
    let pair_collapse = collapsed as f64 / pairs as f64;
    let mut distinct: Vec<u64> = canons.iter().map(|c| c.hash).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let dedup_ratio = 1.0 - distinct.len() as f64 / canons.len() as f64;

    // Lookalike mutants: same knobs, different semantics — zero shared
    // hashes allowed.
    let mut mutant_pairs = 0usize;
    let mut mutant_collisions = 0usize;
    for (left, right) in CONFUSABLE {
        for _ in 0..4 {
            let knobs = Knobs::random(&mut rng, 0.5);
            let l = minilang::parse(&left.render(&knobs)).expect("mutant parses");
            let r = minilang::parse(&right.render(&knobs)).expect("mutant parses");
            mutant_pairs += 1;
            mutant_collisions +=
                usize::from(analysis::canonicalize(&l).hash == analysis::canonicalize(&r).hash);
        }
    }

    println!(
        "ANALYSIS mode=canon programs={} behaviors={} draws={DRAWS} distinct={} \
         dedup_ratio={dedup_ratio:.4} pair_collapse={pair_collapse:.4} \
         mutant_pairs={mutant_pairs} mutant_collisions={mutant_collisions} \
         canon_us_per_program={canon_us:.2} secs={canon_secs:.6}",
        parsed.len(),
        Behavior::ALL.len(),
        distinct.len(),
    );
    assert!(
        pair_collapse >= 0.30,
        "variant-pair collapse {pair_collapse:.4} below the 30% floor"
    );
    assert_eq!(mutant_collisions, 0, "lookalike mutants collided under canonicalization");

    // Canonical-key memoized encoding vs direct extraction: the memo
    // extracts once per canonical form, so a variant-heavy corpus does
    // strictly less encode work.
    let opts = liger::ExtractOptions::default();
    let texts: Vec<&str> = sources.iter().map(|(_, s)| s.as_str()).collect();
    let vocab = liger::vocab_from_sources(&texts, &opts).expect("variant corpus traces");

    let start = Instant::now();
    for src in &texts {
        let encoded = liger::extract_encoded(src, &vocab, &opts).expect("variant encodes");
        std::hint::black_box(&encoded);
    }
    let direct_secs = start.elapsed().as_secs_f64();

    let mut encoder = liger::CanonEncoder::new();
    let start = Instant::now();
    for src in &texts {
        let encoded = encoder.encode(src, &vocab, &opts).expect("variant encodes");
        std::hint::black_box(&encoded);
    }
    let memo_secs = start.elapsed().as_secs_f64();

    let extraction_reduction = 1.0 - encoder.misses as f64 / texts.len() as f64;
    println!(
        "ANALYSIS mode=canon_memo programs={} encodes_direct={} encodes_memo={} \
         memo_hits={} extraction_reduction={extraction_reduction:.4} \
         direct_secs={direct_secs:.6} memo_secs={memo_secs:.6} encode_speedup={:.2}",
        texts.len(),
        texts.len(),
        encoder.misses,
        encoder.hits,
        direct_secs / memo_secs,
    );
    assert_eq!(encoder.misses as usize, distinct.len(), "memo must extract once per canonical form");
    assert!(
        encoder.hits > 0 && (encoder.misses as usize) < texts.len(),
        "memo reuse never fired on a variant-heavy corpus"
    );
    assert!(
        memo_secs < direct_secs,
        "canonical-key memoization did not reduce encode time \
         (memo {memo_secs:.6}s vs direct {direct_secs:.6}s)"
    );
}

fn main() {
    let programs = corpus();
    println!("\nstatic-analysis throughput over the {}-template corpus", programs.len());
    bench_analyses(&programs);
    bench_symexec(&corpus_with_distractors());
    bench_canon();
}
