//! Static-analysis throughput and symexec pruning effect on the datagen
//! corpus.
//!
//! Prints parseable `ANALYSIS …` lines (consumed by
//! `scripts/bench_json.sh` into `BENCH_analysis.json`):
//!
//! - `ANALYSIS mode=lint …` — full lint pipeline (CFG + four dataflow
//!   fixpoints + diagnostic passes) in programs analyzed per second;
//! - `ANALYSIS mode=facts …` — the distilled `program_facts` summary the
//!   symbolic executor consumes;
//! - `ANALYSIS mode=symexec …` — one row per pruning setting over the
//!   whole corpus, verifying the enumerated path multiset is identical
//!   and reporting the solver-call reduction.

use datagen::{with_distractors, with_opaque_distractor, Behavior, Knobs, Strategy};
use minilang::Program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Every shipped template with plain knobs — the corpus `liger-lint`
/// gates in CI, and a realistic mix of loops, branches, and arrays.
fn corpus() -> Vec<Program> {
    let knobs = Knobs::plain();
    Behavior::ALL
        .iter()
        .map(|b| b.render(&knobs))
        .chain(Strategy::ALL.iter().map(|s| s.render(&knobs)))
        .map(|src| minilang::parse(&src).expect("template parses"))
        .collect()
}

/// The corpus as datagen's distractor engine emits it (deterministic
/// seed): constant-initialized dead branches plus one *opaque* dead
/// branch per program whose guard mentions an input. The opaque guards
/// stay symbolic under constant folding, so this is where
/// analysis-guided pruning pays off.
fn corpus_with_distractors() -> Vec<Program> {
    let knobs = Knobs::plain();
    let mut rng = StdRng::seed_from_u64(17);
    Behavior::ALL
        .iter()
        .map(|b| b.render(&knobs))
        .chain(Strategy::ALL.iter().map(|s| s.render(&knobs)))
        .map(|src| {
            let noisy = with_opaque_distractor(&with_distractors(&src, 2, &mut rng), &mut rng);
            minilang::parse(&noisy).expect("distractor template parses")
        })
        .collect()
}

fn bench_analyses(programs: &[Program]) {
    for (mode, work) in [
        ("lint", (|p| analysis::lint::run(p).diagnostics.len()) as fn(&Program) -> usize),
        ("facts", |p| analysis::program_facts(p).reachable.len()),
    ] {
        // Warm up, then measure enough rounds to dominate timer noise.
        let rounds = 20usize;
        let mut sink = 0usize;
        for p in programs {
            sink = sink.wrapping_add(work(p));
        }
        let start = Instant::now();
        for _ in 0..rounds {
            for p in programs {
                sink = sink.wrapping_add(work(p));
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let analyzed = rounds * programs.len();
        println!(
            "ANALYSIS mode={mode} programs={} rounds={rounds} secs={secs:.6} \
             programs_per_sec={:.2} sink={sink}",
            programs.len(),
            analyzed as f64 / secs,
        );
    }
}

fn bench_symexec(programs: &[Program]) {
    let base = symexec::SymExecConfig {
        max_paths: 16,
        max_steps: 200,
        ..symexec::SymExecConfig::default()
    };
    let mut rows = Vec::new();
    let mut paths_unpruned = Vec::new();
    for use_analysis in [false, true] {
        let config = symexec::SymExecConfig { use_analysis, ..base.clone() };
        let mut solver_calls = 0usize;
        let mut pruned_guards = 0usize;
        let mut paths_total = 0usize;
        let start = Instant::now();
        for (i, p) in programs.iter().enumerate() {
            let (paths, stats) = symexec::symbolic_execute(p, &config);
            solver_calls += stats.solver_calls;
            pruned_guards += stats.pruned_guards;
            paths_total += paths.len();
            let mut key: Vec<_> = paths.into_iter().map(|p| p.steps).collect();
            key.sort();
            if use_analysis {
                assert_eq!(paths_unpruned[i], key, "pruning changed the path set");
            } else {
                paths_unpruned.push(key);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        rows.push((use_analysis, paths_total, solver_calls, pruned_guards, secs));
    }
    let (_, _, calls_off, _, _) = rows[0];
    for (use_analysis, paths, calls, pruned, secs) in rows {
        let reduction = if use_analysis && calls_off > 0 {
            1.0 - calls as f64 / calls_off as f64
        } else {
            0.0
        };
        println!(
            "ANALYSIS mode=symexec use_analysis={use_analysis} programs={} paths={paths} \
             solver_calls={calls} pruned_guards={pruned} call_reduction={reduction:.4} \
             secs={secs:.6}",
            programs.len(),
        );
    }
}

fn main() {
    let programs = corpus();
    println!("\nstatic-analysis throughput over the {}-template corpus", programs.len());
    bench_analyses(&programs);
    bench_symexec(&corpus_with_distractors());
}
