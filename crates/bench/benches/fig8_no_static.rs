//! **Figure 8** (§6.3.1) — ablation: LIGER without the static (symbolic)
//! feature dimension, under both reduction protocols.
//!
//! Paper shape: near-full accuracy when traces are abundant, but the
//! degradation profile now tracks DYPRO's — the static dimension is what
//! buys the reduced reliance on executions.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{
    build_method_dataset, concrete_markdown, fig6_concrete, fig6_symbolic, symbolic_markdown,
    Scale,
};
use liger::Ablation;

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner("Figure 8", "Ablation: LIGER w/o static feature dimension", &scale);
    let (ds, _) = build_method_dataset(&scale);
    let c = fig6_concrete(&ds, &scale, Ablation::NoStatic);
    println!("{}", concrete_markdown("fig8-concrete (w/o static)", &c));
    let s = fig6_symbolic(&ds, &scale, Ablation::NoStatic);
    println!("{}", symbolic_markdown("fig8-symbolic (w/o static)", &s));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("train_no_static_tiny", |b| {
        b.iter(|| {
            eval::liger_method_scores(
                &ds,
                &scale,
                Ablation::NoStatic,
                eval::PathLevel::Full,
                scale.concrete_per_path,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
