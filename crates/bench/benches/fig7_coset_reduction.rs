//! **Figure 7** — COSET accuracy as concrete and symbolic traces are
//! down-sampled (path and line coverage preserved respectively).
//!
//! Paper shape: LIGER weathers the loss of training data far better than
//! DYPRO — with ~4x fewer paths × fewer executions it still edges out
//! DYPRO trained on everything.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_coset_dataset, fig7, fig7_markdown, Scale};

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner("Figure 7", "COSET down-sampling (LIGER vs DYPRO)", &scale);
    let (ds, _) = build_coset_dataset(&scale);
    let rows = fig7(&ds, &scale);
    println!("{}", fig7_markdown(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let (ds, _) = build_coset_dataset(&Scale::tiny());
    let scale = Scale::tiny();
    let opts = liger::EncodeOptions { max_steps: scale.max_steps, max_traces: scale.max_traces };
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("reencode_coset_at_min_cover", |b| {
        b.iter(|| {
            ds.train
                .iter()
                .map(|s| {
                    eval::coset_at(s, &ds.vocab, &opts, s.min_cover, 2).0.total_steps()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
