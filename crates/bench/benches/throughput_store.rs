//! Artifact-store throughput: a full corpus pass cold (tracing every
//! program, populating the store) vs warm (replaying every outcome from
//! disk), with the ISSUE 10 acceptance gate asserted in-bench:
//!
//! - the warm pass must run at least **3×** faster than the cold pass,
//! - the warm pass must report **zero** misses (no program re-traced),
//! - warm samples must be bitwise identical to cold samples.
//!
//! Lines are consumed by `scripts/bench_json.sh` into
//! `BENCH_store.json`:
//!
//! - `STORE mode=cold …` — generation + store population,
//! - `STORE mode=warm …` — replay from disk (hits/misses reported),
//! - `STORE mode=summary …` — the gates and the observed speedup.
//!
//! `--smoke` shrinks the corpus for the CI gate.

use std::time::Instant;

use datagen::{generate_method_corpus_with_store, CorpusConfig, MethodCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SPEEDUP_FLOOR: f64 = 3.0;

fn config(variants: usize, paths: usize) -> CorpusConfig {
    CorpusConfig {
        variants_per_family: variants,
        defect_prob: 0.1,
        gen: randgen::GenConfig {
            target_paths: paths,
            concrete_per_path: 5,
            max_attempts: 800,
            ..randgen::GenConfig::default()
        },
        ..CorpusConfig::default()
    }
}

fn corpus_pass(
    config: &CorpusConfig,
    seed: u64,
    st: &store::Store,
) -> (MethodCorpus, f64, store::StoreStats) {
    let before = store::StoreStats::snapshot();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let corpus =
        generate_method_corpus_with_store(config, &mut rng, Some(st)).expect("store pass");
    let secs = start.elapsed().as_secs_f64();
    (corpus, secs, store::StoreStats::snapshot().since(&before))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (variants, paths, seed) = if smoke { (2, 6, 0x57) } else { (8, 12, 0x57) };
    let config = config(variants, paths);

    let dir = std::env::temp_dir().join(format!("lgrs-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let st = store::Store::open(&dir).expect("open store");

    // ---- cold pass: trace everything, populate the store ----------------
    let (cold, cold_secs, cold_stats) = corpus_pass(&config, seed, &st);
    let programs = cold.stats.original;
    println!(
        "STORE mode=cold programs={programs} kept={} secs={cold_secs:.6} \
         programs_per_sec={:.2} misses={} bytes={}",
        cold.stats.kept,
        programs as f64 / cold_secs,
        cold_stats.misses,
        cold_stats.bytes,
    );

    // ---- warm pass: replay every outcome from disk -----------------------
    let st = store::Store::open(&dir).expect("reopen store");
    let (warm, warm_secs, warm_stats) = corpus_pass(&config, seed, &st);
    println!(
        "STORE mode=warm programs={programs} kept={} secs={warm_secs:.6} \
         programs_per_sec={:.2} hits={} misses={}",
        warm.stats.kept,
        programs as f64 / warm_secs,
        warm_stats.hits,
        warm_stats.misses,
    );

    // ---- the gates -------------------------------------------------------
    assert_eq!(warm_stats.misses, 0, "warm pass re-traced {} program(s)", warm_stats.misses);
    assert_eq!(cold.stats, warm.stats, "warm pass changed the filter verdicts");
    for (a, b) in cold.samples.iter().zip(&warm.samples) {
        assert_eq!(a.program, b.program, "warm program drifted: {}", a.name);
        assert_eq!(a.groups, b.groups, "warm traces not bitwise identical: {}", a.name);
    }
    let speedup = cold_secs / warm_secs.max(1e-9);
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "warm corpus pass speedup {speedup:.2}x fell below the {SPEEDUP_FLOOR}x floor \
         (cold {cold_secs:.3}s, warm {warm_secs:.3}s)"
    );
    println!(
        "STORE mode=summary programs={programs} cold_secs={cold_secs:.6} \
         warm_secs={warm_secs:.6} warm_speedup={speedup:.2} \
         speedup_floor={SPEEDUP_FLOOR} warm_misses={} pass=true",
        warm_stats.misses,
    );
    std::fs::remove_dir_all(&dir).ok();
}
