//! **Figure 11** (§6.3.4) — all ablation configurations side by side:
//! full LIGER, w/o static, w/o dynamic, w/o attention, each at full data,
//! at the minimum line-cover path set, and with a single concrete trace.
//!
//! Paper shape: the dynamic dimension drives peak accuracy; the static
//! dimension + attention drive the resilience to trace reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_method_dataset, fig11, fig11_markdown, Scale};

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner("Figure 11", "Ablation summary across configurations", &scale);
    let (ds, _) = build_method_dataset(&scale);
    let rows = fig11(&ds, &scale);
    println!("{}", fig11_markdown(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("encode_full_dataset_tiny", |b| {
        let opts =
            liger::EncodeOptions { max_steps: scale.max_steps, max_traces: scale.max_traces };
        b.iter(|| {
            ds.train
                .iter()
                .map(|s| {
                    liger::encode_program(&s.program, &s.blended, &ds.vocabs.input, &opts)
                        .total_steps()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
