//! Observability overhead: what span tracing costs when it is off (the
//! shipped default) and what it costs when it is on.
//!
//! The contract (DESIGN.md §2e) is that instrumentation left compiled
//! into the hot paths is effectively free until `LIGER_PROFILE=1`
//! enables it. This bench:
//!
//! * measures the memoized-encoder workload with tracing **disabled**
//!   (the baseline every other bench sees),
//! * measures the raw cost of one disabled `obs::span!` in a tight loop
//!   (one relaxed atomic load + a no-op guard drop),
//! * counts how many span events one encoded program actually emits,
//!   and **asserts** that `ns_per_disabled_span × spans_per_program`
//!   stays under 2% of the per-program time — a calibrated bound that
//!   does not flake on machine noise the way an A/B wall-clock diff
//!   would,
//! * measures the same workload with tracing **enabled** for an
//!   informational enabled/disabled ratio.
//!
//! Prints `OBS …` lines parsed by `scripts/bench_json.sh` into
//! `BENCH_obs.json`.

use std::time::Instant;

use liger::{EncodedProgram, LigerConfig, LigerModel, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::ParamStore;

/// Best-of-`rounds` seconds for one full pass over `progs`.
fn measure_pass<F: FnMut(&EncodedProgram) -> u64>(
    progs: &[EncodedProgram],
    rounds: usize,
    mut per_program: F,
) -> f64 {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..rounds {
        let start = Instant::now();
        for prog in progs {
            checksum = checksum.wrapping_add(per_program(prog));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(checksum != 0, "encoder produced all-zero embeddings");
    best
}

fn main() {
    let ds = bench::tiny_dataset();
    let mut rng = StdRng::seed_from_u64(41);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let model = LigerModel::new(&mut store, ds.vocabs.input.len(), cfg, &mut rng);
    let progs: Vec<EncodedProgram> =
        ds.train.iter().chain(ds.test.iter()).map(|s| s.liger.clone()).collect();
    assert!(!progs.is_empty(), "tiny dataset produced no programs");

    let rounds = 5;
    println!("\nobservability overhead over the memoized encoder ({} programs)", progs.len());

    // Baseline: tracing pinned off, one warm pass, then timed passes.
    obs::trace::set_enabled(Some(false));
    let mut ws = Workspace::new();
    let encode_pass = |ws: &mut Workspace, prog: &EncodedProgram| {
        ws.reset();
        let out = model.encode_memo(ws, &store, prog);
        ws.graph.value(out.program).data().iter().map(|v| v.to_bits() as u64).sum()
    };
    for prog in &progs {
        encode_pass(&mut ws, prog);
    }
    let disabled_secs = measure_pass(&progs, rounds, |prog| encode_pass(&mut ws, prog));
    println!(
        "OBS mode=disabled programs={} rounds={rounds} secs={disabled_secs:.6} programs_per_sec={:.2}",
        progs.len(),
        progs.len() as f64 / disabled_secs,
    );

    // Raw disabled-span cost: a tight loop of enter+drop with tracing off.
    const SPAN_LOOPS: u64 = 4_000_000;
    let start = Instant::now();
    for i in 0..SPAN_LOOPS {
        let _s = obs::span!("bench.obs.disabled");
        std::hint::black_box(i);
    }
    let ns_per_span = start.elapsed().as_secs_f64() * 1e9 / SPAN_LOOPS as f64;

    // How many spans one pass actually enters: run once with tracing on
    // and count the recorded events (every enter = one event).
    obs::trace::set_enabled(Some(true));
    obs::trace::reset();
    for prog in &progs {
        encode_pass(&mut ws, prog);
    }
    let data = obs::trace::drain();
    let spans_per_program =
        (data.events.len() as u64 + data.dropped) as f64 / progs.len() as f64;

    // The calibrated disabled-mode overhead bound.
    let per_program_ns = disabled_secs * 1e9 / progs.len() as f64;
    let overhead_frac = ns_per_span * spans_per_program / per_program_ns;
    println!(
        "OBS mode=spancost ns_per_span={ns_per_span:.2} spans_per_program={spans_per_program:.1} \
         overhead_frac={overhead_frac:.5}"
    );

    // Informational: the enabled-mode cost of the same workload.
    let enabled_secs = measure_pass(&progs, rounds, |prog| encode_pass(&mut ws, prog));
    obs::trace::reset();
    obs::trace::set_enabled(Some(false));
    println!(
        "OBS mode=enabled programs={} rounds={rounds} secs={enabled_secs:.6} \
         programs_per_sec={:.2} enabled_over_disabled={:.3}",
        progs.len(),
        progs.len() as f64 / enabled_secs,
        enabled_secs / disabled_secs,
    );

    assert!(
        overhead_frac < 0.02,
        "disabled-mode span overhead {:.3}% exceeds the 2% budget \
         ({ns_per_span:.2}ns/span × {spans_per_program:.1} spans/program on {per_program_ns:.0}ns/program)",
        overhead_frac * 100.0,
    );
    println!(
        "OBS mode=summary overhead_budget=0.02 overhead_frac={overhead_frac:.5} pass=true"
    );
}
