//! **Figure 6c/6d** — F1 vs. number of symbolic traces with line coverage
//! preserved (minimum line-cover path set computed greedily, paths removed
//! from outside the cover first; three concrete traces per path).
//!
//! Paper shape: LIGER is largely unaffected until only a single symbolic
//! trace remains, where it drops sharply; DYPRO (given the concrete traces
//! out of the blended ones) degrades earlier.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_method_dataset, fig6_symbolic, symbolic_markdown};
use liger::Ablation;

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner(
        "Figure 6c/6d",
        "Symbolic-trace reduction preserving line coverage (LIGER vs DYPRO)",
        &scale,
    );
    let (ds, _) = build_method_dataset(&scale);
    let avg_paths: f64 = ds.train.iter().map(|s| s.blended.len() as f64).sum::<f64>()
        / ds.train.len().max(1) as f64;
    let avg_cover: f64 = ds.train.iter().map(|s| s.min_cover as f64).sum::<f64>()
        / ds.train.len().max(1) as f64;
    println!(
        "(avg paths/method: {avg_paths:.1}; avg minimum line-cover size: {avg_cover:.1} — the paper reports 5.3)\n"
    );
    let rows = fig6_symbolic(&ds, &scale, Ablation::Full);
    println!("{}", symbolic_markdown("fig6-symbolic", &rows));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let mut group = c.benchmark_group("fig6_symbolic");
    group.sample_size(10);
    group.bench_function("min_line_cover_per_method", |b| {
        b.iter(|| {
            ds.train.iter().map(|s| s.min_cover).sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
