//! **Table 3** — COSET semantics classification: DYPRO vs. LIGER.
//!
//! Paper shape: LIGER beats DYPRO by a few points in both accuracy and F1
//! (85.4%/0.85 vs 81.6%/0.81 in the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_coset_dataset, table3, table3_markdown, Scale};

fn regenerate() {
    let scale = Scale::from_env();
    bench::banner("Table 3", "COSET-style semantics classification", &scale);
    let (ds, stats) = build_coset_dataset(&scale);
    println!(
        "(corpus: {} generated, {} kept; {} train / {} test; {} classes)\n",
        stats.original,
        stats.kept,
        ds.train.len(),
        ds.test.len(),
        ds.num_classes
    );
    let rows = table3(&ds, &scale);
    println!("{}", table3_markdown(&rows));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let (ds, _) = build_coset_dataset(&Scale::tiny());
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("train_and_eval_liger_classifier_tiny", |b| {
        b.iter(|| {
            eval::liger_coset_scores(
                &ds,
                &scale,
                liger::Ablation::Full,
                eval::PathLevel::Full,
                scale.concrete_per_path,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
