//! **Figure 6a/6b** — F1 vs. number of concrete traces per blended trace
//! (symbolic traces constant), LIGER vs. DYPRO. Also prints the §6.1.2
//! fusion-attention statistic (paper: ≈0.598 on the symbolic dimension,
//! stable across the reduction).
//!
//! Paper shape: LIGER stays nearly flat down to ~3 concrete traces and
//! degrades gently after; DYPRO degrades steadily with fewer executions.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_method_dataset, concrete_markdown, fig6_concrete, Scale};
use liger::Ablation;

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner(
        "Figure 6a/6b",
        "Concrete-trace reduction (LIGER vs DYPRO) + attention stat",
        &scale,
    );
    let (ds, _) = build_method_dataset(&scale);
    let rows = fig6_concrete(&ds, &scale, Ablation::Full);
    println!("{}", concrete_markdown("fig6-concrete", &rows));
    let attns: Vec<String> = rows
        .iter()
        .filter_map(|r| r.liger_static_attention)
        .map(|a| format!("{a:.3}"))
        .collect();
    println!("mean static-dimension attention across levels: [{}]", attns.join(", "));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("fig6_concrete");
    group.sample_size(10);
    group.bench_function("reencode_at_one_concrete_trace", |b| {
        let opts = liger::EncodeOptions { max_steps: scale.max_steps, max_traces: scale.max_traces };
        b.iter(|| {
            ds.train
                .iter()
                .map(|s| eval::method_at_concrete(s, &ds.vocabs.input, &opts, 1).0.total_steps())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
