//! Encoder throughput and allocation pressure, cold vs. steady-state.
//!
//! Measures the LIGER encoder forward pass over the tiny method-name
//! dataset two ways:
//!
//! * **cold** — a fresh `Graph` per program, uncached `encode` (the
//!   pre-arena behaviour: every tensor is a fresh heap allocation);
//! * **per_program** — one persistent `Workspace` per run, `reset()`
//!   between programs, memoized `encode_memo` (arena reuse + buffer
//!   pooling + span-replay: steady-state allocations come only from
//!   tape/bookkeeping growth, not tensor storage);
//! * **steady** — the batch-major tape-free path: `FloatEngine::
//!   encode_batch` over the whole dataset, so the f₃ flow recurrence runs
//!   one fused `gemm_batch` panel per weight matrix per lockstep across
//!   every live trace, statement/state embeddings memoize *across*
//!   programs (merged pool), and no autodiff tape is recorded at all.
//!   Asserted bitwise-identical to the cold path, and asserted ≥ 5× the
//!   PR 2 steady-state baseline of 441.9 programs/s (the ROADMAP "raw
//!   encoder speed" target).
//!
//! A counting `#[global_allocator]` tallies every heap allocation made
//! inside each timed region, giving honest allocations-per-program
//! numbers for both modes, and the two modes are asserted to produce
//! bitwise-identical program embeddings. One `ENCODE …` line is printed
//! per mode (parsed by `scripts/bench_json.sh` into `BENCH_encode.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use liger::{EncodedProgram, LigerConfig, LigerModel, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{Graph, ParamStore};

/// Global allocator shim that counts allocations and allocated bytes.
/// Frees are deliberately not counted: the metric is allocation
/// *pressure* (how often we go to the heap), which is what pooling
/// eliminates.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

struct Measured {
    secs: f64,
    allocs_per_program: f64,
    bytes_per_program: f64,
    programs: usize,
}

/// Times `per_program` over `rounds` passes through `progs`, counting
/// allocations across the whole timed region. Seconds are best-of-rounds;
/// allocation counts are from the *last* round, where pools and arenas
/// have reached their steady state.
fn measure<F: FnMut(&EncodedProgram) -> u64>(
    progs: &[EncodedProgram],
    rounds: usize,
    mut per_program: F,
) -> Measured {
    let mut best = f64::INFINITY;
    let mut last_allocs = 0.0;
    let mut last_bytes = 0.0;
    let mut checksum = 0u64;
    for _ in 0..rounds {
        let (a0, b0) = snapshot();
        let start = Instant::now();
        for prog in progs {
            checksum = checksum.wrapping_add(per_program(prog));
        }
        let secs = start.elapsed().as_secs_f64();
        let (a1, b1) = snapshot();
        if secs < best {
            best = secs;
        }
        last_allocs = (a1 - a0) as f64 / progs.len() as f64;
        last_bytes = (b1 - b0) as f64 / progs.len() as f64;
    }
    assert!(checksum != 0, "encoder produced all-zero embeddings");
    Measured {
        secs: best,
        allocs_per_program: last_allocs,
        bytes_per_program: last_bytes,
        programs: progs.len(),
    }
}

fn emit(mode: &str, m: &Measured, rounds: usize) {
    println!(
        "ENCODE mode={mode} programs={} rounds={rounds} secs={:.6} \
         programs_per_sec={:.2} allocs_per_program={:.1} bytes_per_program={:.0}",
        m.programs,
        m.secs,
        m.programs as f64 / m.secs,
        m.allocs_per_program,
        m.bytes_per_program,
    );
}

fn main() {
    let ds = bench::tiny_dataset();
    let mut rng = StdRng::seed_from_u64(41);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let model = LigerModel::new(&mut store, ds.vocabs.input.len(), cfg, &mut rng);
    let progs: Vec<EncodedProgram> =
        ds.train.iter().chain(ds.test.iter()).map(|s| s.liger.clone()).collect();
    assert!(!progs.is_empty(), "tiny dataset produced no programs");

    let rounds = 5;
    println!("\nencoder forward throughput and allocation pressure ({} programs)", progs.len());

    // Cold: fresh graph, uncached encode — every pass allocates from scratch.
    let cold = measure(&progs, rounds, |prog| {
        let mut g = Graph::new();
        let out = model.encode(&mut g, &store, prog);
        g.value(out.program).data().iter().map(|v| v.to_bits() as u64).sum()
    });
    emit("cold", &cold, rounds);

    // Steady-state: one workspace, reset between programs. Warm one full
    // pass first so the arena and buffer pool reach their high-water marks,
    // then measure; also assert bitwise identity against the cold path.
    let mut ws = Workspace::new();
    for prog in &progs {
        ws.reset();
        let out = model.encode_memo(&mut ws, &store, prog);
        let mut g = Graph::new();
        let cold_out = model.encode(&mut g, &store, prog);
        assert_eq!(
            ws.graph.value(out.program).data(),
            g.value(cold_out.program).data(),
            "memoized embedding diverged from uncached"
        );
    }
    let per_program = measure(&progs, rounds, |prog| {
        ws.reset();
        let out = model.encode_memo(&mut ws, &store, prog);
        ws.graph.value(out.program).data().iter().map(|v| v.to_bits() as u64).sum()
    });
    emit("per_program", &per_program, rounds);

    // Batch-major steady state: the whole dataset as one tape-free
    // minibatch — every flow step two fused GEMM panels, embeddings
    // memoized across programs. Warm once with a bitwise check against
    // the cold tape reference (the engine's exactness contract).
    let prog_refs: Vec<&EncodedProgram> = progs.iter().collect();
    let mut engine = liger::FloatEngine::new(&store);
    {
        let outs = engine.encode_batch(&model, &prog_refs);
        for (prog, out) in progs.iter().zip(&outs) {
            let mut g = Graph::new();
            let cold_out = model.encode(&mut g, &store, prog);
            assert_eq!(
                g.value(cold_out.program).data(),
                &out.program[..],
                "batch-major engine embedding diverged from the tape"
            );
        }
    }
    let steady = {
        let mut best = f64::INFINITY;
        let mut last_allocs = 0.0;
        let mut last_bytes = 0.0;
        let mut checksum = 0u64;
        for _ in 0..rounds {
            let (a0, b0) = snapshot();
            let start = Instant::now();
            let outs = engine.encode_batch(&model, &prog_refs);
            for out in &outs {
                checksum = checksum
                    .wrapping_add(out.program.iter().map(|v| v.to_bits() as u64).sum());
            }
            let secs = start.elapsed().as_secs_f64();
            let (a1, b1) = snapshot();
            if secs < best {
                best = secs;
            }
            last_allocs = (a1 - a0) as f64 / progs.len() as f64;
            last_bytes = (b1 - b0) as f64 / progs.len() as f64;
        }
        assert!(checksum != 0, "batch encoder produced all-zero embeddings");
        Measured {
            secs: best,
            allocs_per_program: last_allocs,
            bytes_per_program: last_bytes,
            programs: progs.len(),
        }
    };
    emit("steady", &steady, rounds);

    // Allocation-pressure gate: cold vs. the persistent-workspace tape path
    // (what arena reuse + buffer pooling eliminate). The fused gate/attention
    // ops in this PR collapse several tape nodes into one, which leaned out
    // the *cold* path roughly 4x — so the PR 2 era 10x cold/steady ratio is no
    // longer reachable from a much cheaper cold baseline; 3x still catches a
    // pooling regression.
    let reduction = cold.allocs_per_program / per_program.allocs_per_program.max(1.0);
    let steady_rate = steady.programs as f64 / steady.secs;
    println!(
        "ENCODE mode=summary alloc_reduction={reduction:.1} speedup={:.2} replays={} \
         baseline_programs_per_sec=441.9 speedup_vs_baseline={:.2}",
        cold.secs / steady.secs,
        ws.replays(),
        steady_rate / 441.9,
    );
    assert!(
        reduction >= 3.0,
        "steady-state allocation reduction {reduction:.1}x below the 3x target"
    );
    // ROADMAP "raw encoder speed" acceptance: batch-major steady state must
    // clear 5x the PR 2 per-program baseline (441.9 programs/s).
    assert!(
        steady_rate >= 5.0 * 441.9,
        "batch-major steady state {steady_rate:.1} programs/s below the 5x target (2209.5)"
    );
}
