//! **Table 2** — method-name prediction: code2vec, code2seq, DYPRO, LIGER.
//!
//! Paper shape to reproduce: LIGER > DYPRO > code2seq > code2vec by F1,
//! with the static models well behind the dynamic ones on a corpus full
//! of renamings and syntactic confusables.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_method_dataset, table2, table2_markdown, Scale};

fn regenerate() {
    let scale = Scale::from_env();
    bench::banner("Table 2", "Method-name prediction P/R/F1 for all four models", &scale);
    let (ds, _) = build_method_dataset(&scale);
    println!(
        "(dataset: {} train / {} test methods)\n",
        ds.train.len(),
        ds.test.len()
    );
    let rows = table2(&ds, &scale);
    println!("{}", table2_markdown(&scale.name, &rows));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("train_and_eval_liger_tiny", |b| {
        b.iter(|| {
            eval::liger_method_scores(
                &ds,
                &scale,
                liger::Ablation::Full,
                eval::PathLevel::Full,
                scale.concrete_per_path,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
