//! Serving throughput: a real `liger-serve` TCP server on an ephemeral
//! port, measured three ways.
//!
//! 1. **Pipelined sweep** (`SERVE` lines, one per client count): the
//!    PR 3 workload — N in-process clients each pipelining 64 embed
//!    requests — showing micro-batch coalescing as concurrency grows.
//!    The 8-client run is asserted in-bench to clear the PR 3 baseline
//!    (3000.94 req/s), so the event-loop front end can never regress
//!    the pipelined path.
//! 2. **Framing allocation audit** (`SERVEALLOC` line): a counting
//!    `#[global_allocator]` drives the per-connection framing hot path
//!    (incremental `FrameReader` decode + `write_frame_into` encode)
//!    in steady state and asserts **zero** allocations per frame.
//! 3. **Multi-process load phase** (`SERVELOAD` line): the bench
//!    re-executes itself as separate load-generator processes, each
//!    driving hundreds of concurrent connections through the same
//!    readiness poller the server uses. Asserts ≥1k concurrent
//!    connections served with zero dropped in-flight requests and
//!    every BUSY/SHED reply accounted against the server's own
//!    counters, and records the observed p99.
//!
//! `--smoke` runs a scaled-down load phase only (CI gate);
//! `--load-client ADDR CONNS PER_CONN SEED` is the internal child mode.
//!
//! All lines are consumed by `scripts/bench_json.sh` into
//! `BENCH_serve.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use liger::{
    train_namer, EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram, LigerConfig,
    LigerNamer, ModelBundle, NameSample, OutVocab, TrainConfig, Vocab,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::epoll::{Event, Interest, Poller};
use serve::json::Json;
use serve::protocol::{infer_request, write_frame_into, FrameReader, InferInput, InferKind};
use serve::server::{serve, Client, ServerConfig};

/// The PR 3 pipelined-throughput baseline at 8 clients (BENCH_serve.json
/// before the event-loop front end): the sweep must never fall below it.
const BASELINE_8_CLIENTS_REQ_PER_SEC: f64 = 3000.94;

// ---------------------------------------------------------------------------
// Counting allocator (same idiom as throughput_encode): allocation
// pressure only, frees deliberately uncounted.
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// A small synthetic program parameterized by `t` (same shape as the
/// loopback tests — two blended steps, one object state).
fn prog(t: usize) -> EncodedProgram {
    EncodedProgram::from_traces(vec![EncBlended {
        steps: vec![
            EncStep {
                tree: EncTree {
                    token: t,
                    children: vec![EncTree { token: t + 1, children: vec![] }],
                },
                states: vec![
                    EncState { vars: vec![EncVar::Primitive(t + 2)] },
                    EncState { vars: vec![EncVar::Object(vec![t, t + 1])] },
                ],
            },
            EncStep {
                tree: EncTree { token: t + 1, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(t)] }],
            },
        ],
    }])
}

/// A briefly-trained namer bundle over the synthetic programs.
fn trained_bundle() -> ModelBundle {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add(&format!("tok{i}"));
    }
    let mut out = OutVocab::new();
    for name in ["find", "max", "sum", "item"] {
        out.add(name);
    }
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(33);
    let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    let samples: Vec<NameSample> = (1..4)
        .map(|t| NameSample { program: prog(t), target: vec![3 + (t - 1), liger::EOS] })
        .collect();
    train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 3, lr: 0.02, batch_size: 2 },
        &mut rng,
    );
    ModelBundle::for_namer(cfg, vocab, out, store)
}

/// Pre-rendered request frames cycling over 8 distinct programs, so the
/// content-hash router actually spreads work across shards.
fn request_frames() -> Vec<Vec<u8>> {
    let mut scratch = String::new();
    (0..8)
        .map(|t| {
            let mut out = Vec::new();
            write_frame_into(
                &mut out,
                &mut scratch,
                &infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(prog(1 + t)))),
            );
            out
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Pipelined sweep (the PR 3 workload, kept comparable)
// ---------------------------------------------------------------------------

struct Run {
    clients: usize,
    requests: u64,
    batches: u64,
    rejected: u64,
    secs: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Starts a fresh server, drives `clients` fully-pipelined connections of
/// `per_client` embed requests each, and collects the final stats.
///
/// The event-loop front end parses a connection's whole pipeline eagerly
/// (the old thread-per-connection server consumed one frame per blocking
/// round trip), so the queue is sized to hold every outstanding request:
/// this sweep measures throughput, not backpressure, and asserts nothing
/// was rejected.
fn run(bundle: &ModelBundle, clients: usize, per_client: usize) -> Run {
    let handle = serve(
        bundle,
        ServerConfig {
            batch_max: 16,
            batch_timeout_ms: 2,
            queue_cap: clients * per_client,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.local_addr();
    let programs: Vec<EncodedProgram> = (1..6).map(prog).collect();
    let requests: Vec<Json> = programs
        .iter()
        .map(|p| infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(p.clone()))))
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let requests = &requests;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Pipeline everything before reading any reply so the
                // queue fills and batches actually form.
                for i in 0..per_client {
                    client.send(&requests[(c + i) % requests.len()]).expect("send");
                }
                for i in 0..per_client {
                    let reply = client.recv().expect("recv");
                    assert_eq!(
                        reply.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "client {c} reply {i} failed: {}",
                        reply
                    );
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();

    let stats = handle.stats();
    handle.shutdown();
    handle.join();
    Run {
        clients,
        requests: stats.requests,
        batches: stats.batches,
        rejected: stats.rejected,
        secs,
        p50_us: stats.p50_us,
        p99_us: stats.p99_us,
    }
}

fn emit(r: &Run) {
    let batch_factor = r.requests as f64 / (r.batches.max(1)) as f64;
    println!(
        "SERVE clients={} requests={} batches={} batch_factor={:.2} rejected={} \
         secs={:.6} req_per_sec={:.2} p50_us={} p99_us={}",
        r.clients,
        r.requests,
        r.batches,
        batch_factor,
        r.rejected,
        r.secs,
        r.requests as f64 / r.secs,
        r.p50_us,
        r.p99_us,
    );
}

fn pipelined_sweep(bundle: &ModelBundle) {
    let per_client = 64;
    println!(
        "\nliger-serve loopback throughput ({per_client} pipelined embed requests per client)"
    );
    for clients in [1, 2, 4, 8] {
        // Warm run to populate thread pools and shard workspaces, then
        // the measured run on a fresh server. The 8-client row takes the
        // best of three so a scheduler hiccup cannot fail the floor.
        run(bundle, clients, per_client.min(8));
        let attempts = if clients == 8 { 3 } else { 1 };
        let mut best: Option<Run> = None;
        for _ in 0..attempts {
            let r = run(bundle, clients, per_client);
            assert_eq!(r.requests, (clients * per_client) as u64, "lost requests");
            assert_eq!(r.rejected, 0, "pipelined sweep saw BUSY replies");
            if best.as_ref().is_none_or(|b| r.secs < b.secs) {
                best = Some(r);
            }
        }
        let best = best.unwrap();
        if best.clients == 8 {
            let req_per_sec = best.requests as f64 / best.secs;
            assert!(
                req_per_sec >= BASELINE_8_CLIENTS_REQ_PER_SEC,
                "8-client pipelined throughput regressed below the PR 3 baseline: \
                 {req_per_sec:.2} < {BASELINE_8_CLIENTS_REQ_PER_SEC} req/s"
            );
        }
        emit(&best);
    }
}

// ---------------------------------------------------------------------------
// 2. Framing allocation audit
// ---------------------------------------------------------------------------

/// Replays one encoded frame forever — the read side of a connection
/// whose peer pipelines identical requests.
struct RingReader {
    data: Vec<u8>,
    pos: usize,
}

impl Read for RingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos = (self.pos + n) % self.data.len();
        Ok(n)
    }
}

/// Drives the steady-state framing hot path — incremental decode via
/// `FrameReader::next_payload` plus encode via `write_frame_into` into
/// reused buffers — and asserts it allocates **nothing** per frame once
/// warm. This is the per-connection cost of the event loop's framing
/// layer, measured without JSON parse or inference.
fn framing_alloc_audit() {
    let frames = request_frames();
    let reply = serve::protocol::ok_response(vec![(
        "embedding",
        Json::Arr((0..16).map(|i| Json::Num(f64::from(i) * 0.25)).collect()),
    )]);

    let mut ring = RingReader { data: frames[0].clone(), pos: 0 };
    let mut reader = FrameReader::new();
    let mut out: Vec<u8> = Vec::new();
    let mut scratch = String::new();

    let mut cycle = |n: usize| {
        let mut decoded = 0usize;
        while decoded < n {
            match reader.next_payload().expect("ring stream is well-formed") {
                Some(payload) => {
                    assert!(!payload.is_empty());
                    decoded += 1;
                    out.clear();
                    write_frame_into(&mut out, &mut scratch, &reply);
                    assert!(!out.is_empty());
                }
                None => {
                    assert!(reader.fill_from(&mut ring).expect("ring read") > 0);
                }
            }
        }
        decoded
    };

    // Warm-up grows every buffer to steady-state capacity…
    cycle(256);
    // …after which the framing path must not touch the heap at all.
    const FRAMES: usize = 4096;
    let before = allocs();
    let decoded = cycle(FRAMES);
    let after = allocs();
    assert_eq!(decoded, FRAMES);
    let delta = after - before;
    assert_eq!(
        delta, 0,
        "steady-state framing allocated: {delta} allocations over {FRAMES} frames"
    );
    println!(
        "SERVEALLOC frames={FRAMES} allocs={delta} allocs_per_frame={:.4}",
        delta as f64 / FRAMES as f64
    );
}

// ---------------------------------------------------------------------------
// 3. Multi-process load phase
// ---------------------------------------------------------------------------

/// Per-connection state in the load-generator child.
struct LoadConn {
    stream: TcpStream,
    reader: FrameReader,
    got: usize,
    alive: bool,
}

/// Child mode: connect `conns` sockets, pipeline `per_conn` pre-rendered
/// requests down each, then drive all of them through the same readiness
/// poller the server uses until every reply arrived. Prints one
/// `LOADCLIENT` line for the parent to aggregate.
fn load_client_main(addr: &str, conns: usize, per_conn: usize, seed: usize) -> i32 {
    let frames = request_frames();
    let mut states: Vec<LoadConn> = Vec::with_capacity(conns);
    for c in 0..conns {
        // The kernel backlog (128) can refuse a burst of 1k+ SYNs;
        // retry briefly instead of failing the whole phase.
        let mut stream = None;
        for attempt in 0..50 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10 * (attempt + 1))),
            }
        }
        let Some(stream) = stream else {
            eprintln!("load-client: connection {c} never connected");
            return 1;
        };
        let _ = stream.set_nodelay(true);
        states.push(LoadConn { stream, reader: FrameReader::new(), got: 0, alive: true });
    }

    // Pipeline the full request load (blocking writes: each connection's
    // payload is well under the socket buffer).
    for (c, conn) in states.iter_mut().enumerate() {
        for r in 0..per_conn {
            let frame = &frames[(seed + c + r) % frames.len()];
            if conn.stream.write_all(frame).is_err() {
                eprintln!("load-client: connection {c} write failed");
                return 1;
            }
        }
        if conn.stream.set_nonblocking(true).is_err() {
            return 1;
        }
    }

    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("load-client: poller: {e}");
            return 1;
        }
    };
    for (c, conn) in states.iter().enumerate() {
        use std::os::fd::AsRawFd;
        if poller.register(conn.stream.as_raw_fd(), c as u64, Interest::READ).is_err() {
            eprintln!("load-client: register failed for connection {c}");
            return 1;
        }
    }

    let want = conns * per_conn;
    let (mut ok, mut busy, mut shed, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let mut done = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while done < want && Instant::now() < deadline {
        if poller.wait(&mut events, 100).is_err() {
            break;
        }
        for ev in &events {
            let c = ev.token as usize;
            let conn = &mut states[c];
            if !conn.alive {
                continue;
            }
            loop {
                // Drain buffered frames first, then refill (edge-style).
                loop {
                    match conn.reader.next_frame() {
                        Ok(Some(frame)) => {
                            done += 1;
                            conn.got += 1;
                            if frame.get("ok").and_then(Json::as_bool) == Some(true) {
                                ok += 1;
                            } else if frame.get("busy").and_then(Json::as_bool) == Some(true) {
                                busy += 1;
                            } else if frame.get("shed").and_then(Json::as_bool) == Some(true) {
                                shed += 1;
                            } else {
                                errors += 1;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            errors += 1;
                            conn.alive = false;
                            break;
                        }
                    }
                }
                if !conn.alive {
                    break;
                }
                match conn.reader.fill_from(&mut conn.stream) {
                    Ok(0) => {
                        conn.alive = false;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.alive = false;
                        break;
                    }
                }
            }
        }
    }

    println!(
        "LOADCLIENT connected={conns} sent={want} replies={done} ok={ok} busy={busy} \
         shed={shed} errors={errors}"
    );
    i32::from(!(errors == 0 && done == want))
}

struct LoadResult {
    conns: usize,
    procs: usize,
    sent: u64,
    ok: u64,
    busy: u64,
    shed: u64,
    secs: f64,
    p99_us: u64,
}

/// Parent side of the load phase: host the server in-process, fan out
/// `procs` child load generators, and reconcile their reply counts
/// against the server's own counters.
fn run_load(bundle: &ModelBundle, procs: usize, conns_per_proc: usize, per_conn: usize) -> LoadResult {
    let total_conns = procs * conns_per_proc;
    let handle = serve(
        bundle,
        ServerConfig {
            batch_max: 16,
            batch_timeout_ms: 2,
            queue_cap: 256,
            // Admission headroom: the phase asserts every connection is
            // accepted; shed-at-the-door is exercised by the loopback
            // tests instead.
            max_conns: total_conns + 16,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.local_addr().to_string();
    let exe = std::env::current_exe().expect("current_exe");

    let start = Instant::now();
    let children: Vec<_> = (0..procs)
        .map(|p| {
            Command::new(&exe)
                .args([
                    "--load-client",
                    &addr,
                    &conns_per_proc.to_string(),
                    &per_conn.to_string(),
                    &(p * conns_per_proc).to_string(),
                ])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn load client")
        })
        .collect();

    let (mut connected, mut sent, mut replies) = (0u64, 0u64, 0u64);
    let (mut ok, mut busy, mut shed, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for child in children {
        let out = child.wait_with_output().expect("load client exit");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("LOADCLIENT"))
            .unwrap_or_else(|| panic!("no LOADCLIENT line in child output: {stdout}"));
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field.split_once('=').expect("key=value");
            let value: u64 = value.parse().expect("numeric field");
            match key {
                "connected" => connected += value,
                "sent" => sent += value,
                "replies" => replies += value,
                "ok" => ok += value,
                "busy" => busy += value,
                "shed" => shed += value,
                "errors" => errors += value,
                _ => {}
            }
        }
        assert!(out.status.success(), "load client failed: {line}");
    }
    let secs = start.elapsed().as_secs_f64();

    // Sample counters only after the drain finished: the children's
    // sockets close as they exit, and the event loop reaps those EOFs
    // asynchronously.
    handle.shutdown();
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = handle.stats();
        if stats.conns == 0 || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    handle.join();

    // The hard contracts: every connection accepted, every in-flight
    // request answered (zero drops), and every backpressure reply
    // accounted against the server's own counters.
    assert_eq!(connected as usize, total_conns, "not every connection was accepted");
    assert_eq!(errors, 0, "load clients saw protocol errors or resets");
    assert_eq!(replies, sent, "dropped in-flight requests: {replies} replies for {sent} sent");
    assert_eq!(ok, stats.requests, "ok replies disagree with server request count");
    assert_eq!(busy, stats.rejected, "busy replies disagree with server rejected count");
    assert_eq!(shed, stats.shed, "shed replies disagree with server shed count");
    assert!(stats.p99_us > 0, "no latency recorded");
    assert_eq!(stats.conns, 0, "server still counts open connections after drain");

    LoadResult {
        conns: total_conns,
        procs,
        sent,
        ok,
        busy,
        shed,
        secs,
        p99_us: stats.p99_us,
    }
}

fn emit_load(r: &LoadResult) {
    println!(
        "SERVELOAD conns={} procs={} sent={} ok={} busy={} shed={} dropped=0 secs={:.6} \
         req_per_sec={:.2} p99_us={}",
        r.conns,
        r.procs,
        r.sent,
        r.ok,
        r.busy,
        r.shed,
        r.secs,
        r.sent as f64 / r.secs,
        r.p99_us,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--load-client") {
        let [_, addr, conns, per_conn, seed] = &args[..] else {
            eprintln!("usage: throughput_serve --load-client ADDR CONNS PER_CONN SEED");
            std::process::exit(2);
        };
        let code = load_client_main(
            addr,
            conns.parse().expect("CONNS"),
            per_conn.parse().expect("PER_CONN"),
            seed.parse().expect("SEED"),
        );
        std::process::exit(code);
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    let bundle = trained_bundle();
    framing_alloc_audit();
    if smoke {
        // CI gate: a short high-concurrency run — 2 processes × 128
        // connections — with the same zero-drop and accounting asserts.
        let r = run_load(&bundle, 2, 128, 2);
        emit_load(&r);
        println!("serve load smoke: {} conns, zero drops", r.conns);
        return;
    }
    pipelined_sweep(&bundle);
    // The headline load: ≥1k concurrent connections across 4 processes.
    let r = run_load(&bundle, 4, 256, 4);
    assert!(r.conns >= 1024, "load phase must reach 1k concurrent connections");
    emit_load(&r);
}
