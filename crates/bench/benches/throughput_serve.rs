//! Serving throughput: a real `liger-serve` TCP server on an ephemeral
//! port under concurrent pipelining clients, at several client counts.
//!
//! Prints one parseable `SERVE …` line per client count (consumed by
//! `scripts/bench_json.sh` into `BENCH_serve.json`), showing how the
//! micro-batcher coalesces requests as concurrency grows: the batch
//! factor (requests per forward-pass batch) should rise with clients
//! while per-request latency stays bounded.

use std::time::Instant;

use liger::{
    train_namer, EncBlended, EncState, EncStep, EncTree, EncVar, EncodedProgram, LigerConfig,
    LigerNamer, ModelBundle, NameSample, OutVocab, TrainConfig, Vocab,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::json::Json;
use serve::protocol::{infer_request, InferInput, InferKind};
use serve::server::{serve, Client, ServerConfig};

/// A small synthetic program parameterized by `t` (same shape as the
/// loopback tests — two blended steps, one object state).
fn prog(t: usize) -> EncodedProgram {
    EncodedProgram::from_traces(vec![EncBlended {
        steps: vec![
            EncStep {
                tree: EncTree {
                    token: t,
                    children: vec![EncTree { token: t + 1, children: vec![] }],
                },
                states: vec![
                    EncState { vars: vec![EncVar::Primitive(t + 2)] },
                    EncState { vars: vec![EncVar::Object(vec![t, t + 1])] },
                ],
            },
            EncStep {
                tree: EncTree { token: t + 1, children: vec![] },
                states: vec![EncState { vars: vec![EncVar::Primitive(t)] }],
            },
        ],
    }])
}

/// A briefly-trained namer bundle over the synthetic programs.
fn trained_bundle() -> ModelBundle {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add(&format!("tok{i}"));
    }
    let mut out = OutVocab::new();
    for name in ["find", "max", "sum", "item"] {
        out.add(name);
    }
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let mut store = tensor::ParamStore::new();
    let mut rng = StdRng::seed_from_u64(33);
    let namer = LigerNamer::new(&mut store, vocab.len(), out.len(), cfg, &mut rng);
    let samples: Vec<NameSample> = (1..4)
        .map(|t| NameSample { program: prog(t), target: vec![3 + (t - 1), liger::EOS] })
        .collect();
    train_namer(
        &namer,
        &mut store,
        &samples,
        &TrainConfig { epochs: 3, lr: 0.02, batch_size: 2 },
        &mut rng,
    );
    ModelBundle::for_namer(cfg, vocab, out, store)
}

struct Run {
    clients: usize,
    requests: u64,
    batches: u64,
    rejected: u64,
    secs: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Starts a fresh server, drives `clients` fully-pipelined connections of
/// `per_client` embed requests each, and collects the final stats.
fn run(bundle: &ModelBundle, clients: usize, per_client: usize) -> Run {
    let handle = serve(
        bundle,
        ServerConfig {
            batch_max: 16,
            batch_timeout_ms: 2,
            queue_cap: 2 * clients.max(1),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.local_addr();
    let programs: Vec<EncodedProgram> = (1..6).map(prog).collect();
    let requests: Vec<Json> = programs
        .iter()
        .map(|p| infer_request(InferKind::Embed, &InferInput::Encoded(Box::new(p.clone()))))
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let requests = &requests;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Pipeline everything before reading any reply so the
                // queue fills and batches actually form.
                for i in 0..per_client {
                    client.send(&requests[(c + i) % requests.len()]).expect("send");
                }
                for i in 0..per_client {
                    let reply = client.recv().expect("recv");
                    assert_eq!(
                        reply.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "client {c} reply {i} failed: {}",
                        reply
                    );
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();

    let stats = handle.stats();
    handle.shutdown();
    handle.join();
    Run {
        clients,
        requests: stats.requests,
        batches: stats.batches,
        rejected: stats.rejected,
        secs,
        p50_us: stats.p50_us,
        p99_us: stats.p99_us,
    }
}

fn emit(r: &Run) {
    let batch_factor = r.requests as f64 / (r.batches.max(1)) as f64;
    println!(
        "SERVE clients={} requests={} batches={} batch_factor={:.2} rejected={} \
         secs={:.6} req_per_sec={:.2} p50_us={} p99_us={}",
        r.clients,
        r.requests,
        r.batches,
        batch_factor,
        r.rejected,
        r.secs,
        r.requests as f64 / r.secs,
        r.p50_us,
        r.p99_us,
    );
}

fn main() {
    let bundle = trained_bundle();
    let per_client = 64;
    println!(
        "\nliger-serve loopback throughput ({per_client} pipelined embed requests per client)"
    );
    for clients in [1, 2, 4, 8] {
        // Warm run to populate thread pools and the statement cache,
        // then the measured run on a fresh server.
        run(&bundle, clients, per_client.min(8));
        let r = run(&bundle, clients, per_client);
        assert_eq!(r.requests, (clients * per_client) as u64, "lost requests");
        emit(&r);
    }
}
