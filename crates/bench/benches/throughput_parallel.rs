//! Throughput of the deterministic data-parallel minibatch engine.
//!
//! Trains the LIGER namer on the same workload at 1/2/4/8 worker threads
//! and reports training throughput in examples/sec for each count (one
//! `THROUGHPUT …` line per count, parsed by `scripts/bench_json.sh` into
//! `BENCH_parallel.json`). The determinism contract means every run ends
//! at bitwise-identical parameters — asserted here on every sweep — so
//! the thread count is purely a throughput knob.
//!
//! Scaling is bounded by the host: on a single-core machine all counts
//! collapse to serial speed (minus a little scope/spawn overhead). The
//! printed `host_threads` records what the sweep actually had available.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use liger::{LigerConfig, LigerNamer, NameSample, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::ParamStore;

fn workload() -> (LigerNamer, ParamStore, Vec<NameSample>) {
    let ds = bench::tiny_dataset();
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let cfg = LigerConfig { hidden: 16, attn: 16, ..LigerConfig::default() };
    let namer = LigerNamer::new(
        &mut store,
        ds.vocabs.input.len(),
        ds.vocabs.output.len(),
        cfg,
        &mut rng,
    );
    let samples: Vec<NameSample> = ds
        .train
        .iter()
        .map(|s| NameSample { program: s.liger.clone(), target: s.target.clone() })
        .collect();
    (namer, store, samples)
}

/// One full training run at a pinned thread count; returns (seconds,
/// parameter bits) with seconds taken as the best of three repeats.
fn timed_run(
    namer: &LigerNamer,
    store: &ParamStore,
    samples: &[NameSample],
    tc: &TrainConfig,
    threads: usize,
) -> (f64, Vec<u32>) {
    par::set_threads(Some(threads));
    let mut best = f64::INFINITY;
    let mut bits = Vec::new();
    for _ in 0..3 {
        let mut s = store.clone();
        let mut rng = StdRng::seed_from_u64(77);
        let start = Instant::now();
        liger::train_namer(namer, &mut s, samples, tc, &mut rng);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        bits = s.iter().flat_map(|p| p.value.data().iter().map(|v| v.to_bits())).collect();
    }
    par::set_threads(None);
    (best, bits)
}

fn throughput_sweep(namer: &LigerNamer, store: &ParamStore, samples: &[NameSample]) {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tc = TrainConfig { epochs: 2, lr: 0.01, batch_size: 8 };
    let work = (samples.len() * tc.epochs) as f64;
    println!("\nparallel minibatch training throughput (host_threads={host})");
    let mut reference: Option<Vec<u32>> = None;
    let mut serial_rate = 0.0f64;
    for &threads in &[1usize, 2, 4, 8] {
        let (secs, bits) = timed_run(namer, store, samples, &tc, threads);
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(
                r, &bits,
                "determinism violated: {threads} threads diverged from serial"
            ),
        }
        let rate = work / secs;
        println!(
            "THROUGHPUT threads={threads} examples={} secs={secs:.4} examples_per_sec={:.2} host_threads={host}",
            samples.len() * tc.epochs,
            rate,
        );
        if threads == 1 {
            serial_rate = rate;
        } else {
            // Configured thread counts beyond the host's OS threads must be
            // at worst neutral: logical chunking is decoupled from OS-thread
            // scheduling, so asking for 8 workers on a 1-core host runs all
            // chunks inline instead of paying 8 spawns per batch. 15% slack
            // absorbs timer noise on a shared host.
            assert!(
                rate >= 0.85 * serial_rate,
                "throughput degraded with thread count: {threads} threads ran at \
                 {rate:.1} ex/s vs {serial_rate:.1} ex/s serial"
            );
        }
    }
}

fn bench_parallel_training(c: &mut Criterion) {
    let (namer, store, samples) = workload();
    throughput_sweep(&namer, &store, &samples);

    // A Criterion-timed kernel on top of the sweep: one minibatch epoch at
    // the environment-selected thread count.
    let tc = TrainConfig { epochs: 1, lr: 0.01, batch_size: 8 };
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    group.bench_function("train_namer_one_epoch", |b| {
        b.iter(|| {
            let mut s = store.clone();
            let mut rng = StdRng::seed_from_u64(77);
            liger::train_namer(&namer, &mut s, &samples, &tc, &mut rng);
            s.num_scalars()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_training);
criterion_main!(benches);
