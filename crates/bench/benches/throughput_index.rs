//! Embedding-index throughput: insert rate and exact-vs-ANN search
//! latency on a 10k-entry corpus, with the DESIGN.md §2h quality gates
//! asserted in-bench:
//!
//! - ANN search p99 must stay **under 100 ms** at 10k entries, and
//! - ANN recall@10 against the exact brute-force ranking must be
//!   **≥ 0.95**.
//!
//! Lines are consumed by `scripts/bench_json.sh` into
//! `BENCH_index.json`:
//!
//! - `INDEX mode=insert …` — insert rate into the persistent store,
//! - `INDEX mode=search searcher={exact|ann} …` — per-query latency
//!   percentiles at k=10 (the ANN row carries `recall_at_10`),
//! - `INDEX mode=summary …` — the gates and the observed speedup.
//!
//! `--smoke` shrinks the corpus (still past the ANN activation
//! threshold) for the CI gate.

use std::time::Instant;

use index::{Index, IndexConfig, SearchOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DIM: usize = 24;
const K: usize = 10;
const P99_BUDGET_US: u64 = 100_000;
const RECALL_GATE: f64 = 0.95;

fn random_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct SearchRun {
    p50_us: u64,
    p99_us: u64,
    total_secs: f64,
}

/// Times `queries` top-k searches through the [`Index`] front end and
/// returns latency percentiles. The caller controls whether the graph
/// path is active via the index's own `ann_threshold`.
fn timed_searches(
    idx: &mut Index,
    queries: &[Vec<f32>],
    expect_ann: bool,
) -> (SearchRun, Vec<Vec<u64>>) {
    let opts = SearchOptions { k: K, ..SearchOptions::default() };
    let mut lat_us: Vec<u64> = Vec::with_capacity(queries.len());
    let mut rankings: Vec<Vec<u64>> = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for query in queries {
        let t0 = Instant::now();
        let result = idx.search(query, &[], &opts).expect("search");
        lat_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(result.ann_used, expect_ann, "wrong search path was taken");
        rankings.push(result.hits.iter().map(|h| h.key).collect());
    }
    let total_secs = start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    (
        SearchRun {
            p50_us: percentile(&lat_us, 0.50),
            p99_us: percentile(&lat_us, 0.99),
            total_secs,
        },
        rankings,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke keeps the corpus past a (lowered) activation threshold so
    // the graph path is still exercised, just on a tenth of the data.
    let (entries, queries_n, threshold) =
        if smoke { (1_500, 16, 1_000) } else { (10_000, 64, 10_000) };

    let mut rng = StdRng::seed_from_u64(0x51);
    let corpus: Vec<Vec<f32>> = (0..entries).map(|_| random_vector(&mut rng, DIM)).collect();
    let queries: Vec<Vec<f32>> = (0..queries_n).map(|_| random_vector(&mut rng, DIM)).collect();

    // ---- insert rate ----------------------------------------------------
    let config = IndexConfig { ann_threshold: threshold, ..IndexConfig::default() };
    let mut ann_idx = Index::with_config(DIM, "bench/fp", config);
    let start = Instant::now();
    for (key, v) in corpus.iter().enumerate() {
        ann_idx.insert(key as u64, v, &[]).expect("insert");
    }
    let insert_secs = start.elapsed().as_secs_f64();
    println!(
        "INDEX mode=insert entries={entries} dim={DIM} secs={insert_secs:.6} \
         inserts_per_sec={:.2} bytes={}",
        entries as f64 / insert_secs,
        ann_idx.stats().bytes,
    );

    // ---- exact search (brute force over the same corpus) ----------------
    let mut exact_idx = Index::with_config(
        DIM,
        "bench/fp",
        IndexConfig { ann_threshold: usize::MAX, ..config },
    );
    for (key, v) in corpus.iter().enumerate() {
        exact_idx.insert(key as u64, v, &[]).expect("insert");
    }
    let (exact_run, exact_rankings) = timed_searches(&mut exact_idx, &queries, false);
    println!(
        "INDEX mode=search searcher=exact entries={entries} queries={queries_n} k={K} \
         secs={:.6} p50_us={} p99_us={}",
        exact_run.total_secs, exact_run.p50_us, exact_run.p99_us,
    );

    // ---- ANN search (graph active past the threshold) -------------------
    assert!(ann_idx.ann_active(), "corpus must cross the ANN activation threshold");
    // Warm query builds the graph outside the timed region — construction
    // is a one-off cost amortized over the index lifetime, not a per-query
    // cost; the insert phase above owns it conceptually.
    let build_start = Instant::now();
    ann_idx
        .search(&queries[0], &[], &SearchOptions { k: K, ..SearchOptions::default() })
        .expect("graph build");
    let build_secs = build_start.elapsed().as_secs_f64();
    let (ann_run, ann_rankings) = timed_searches(&mut ann_idx, &queries, true);

    let mut overlap = 0usize;
    for (exact, ann) in exact_rankings.iter().zip(&ann_rankings) {
        overlap += ann.iter().filter(|key| exact.contains(key)).count();
    }
    let recall = overlap as f64 / (queries.len() * K) as f64;
    println!(
        "INDEX mode=search searcher=ann entries={entries} queries={queries_n} k={K} \
         secs={:.6} p50_us={} p99_us={} build_secs={build_secs:.6} recall_at_10={recall:.4}",
        ann_run.total_secs, ann_run.p50_us, ann_run.p99_us,
    );

    // ---- the gates ------------------------------------------------------
    assert!(
        ann_run.p99_us < P99_BUDGET_US,
        "ANN search p99 blew the 100ms budget at {entries} entries: {} µs",
        ann_run.p99_us
    );
    assert!(
        recall >= RECALL_GATE,
        "ANN recall@10 fell below the {RECALL_GATE} gate: {recall:.4}"
    );
    let speedup = exact_run.p50_us as f64 / (ann_run.p50_us.max(1)) as f64;
    println!(
        "INDEX mode=summary entries={entries} p99_budget_us={P99_BUDGET_US} \
         ann_p99_us={} recall_at_10={recall:.4} recall_gate={RECALL_GATE} \
         ann_speedup_p50={speedup:.2} pass=true",
        ann_run.p99_us,
    );
}
