//! **Figure 9** (§6.3.2) — ablation: LIGER without the dynamic (concrete)
//! feature dimension, under symbolic-trace reduction.
//!
//! Paper shape: a much lower starting F1 (below code2seq's in the paper) —
//! learning precise embeddings from symbolic features alone is hard — but
//! the curve stays flat under path reduction thanks to the static view.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{build_method_dataset, fig6_symbolic, symbolic_markdown, Scale};
use liger::Ablation;

fn regenerate() {
    let scale = bench::figure_scale();
    bench::banner("Figure 9", "Ablation: LIGER w/o dynamic feature dimension", &scale);
    let (ds, _) = build_method_dataset(&scale);
    let s = fig6_symbolic(&ds, &scale, Ablation::NoDynamic);
    println!("{}", symbolic_markdown("fig9-symbolic (w/o dynamic)", &s));
}

fn bench_kernel(c: &mut Criterion) {
    regenerate();
    let ds = bench::tiny_dataset();
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("train_no_dynamic_tiny", |b| {
        b.iter(|| {
            eval::liger_method_scores(
                &ds,
                &scale,
                Ablation::NoDynamic,
                eval::PathLevel::Full,
                scale.concrete_per_path,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
