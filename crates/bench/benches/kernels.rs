//! Micro-benchmarks for the substrate kernels every experiment sits on:
//! lexing/parsing, traced interpretation, symbolic execution, blending,
//! encoder forward pass, and one optimizer step. These are the ablation
//! benches for the design choices called out in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{Behavior, Knobs, Strategy};
use interp::Value;
use rand::SeedableRng;
use symexec::{symbolic_execute, SymExecConfig};
use tensor::{Graph, ParamStore};

const BUBBLE: &str = "fn sortArray(a: array<int>) -> array<int> {
    for (let i: int = len(a) - 1; i > 0; i -= 1) {
        for (let j: int = 0; j < i; j += 1) {
            if (a[j] > a[j + 1]) {
                let tmp: int = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
    return a;
}";

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse_bubble_sort", |b| {
        b.iter(|| minilang::parse(BUBBLE).unwrap())
    });
    let program = minilang::parse(BUBBLE).unwrap();
    group.bench_function("typecheck_bubble_sort", |b| {
        b.iter(|| minilang::typecheck(&program).unwrap())
    });
    group.bench_function("pretty_print_roundtrip", |b| {
        b.iter(|| minilang::parse(&minilang::print_program(&program)).unwrap())
    });
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let program = minilang::parse(BUBBLE).unwrap();
    let input = vec![Value::Array(vec![8, 5, 1, 4, 3, 9, 2, 7])];
    let mut group = c.benchmark_group("execution");
    group.bench_function("traced_interpret_bubble_sort", |b| {
        b.iter(|| interp::run(&program, &input).unwrap())
    });
    group.bench_function("symbolic_execute_sign", |b| {
        let sign = minilang::parse(
            "fn signOf(x: int) -> int {
                if (x > 0) { return 1; }
                if (x < 0) { return 0 - 1; }
                return 0;
            }",
        )
        .unwrap();
        b.iter(|| symbolic_execute(&sign, &SymExecConfig::default()))
    });
    group.bench_function("group_and_blend", |b| {
        let traces: Vec<trace::ExecutionTrace> = (0..10)
            .map(|k| {
                let inputs = vec![Value::Array(vec![k, 5 - k, 2 * k, 1])];
                let run = interp::run(&program, &inputs).unwrap();
                trace::ExecutionTrace::from_run(inputs, run)
            })
            .collect();
        b.iter(|| {
            let groups = trace::group_by_path(traces.clone());
            groups.iter().filter_map(|g| g.blend(5).ok()).count()
        })
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let knobs = Knobs::plain();
    let program = minilang::parse(&Behavior::SumArray.render(&knobs)).unwrap();
    let traces: Vec<trace::ExecutionTrace> = (1..=6)
        .map(|k| {
            let inputs = vec![Value::Array(vec![k, -k, 2 * k])];
            let run = interp::run(&program, &inputs).unwrap();
            trace::ExecutionTrace::from_run(inputs, run)
        })
        .collect();
    let blended: Vec<trace::BlendedTrace> =
        trace::group_by_path(traces).iter().filter_map(|g| g.blend(3).ok()).collect();
    let opts = liger::EncodeOptions::default();
    let mut vocab = liger::Vocab::new();
    liger::program_into_vocab(&program, &blended, &mut vocab, &opts);
    let encoded = liger::encode_program(&program, &blended, &vocab, &opts);

    let mut store = ParamStore::new();
    let cfg = liger::LigerConfig { hidden: 16, attn: 16, ..liger::LigerConfig::default() };
    let model = liger::LigerModel::new(&mut store, vocab.len(), cfg, &mut rng);

    let mut group = c.benchmark_group("model");
    group.bench_function("liger_encoder_forward", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let out = model.encode(&mut g, &store, &encoded);
            g.value(out.program).norm()
        })
    });
    group.bench_function("liger_forward_backward_adam_step", |b| {
        let mut adam = nn::Adam::new(0.01);
        b.iter(|| {
            let mut g = Graph::new();
            let out = model.encode(&mut g, &store, &encoded);
            let loss = g.cross_entropy(out.program, 0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        })
    });
    // Ablation kernel comparison: TreeLSTM statement embedding vs. a flat
    // token-RNN alternative (DESIGN.md §4 design-choice bench).
    let (pool, tree_id) = {
        let sym = blended[0].symbolic.stmt_trees(&program).unwrap();
        let tree = liger::encode_tree(&sym[0], &vocab);
        let mut pool = liger::EncPool::new();
        let id = pool.intern_tree(&tree);
        (pool, id)
    };
    group.bench_function("treelstm_statement_embedding", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let h = model.embed_tree(&mut g, &store, &pool, tree_id);
            g.value(h).norm()
        })
    });
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.bench_function("render_all_behaviors", |b| {
        let knobs = Knobs::plain();
        b.iter(|| {
            Behavior::ALL.iter().map(|beh| beh.render(&knobs).len()).sum::<usize>()
        })
    });
    group.bench_function("render_all_strategies", |b| {
        let knobs = Knobs::plain();
        b.iter(|| {
            Strategy::ALL.iter().map(|s| s.render(&knobs).len()).sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_execution, bench_model, bench_strategies);
criterion_main!(benches);
